"""Tests for the pluggable reputation-backend layer and the scenario registry.

Covers the protocol itself (every registered scheme satisfies it), the
log-system adapters, bit-exact determinism of the default ROCQ path through
the new indirection, the churn hooks exercised through the protocol, and the
scenario registry behind ``--scenario``.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.config import (
    REPUTATION_SCHEMES,
    ConfigurationError,
    SimulationParameters,
    parse_reputation_scheme,
)
from repro.overlay.assignment import ScoreManagerAssignment
from repro.overlay.churn import ChurnManager
from repro.overlay.ring import ChordRing
from repro.reputation.adapters import LogReputationBackend
from repro.reputation.backend import (
    ReputationBackend,
    available_schemes,
    make_reputation_backend,
)
from repro.reputation.beta import BetaReputation
from repro.reputation.complaints import ComplaintsBasedTrust
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.tit_for_tat import TitForTatCredit
from repro.rocq.protocol import AdjustmentKind, FeedbackReport, ReputationAdjustment
from repro.rocq.store import ReputationStore
from repro.sim.engine import run_simulation
from repro.workloads.registry import (
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.workloads.scenarios import paper_default


def make_assignment(peers: int = 12, managers: int = 3) -> ScoreManagerAssignment:
    ring = ChordRing()
    for peer_id in range(peers):
        ring.join(peer_id)
    return ScoreManagerAssignment(ring=ring, num_score_managers=managers)


def report(reporter, subject, value, time=1.0) -> FeedbackReport:
    return FeedbackReport(
        reporter=reporter, subject=subject, value=value, quality=1.0, time=time
    )


class TestSchemeRegistry:
    def test_config_and_registry_agree_on_scheme_names(self):
        assert set(available_schemes()) == set(REPUTATION_SCHEMES)

    @pytest.mark.parametrize("scheme", REPUTATION_SCHEMES)
    def test_every_scheme_builds_a_protocol_conformant_backend(self, scheme):
        params = SimulationParameters(reputation_scheme=scheme)
        backend = make_reputation_backend(params, assignment=make_assignment())
        assert isinstance(backend, ReputationBackend)
        assert backend.scheme == scheme

    def test_rocq_requires_an_assignment(self):
        with pytest.raises(ConfigurationError):
            make_reputation_backend(SimulationParameters(), assignment=None)

    def test_unknown_scheme_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(reputation_scheme="paxos")

    def test_scheme_names_are_normalised(self):
        assert parse_reputation_scheme("Tit-For-Tat") == "tit_for_tat"
        params = SimulationParameters(reputation_scheme="EigenTrust")
        assert params.reputation_scheme == "eigentrust"

    def test_rocq_backend_is_the_plain_store(self):
        params = SimulationParameters(
            rocq_opinion_smoothing=0.5, rocq_use_quality=False
        )
        backend = make_reputation_backend(params, assignment=make_assignment())
        assert isinstance(backend, ReputationStore)
        assert backend.opinion_smoothing == 0.5
        assert backend.use_quality is False


class TestLogReputationBackend:
    def test_newcomer_reputation_matches_the_paper_taxonomy(self):
        """§1: trusted / frozen out / middle-of-the-road newcomers."""
        expected = {
            "complaints": 1.0,
            "tit_for_tat": 1.0,
            "beta": 0.5,
            "positive_only": 0.0,
            "eigentrust": 0.0,
        }
        for scheme, value in expected.items():
            params = SimulationParameters(reputation_scheme=scheme)
            backend = make_reputation_backend(params, assignment=None)
            assert backend.newcomer_reputation() == pytest.approx(value), scheme

    def test_reports_move_the_score(self):
        backend = LogReputationBackend(BetaReputation())
        assert backend.global_reputation(5) == pytest.approx(0.5)
        for time in range(4):
            backend.submit_report(report(1, 5, 1.0, time))
        assert backend.global_reputation(5) > 0.7
        assert backend.reports_delivered == 4
        assert backend.has_any_record(5)

    def test_low_report_values_count_as_complaints(self):
        backend = LogReputationBackend(ComplaintsBasedTrust())
        assert backend.global_reputation(9) == pytest.approx(1.0)
        for time in range(5):
            backend.submit_report(report(2, 9, 0.0, time))
        assert backend.global_reputation(9) < 0.5

    def test_adjustments_form_a_credit_ledger(self):
        backend = LogReputationBackend(BetaReputation())
        applied = backend.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.LEND_CREDIT, issuer=1, subject=7, delta=0.1, time=0.0
            )
        )
        assert applied == pytest.approx(0.1)
        assert backend.global_reputation(7) == pytest.approx(0.6)
        assert backend.adjustments_delivered == 1

    def test_adjustments_respect_the_unit_interval(self):
        backend = LogReputationBackend(ComplaintsBasedTrust())  # newcomers at 1.0
        applied = backend.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.LEND_CREDIT, issuer=1, subject=3, delta=0.4, time=0.0
            )
        )
        assert applied == pytest.approx(0.0)  # already at the ceiling
        applied = backend.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.SANCTION, issuer=3, subject=3, delta=-2.0, time=0.0
            )
        )
        assert applied == pytest.approx(-1.0)  # floored at zero
        assert backend.global_reputation(3) == pytest.approx(0.0)

    def test_set_reputation_pins_the_current_total(self):
        backend = LogReputationBackend(TitForTatCredit())  # strangers at 1.0
        backend.set_reputation(4, 0.25, 0.0)
        assert backend.global_reputation(4) == pytest.approx(0.25)

    def test_stale_table_refreshes_after_interval(self):
        backend = LogReputationBackend(EigenTrust(), refresh_every=3)
        for time in range(3):
            backend.submit_report(report(0, 1, 1.0, time))
            backend.submit_report(report(1, 0, 1.0, time))
        # 6 reports >= refresh_every: the next query sees the fresh table.
        assert backend.global_reputation(0) > 0.0

    def test_churn_hooks_are_no_ops(self):
        backend = LogReputationBackend(BetaReputation())
        backend.invalidate_assignments()
        assert list(backend.tracked_peers(1)) == []
        assert backend.export_record(1, 2) is None
        backend.install_record(1, 2, {"ignored": True})
        backend.drop_manager(1)


class TestDefaultPathDeterminism:
    def test_rocq_backend_reproduces_the_seed_run_bit_for_bit(self):
        """The backend indirection must not change the default ROCQ path.

        The digest below was captured from the pre-refactor engine (the seed
        code wiring ``ReputationStore`` directly) for the paper's Table 1
        operating point at a 2,000-transaction horizon.  ``params`` and
        ``elapsed_seconds`` are excluded: the former legitimately gained the
        ``reputation_scheme`` field, the latter is wall-clock time.
        """
        params = paper_default(seed=1).scaled(0.004)
        summary = run_simulation(params)
        assert summary.final_cooperative == 506
        assert summary.final_uncooperative == 2
        assert summary.introductions_granted == 8
        assert summary.success_rate == pytest.approx(0.9869934967483742, abs=0.0)
        document = summary.to_dict()
        document.pop("elapsed_seconds")
        document.pop("params")
        digest = hashlib.sha256(
            json.dumps(document, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert digest == (
            "c88bbfe213e26fe449ad56b8d12a353e599fdc5194aaceadd1322142d7ffc10c"
        )


class TestChurnThroughProtocol:
    def test_manager_departure_migrates_records_through_the_backend(self):
        """The ROCQ churn hooks work when driven via the protocol surface."""
        ring = ChordRing()
        for peer_id in range(8):
            ring.join(peer_id)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        params = SimulationParameters(num_score_managers=3)
        backend: ReputationBackend = make_reputation_backend(params, assignment)

        subject = 5
        backend.set_reputation(subject, 0.8, 0.0)
        managers_before = assignment.managers_for(subject)
        assert managers_before, "subject must have managers"
        departing = managers_before[0]
        assert list(backend.tracked_peers(departing))
        assert backend.export_record(departing, subject) is not None

        churn = ChurnManager(ring=ring, assignment=assignment, store=backend)
        event = churn.leave(departing, time=1.0)
        backend.invalidate_assignments()

        assert event.migrated_records >= 1
        # The departed manager's state is gone, yet the reputation survives
        # on the re-homed replicas.
        assert list(backend.tracked_peers(departing)) == []
        assert backend.global_reputation(subject) == pytest.approx(0.8)
        for manager in assignment.managers_for(subject):
            assert backend.export_record(manager, subject) is not None

    def test_join_pulls_records_to_new_managers_through_the_backend(self):
        ring = ChordRing()
        for peer_id in range(6):
            ring.join(peer_id)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=2)
        backend = make_reputation_backend(
            SimulationParameters(num_score_managers=2), assignment
        )
        backend.set_reputation(3, 0.6, 0.0)
        churn = ChurnManager(ring=ring, assignment=assignment, store=backend)
        for joiner in range(100, 112):
            churn.join(joiner, time=2.0)
            backend.invalidate_assignments()
        assert backend.global_reputation(3) == pytest.approx(0.6)


class TestScenarioRegistry:
    def test_builtin_scenarios_are_registered(self):
        catalogue = available_scenarios()
        for name in (
            "paper_default",
            "laptop_scale",
            "tiny_test",
            "random_topology",
            "open_admission",
            "fixed_credit",
            "high_arrival_stress",
            "whitewash_stress",
        ):
            assert name in catalogue
            assert catalogue[name], f"{name} needs a description"

    def test_get_scenario_threads_the_seed(self):
        params = get_scenario("tiny_test", seed=99)
        assert params.seed == 99
        assert params.num_transactions == 3_000

    def test_whitewash_stress_raises_attack_pressure(self):
        params = get_scenario("whitewash_stress")
        assert params.fraction_uncooperative == pytest.approx(0.6)

    def test_unknown_scenario_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="tiny_test"):
            get_scenario("does_not_exist")

    def test_register_scenario_decorator(self):
        @register_scenario("pytest_probe", description="probe")
        def _probe(seed: int = 1) -> SimulationParameters:
            return SimulationParameters(num_initial_peers=5, seed=seed)

        try:
            assert get_scenario("pytest_probe", seed=4).num_initial_peers == 5
            assert available_scenarios()["pytest_probe"] == "probe"
        finally:  # keep the registry clean for other tests
            from repro.workloads import registry as registry_module

            registry_module._SCENARIOS.pop("pytest_probe")
            registry_module._DESCRIPTIONS.pop("pytest_probe")
