"""Smoke tests for the example scripts and the experiment CLI entry point.

The heavier examples (quickstart, bootstrap_policies, introducer_economics)
are exercised end-to-end by the benchmark/experiment machinery they wrap;
here we make sure every example module is importable, the lightweight ones
run to completion, and the CLI produces a report and exit code.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.experiments import runner

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing __main__."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart.py",
    "bootstrap_policies.py",
    "introducer_economics.py",
    "newcomer_problem.py",
    "reproduce_paper.py",
]


class TestExampleScripts:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_exists_and_imports(self, name):
        module = load_example(name)
        assert hasattr(module, "main"), f"{name} must expose a main() function"
        assert module.__doc__, f"{name} must have a module docstring"

    def test_newcomer_problem_runs(self, capsys):
        module = load_example("newcomer_problem.py")
        module.main()
        output = capsys.readouterr().out
        assert "eigentrust" in output
        assert "stranger" in output

    def test_reproduce_paper_runs_single_experiment(self, tmp_path, capsys):
        module = load_example("reproduce_paper.py")
        exit_code = module.main(
            ["--scale", "0.01", "--repeats", "1", "--only", "table1",
             "--out", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "table1.json").exists()
        output = capsys.readouterr().out
        assert "Reproduction report" in output


class TestCatalogueListing:
    """``--list-scenarios`` / ``--list-adversaries``: sorted, complete, exit 0."""

    @staticmethod
    def listed_names(output: str) -> list[str]:
        return [line.split()[0] for line in output.strip().splitlines()]

    def test_list_scenarios_is_sorted(self, capsys):
        exit_code = runner.main(["--list-scenarios"])
        assert exit_code == 0
        names = self.listed_names(capsys.readouterr().out)
        assert names == sorted(names)
        assert "tiny_test" in names
        # The attack presets generated from the adversary registry are listed.
        assert "whitewash_waves_attack" in names
        assert "sybil_swarm_attack" in names

    def test_list_adversaries_is_sorted_and_matches_registry(self, capsys):
        from repro.config import ADVERSARY_STRATEGIES

        exit_code = runner.main(["--list-adversaries"])
        assert exit_code == 0
        output = capsys.readouterr().out
        names = self.listed_names(output)
        assert names == sorted(names)
        assert set(names) == set(ADVERSARY_STRATEGIES)
        # Each entry carries a description, not just a bare name.
        for line in output.strip().splitlines():
            assert len(line.split(None, 1)) == 2, line

    def test_listing_flags_short_circuit_before_any_simulation(self, capsys):
        # Even combined with an expensive selection, listing exits immediately.
        exit_code = runner.main(["--list-adversaries", "--only", "figure1"])
        assert exit_code == 0
        assert "figure1" not in capsys.readouterr().out


class TestRunnerCli:
    def test_main_returns_zero_when_checks_pass(self, tmp_path, capsys):
        exit_code = runner.main(
            ["--scale", "0.01", "--repeats", "1", "--only", "table1",
             "--out", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "report.md").exists()
        output = capsys.readouterr().out
        assert "table1" in output

    def test_main_without_output_directory(self, capsys):
        exit_code = runner.main(["--scale", "0.01", "--repeats", "1",
                                 "--only", "table1"])
        assert exit_code == 0
        assert "Reproduction report" in capsys.readouterr().out

    def test_throughput_flag_reports_completed_runs(self, capsys):
        # figure1 (not table1) because table1 runs no simulations.
        exit_code = runner.main(["--scale", "0.002", "--repeats", "1",
                                 "--only", "figure1", "--throughput"])
        assert exit_code == 0
        stderr = capsys.readouterr().err
        assert "[throughput]" in stderr
        assert "tx/s" in stderr

    def test_throughput_line_formats_rate(self):
        from repro.experiments.runner import throughput_line
        from repro.metrics.summary import RunSummary
        from repro.parallel.specs import RunSpec
        from repro.workloads.scenarios import tiny_test

        params = tiny_test(seed=1)
        spec = RunSpec(params=params, seed=1, sweep="s", label="p",
                       repeat=0, total_repeats=1)
        summary = RunSummary(
            params=params, seed=1,
            final_cooperative=0, final_uncooperative=0, final_waiting=0,
            final_rejected=0, arrivals_cooperative=0,
            arrivals_uncooperative=0, admitted_cooperative=0,
            admitted_uncooperative=0, refusals={},
            refused_due_to_introducer_reputation=0,
            refused_uncooperative_by_selective=0, transactions_attempted=0,
            transactions_served=0, transactions_denied=0, success_rate=0.0,
            introductions_granted=0, audits_passed=0, audits_failed=0,
            total_reputation_lent=0.0, total_rewards_paid=0.0,
            total_stakes_lost=0.0, elapsed_seconds=1.5,
        )
        line = throughput_line(spec, summary)
        assert "tx/s" in line and "3,000" in line
        summary.elapsed_seconds = 0.0
        assert "n/a" in throughput_line(spec, summary)
