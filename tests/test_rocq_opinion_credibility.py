"""Tests for ROCQ local opinions and reporter credibility."""

from __future__ import annotations

import pytest

from repro.rocq.credibility import CredibilityRecord, CredibilityTable
from repro.rocq.opinion import LocalOpinion, OpinionBook, opinion_entropy


class TestLocalOpinion:
    def test_first_sample_adopted_directly(self):
        opinion = LocalOpinion()
        opinion.record(1.0, smoothing=0.3)
        assert opinion.value == pytest.approx(1.0)
        assert opinion.interactions == 1

    def test_smoothing_moves_towards_new_samples(self):
        opinion = LocalOpinion()
        opinion.record(1.0, smoothing=0.3)
        opinion.record(0.0, smoothing=0.3)
        assert opinion.value == pytest.approx(0.7)

    def test_value_clamped_to_unit_interval(self):
        opinion = LocalOpinion()
        opinion.record(5.0, smoothing=0.5)
        assert opinion.value == 1.0
        opinion.record(-3.0, smoothing=0.5)
        assert 0.0 <= opinion.value <= 1.0

    def test_variance_zero_for_constant_samples(self):
        opinion = LocalOpinion()
        for _ in range(10):
            opinion.record(1.0, smoothing=0.3)
        assert opinion.variance == pytest.approx(0.0)

    def test_variance_positive_for_mixed_samples(self):
        opinion = LocalOpinion()
        for value in (1.0, 0.0, 1.0, 0.0):
            opinion.record(value, smoothing=0.3)
        assert opinion.variance > 0.0

    def test_quality_zero_before_any_interaction(self):
        assert LocalOpinion().quality == 0.0

    def test_quality_grows_with_consistent_interactions(self):
        opinion = LocalOpinion()
        qualities = []
        for _ in range(20):
            opinion.record(1.0, smoothing=0.3)
            qualities.append(opinion.quality)
        assert qualities[-1] > qualities[0]
        assert qualities[-1] <= 1.0

    def test_quality_lower_for_erratic_behaviour(self):
        steady = LocalOpinion()
        erratic = LocalOpinion()
        for index in range(20):
            steady.record(1.0, smoothing=0.3)
            erratic.record(float(index % 2), smoothing=0.3)
        assert erratic.quality < steady.quality


class TestOpinionBook:
    def test_records_per_subject(self):
        book = OpinionBook(owner=1)
        book.record_interaction(2, 1.0)
        book.record_interaction(3, 0.0)
        assert len(book) == 2
        assert set(book.subjects()) == {2, 3}

    def test_opinion_about_unknown_subject_is_none(self):
        assert OpinionBook(owner=1).opinion_about(9) is None

    def test_repeated_interactions_update_same_opinion(self):
        book = OpinionBook(owner=1, smoothing=0.5)
        book.record_interaction(2, 1.0)
        book.record_interaction(2, 0.0)
        opinion = book.opinion_about(2)
        assert opinion is not None
        assert opinion.interactions == 2
        assert opinion.value == pytest.approx(0.5)


class TestOpinionEntropy:
    def test_maximal_at_half(self):
        assert opinion_entropy(0.5) == pytest.approx(1.0)

    def test_small_near_extremes(self):
        assert opinion_entropy(0.001) < 0.05
        assert opinion_entropy(0.999) < 0.05


class TestCredibility:
    def test_initial_credibility_for_unknown_reporter(self):
        table = CredibilityTable(initial_credibility=0.4)
        assert table.credibility_of(7) == pytest.approx(0.4)

    def test_agreement_raises_credibility(self):
        table = CredibilityTable(initial_credibility=0.5, gain=0.2)
        for _ in range(10):
            table.update(reporter=1, reported_value=0.9, aggregate=0.9)
        assert table.credibility_of(1) > 0.8

    def test_disagreement_lowers_credibility(self):
        table = CredibilityTable(initial_credibility=0.5, gain=0.2)
        for _ in range(10):
            table.update(reporter=1, reported_value=0.0, aggregate=1.0)
        assert table.credibility_of(1) < 0.2

    def test_update_returns_new_value(self):
        table = CredibilityTable()
        value = table.update(reporter=3, reported_value=1.0, aggregate=1.0)
        assert value == table.credibility_of(3)

    def test_record_counts_reports(self):
        record = CredibilityRecord(value=0.5)
        record.update(agreement=1.0, gain=0.1)
        record.update(agreement=0.0, gain=0.1)
        assert record.reports == 2

    def test_credibility_stays_in_unit_interval(self):
        record = CredibilityRecord(value=0.5)
        for agreement in (1.5, -0.5, 1.0, 0.0):
            record.update(agreement, gain=0.9)
            assert 0.0 <= record.value <= 1.0

    def test_known_reporters_listing(self):
        table = CredibilityTable()
        table.update(1, 1.0, 1.0)
        table.update(2, 0.0, 1.0)
        assert set(table.known_reporters()) == {1, 2}
        assert len(table) == 2
