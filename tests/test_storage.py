"""Durable reputation storage: drivers, checkpoint/restore, persist facet.

The conformance class is parametrised over every registered driver so a
postgres driver added later is held to exactly the same contract by adding
one fixture branch.
"""

from __future__ import annotations

import concurrent.futures
import json
import math

import pytest

from repro.analysis.storage import ResultStore
from repro.api import RunRequest
from repro.config import SimulationParameters
from repro.errors import ConfigurationError, PersistenceError
from repro.metrics.summary import RunSummary, summary_digest
from repro.parallel.cache import RunCache
from repro.parallel.executor import run_specs
from repro.reputation.backend import (
    available_schemes,
    backend_state_digest,
    make_reputation_backend,
)
from repro.sim.engine import Simulation
from repro.storage import (
    BackendPersistence,
    MemoryReputationStore,
    PeerRecord,
    PersistSpec,
    SqliteReputationStore,
    make_store,
    store_drivers,
)

TINY = SimulationParameters(
    num_initial_peers=20,
    num_transactions=300,
    arrival_rate=0.05,
    waiting_period=20.0,
    sample_interval=100.0,
    audit_transactions=5,
)


@pytest.fixture(params=sorted(store_drivers()))
def store(request, tmp_path):
    """One initialised store per registered driver (conformance axis)."""
    if request.param == "memory":
        built = make_store("memory://")
    elif request.param == "sqlite":
        built = make_store(f"sqlite://{tmp_path}/conformance.db")
    else:  # pragma: no cover - future drivers opt in here
        pytest.skip(f"no fixture branch for driver {request.param!r}")
    yield built
    built.close()


# --------------------------------------------------------------------- #
# Driver conformance (identical behaviour for every driver)               #
# --------------------------------------------------------------------- #
class TestStoreConformance:
    def test_initialize_is_idempotent(self, store):
        store.initialize()
        store.initialize()

    def test_state_round_trip_and_overwrite(self, store):
        payload = {"scheme": "rocq", "value": 0.1 + 0.2, "nested": {"a": [1, 2]}}
        store.save_state("k", "rocq", payload, digest="d1", saved_at=5.0)
        snapshot = store.load_state("k")
        assert snapshot.scheme == "rocq"
        assert snapshot.digest == "d1"
        assert snapshot.saved_at == 5.0
        # Bit-exact float round-trip is the whole persistence contract.
        assert snapshot.payload == payload
        store.save_state("k", "beta", {"scheme": "beta"}, digest="d2")
        again = store.load_state("k")
        assert (again.scheme, again.digest) == ("beta", "d2")

    def test_load_missing_state_is_none(self, store):
        assert store.load_state("nope") is None

    def test_state_keys_sorted_and_delete(self, store):
        for key in ("b", "a", "c"):
            store.save_state(key, "rocq", {"k": key})
        assert store.state_keys() == ["a", "b", "c"]
        assert store.delete_state("b") is True
        assert store.delete_state("b") is False
        assert store.state_keys() == ["a", "c"]

    def test_non_json_payload_rejected_identically(self, store):
        with pytest.raises(PersistenceError):
            store.save_state("bad", "rocq", {"x": float("nan")})
        with pytest.raises(PersistenceError):
            store.save_state("bad", "rocq", {"x": object()})
        assert store.load_state("bad") is None

    def test_init_peer_is_idempotent(self, store):
        assert store.init_peer("rocq", 7, 0.5) is True
        assert store.init_peer("rocq", 7, 0.9) is False
        assert store.get_peer("rocq", 7).score == 0.5

    def test_upsert_clamps_and_overwrites(self, store):
        store.upsert_peer("rocq", 1, 1.7, reports=3)
        store.upsert_peer("rocq", 2, -0.4)
        assert store.get_peer("rocq", 1).score == 1.0
        assert store.get_peer("rocq", 2).score == 0.0
        store.upsert_peer("rocq", 1, 0.25, reports=9, adjustments=2, updated_at=7.0)
        record = store.get_peer("rocq", 1)
        assert (record.score, record.reports, record.adjustments) == (0.25, 9, 2)
        assert record.updated_at == 7.0

    def test_list_peers_sorted_and_scheme_scoped(self, store):
        store.upsert_peers(
            "rocq",
            [PeerRecord("rocq", 5, 0.5), PeerRecord("rocq", 2, 0.2)],
        )
        store.upsert_peer("beta", 9, 0.9)
        assert [r.subject for r in store.list_peers("rocq")] == [2, 5]
        assert store.list_peers("unknown") == []
        assert store.peer_schemes() == ["beta", "rocq"]

    def test_get_missing_peer_is_none(self, store):
        assert store.get_peer("rocq", 404) is None


class TestMakeStore:
    def test_bare_path_and_url_open_the_same_sqlite_file(self, tmp_path):
        path = tmp_path / "store.db"
        with make_store(path) as first:
            assert isinstance(first, SqliteReputationStore)
            first.upsert_peer("rocq", 1, 0.5)
        with make_store(f"sqlite://{path}") as second:
            assert second.get_peer("rocq", 1).score == 0.5

    def test_memory_url_is_fresh_but_named_is_shared(self):
        assert make_store("memory://").load_state("k") is None
        shared = make_store("memory://test-shared-store")
        shared.save_state("k", "rocq", {"scheme": "rocq"})
        again = make_store("memory://test-shared-store")
        assert again is shared
        assert again.load_state("k") is not None
        # One holder closing its handle must not destroy shared state.
        again.close()
        assert make_store("memory://test-shared-store").load_state("k") is not None

    def test_unknown_driver_rejected(self):
        with pytest.raises(PersistenceError, match="unknown store driver"):
            make_store("postgres://not-yet")

    def test_memory_store_closed_after_close(self):
        plain = MemoryReputationStore()
        plain.close()
        with pytest.raises(PersistenceError, match="closed"):
            plain.state_keys()


# --------------------------------------------------------------------- #
# Backend checkpoint/restore (the acceptance criterion)                   #
# --------------------------------------------------------------------- #
class TestBackendRoundTrip:
    @pytest.mark.parametrize("scheme", available_schemes())
    def test_sqlite_round_trip_is_digest_identical(self, scheme, tmp_path):
        """save → close → reopen → restore reproduces state_digest exactly."""
        params = TINY.with_overrides(reputation_scheme=scheme)
        sim = Simulation(params, seed=11)
        sim.run()
        digest = backend_state_digest(sim.store)
        path = tmp_path / f"{scheme}.db"
        with make_store(path) as store:
            BackendPersistence(store, key="cp").checkpoint(sim.store, time=1.0)
        with make_store(path) as store:
            fresh = Simulation(params, seed=999).store
            assert BackendPersistence(store, key="cp").restore(fresh) is True
            assert backend_state_digest(fresh) == digest
            peers = store.list_peers(scheme)
        assert peers, "checkpoint must populate the queryable peer table"
        assert all(0.0 <= record.score <= 1.0 for record in peers)

    def test_restore_without_snapshot_returns_false(self, tmp_path):
        with make_store(tmp_path / "empty.db") as store:
            backend = Simulation(TINY, seed=1).store
            assert BackendPersistence(store, key="cp").restore(backend) is False

    def test_restore_rejects_scheme_mismatch(self, tmp_path):
        rocq = Simulation(TINY, seed=11)
        rocq.run()
        with make_store(tmp_path / "mix.db") as store:
            persistence = BackendPersistence(store, key="cp")
            persistence.checkpoint(rocq.store)
            beta = Simulation(
                TINY.with_overrides(reputation_scheme="beta"), seed=1
            ).store
            with pytest.raises(PersistenceError, match="scheme"):
                persistence.restore(beta)

    def test_restore_rejects_tampered_payload(self, tmp_path):
        sim = Simulation(TINY, seed=11)
        sim.run()
        with make_store(tmp_path / "tamper.db") as store:
            persistence = BackendPersistence(store, key="cp")
            persistence.checkpoint(sim.store)
            snapshot = store.load_state("cp")
            payload = snapshot.payload
            payload["reports_delivered"] = payload["reports_delivered"] + 1
            store.save_state("cp", snapshot.scheme, payload, digest=snapshot.digest)
            fresh = Simulation(TINY, seed=999).store
            with pytest.raises(PersistenceError, match="not bit-identical"):
                persistence.restore(fresh)

    def test_log_backend_refuses_restore_onto_used_state(self):
        params = TINY.with_overrides(reputation_scheme="beta")
        sim = Simulation(params, seed=11)
        sim.run()
        payload = sim.store.export_state()
        with pytest.raises(PersistenceError, match="already processed"):
            sim.store.restore_state(payload)

    def test_memory_round_trip_matches_sqlite(self, tmp_path):
        """The two drivers persist byte-equal snapshot payloads."""
        sim = Simulation(TINY, seed=11)
        sim.run()
        memory = make_store("memory://")
        sqlite = make_store(tmp_path / "pair.db")
        for store in (memory, sqlite):
            BackendPersistence(store, key="cp").checkpoint(sim.store, time=2.0)
        left = memory.load_state("cp")
        right = sqlite.load_state("cp")
        assert json.dumps(left.payload, sort_keys=True) == json.dumps(
            right.payload, sort_keys=True
        )
        assert left.digest == right.digest
        memory.close()
        sqlite.close()


# --------------------------------------------------------------------- #
# Engine / request / cache wiring                                         #
# --------------------------------------------------------------------- #
class TestPersistFacet:
    def test_request_stamps_specs_and_runs_checkpoint(self, tmp_path):
        db = tmp_path / "run.db"
        request = RunRequest(
            seed=11,
            label="persisted",
            overrides={
                "num_initial_peers": 20,
                "num_transactions": 300,
                "arrival_rate": 0.05,
                "waiting_period": 20.0,
                "sample_interval": 100.0,
                "audit_transactions": 5,
            },
            persist=str(db),
        )
        (spec,) = request.specs()
        assert spec.persist_path == str(db)
        assert spec.persist_key == "run/persisted"
        run_specs([spec])
        with make_store(db) as store:
            assert store.state_keys() == ["run/persisted"]
            assert store.load_state("run/persisted").scheme == "rocq"
            assert store.list_peers("rocq")

    def test_persist_excluded_from_fingerprint(self, tmp_path):
        plain = RunRequest(seed=3)
        persisted = plain.with_updates(
            persist=PersistSpec(store=str(tmp_path / "x.db"))
        )
        assert plain.fingerprint() == persisted.fingerprint()

    def test_persist_spec_parse_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown persist"):
            PersistSpec.parse({"store": "x", "mode": "nope"})
        with pytest.raises(ConfigurationError, match="'store'"):
            PersistSpec.parse({"key": "only"})

    def test_persist_incompatible_with_repeats_trace_shards(self, tmp_path):
        db = str(tmp_path / "x.db")
        with pytest.raises(ConfigurationError, match="repeats"):
            RunRequest(seed=1, repeats=2, persist=db)
        with pytest.raises(ConfigurationError, match="shards"):
            RunRequest(seed=1, shards=2, persist=db)
        with pytest.raises(ConfigurationError, match="trace"):
            RunRequest(
                seed=1, trace={"record": str(tmp_path / "t.jsonl")}, persist=db
            )

    def test_persisted_specs_bypass_the_run_cache(self, tmp_path):
        db = tmp_path / "bypass.db"
        cache = RunCache(tmp_path / "cache")
        request = RunRequest(
            seed=11,
            overrides={"num_transactions": 300, "num_initial_peers": 20},
        )
        run_specs(request.specs(), cache=cache)  # warm the cache
        assert cache.misses == 1
        persisted = request.with_updates(persist=str(db))
        run_specs(persisted.specs(), cache=cache)
        # No hit was recorded and the checkpoint still happened: the cached
        # summary must never stand in for the state write.
        assert cache.hits == 0
        with make_store(db) as store:
            assert store.state_keys()

    def test_resume_restores_before_the_run(self, tmp_path):
        db = tmp_path / "resume.db"
        first = RunRequest(
            seed=11,
            label="leg",
            overrides={"num_transactions": 300, "num_initial_peers": 20},
            persist={"store": str(db), "key": "chain"},
        )
        run_specs(first.specs())
        with make_store(db) as store:
            saved = store.load_state("chain").digest
        # A resumed Simulation starts from exactly the checkpointed state.
        with make_store(db) as store:
            persistence = BackendPersistence(store, key="chain", resume=True)
            sim = Simulation(first.resolve(), seed=12, persistence=persistence)
            assert backend_state_digest(sim.store) == saved
            sim.run()
            final = store.load_state("chain")
        assert final.digest == backend_state_digest(sim.store)
        assert final.digest != saved


# --------------------------------------------------------------------- #
# Satellite regressions: strict JSON, atomic writes, racing cache puts    #
# --------------------------------------------------------------------- #
class TestStrictJsonStorage:
    def test_nan_summary_round_trips_through_run_cache(self, tmp_path):
        """A NaN metric survives save → strict-JSON null → load as NaN."""
        params = TINY.with_overrides(num_transactions=5)
        summary = Simulation(params, seed=11).run()
        summary.success_rate = float("nan")
        summary.total_rewards_paid = float("nan")
        summary.uncooperative_reputation.append(10_000.0, float("nan"))
        cache = RunCache(tmp_path)
        cache.put(params, 11, summary)
        text = (tmp_path / f"{cache.key_for(params, 11)}.json").read_text()
        assert "NaN" not in text  # strict JSON on disk
        loaded = cache.get(params, 11)
        assert loaded is not None
        assert math.isnan(loaded.success_rate)
        assert math.isnan(loaded.total_rewards_paid)
        assert math.isnan(loaded.uncooperative_reputation.values[-1])
        assert summary_digest(loaded) == summary_digest(summary)

    def test_failed_save_leaves_no_temp_file(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_json("good", {"ok": True})
        with pytest.raises(TypeError):
            store.save_json("bad", {"handle": object()})
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["good.json"], "failed write must not leak temp files"


def _hammer_cache_put(root: str, label: int) -> int:
    """Worker: repeatedly write this process's summary under the shared key."""
    params = _RACE_PARAMS
    summary = Simulation(params, seed=11).run()
    summary.success_rate = float(label)
    cache = RunCache(root)
    for _ in range(40):
        cache.put(params, 11, summary)
    return label


_RACE_PARAMS = SimulationParameters(
    num_initial_peers=10, num_transactions=20, sample_interval=100.0
)


class TestConcurrentCachePut:
    def test_racing_puts_never_expose_a_torn_document(self, tmp_path):
        """Two processes hammer one (params, seed) key; readers always see a
        complete document equal to one writer's version (last-writer-wins)."""
        cache = RunCache(tmp_path)
        name = cache.key_for(_RACE_PARAMS, 11)
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_hammer_cache_put, str(tmp_path), label)
                for label in (1, 2)
            ]
            observed = set()
            while not all(future.done() for future in futures):
                loaded = cache.get(_RACE_PARAMS, 11)
                if loaded is not None:
                    # Atomic replace: a torn file would fail to parse (get
                    # would miss) or carry a rate belonging to no writer.
                    assert loaded.success_rate in (1.0, 2.0)
                    observed.add(loaded.success_rate)
            assert {future.result() for future in futures} == {1, 2}
        final = cache.get(_RACE_PARAMS, 11)
        assert final is not None and final.success_rate in (1.0, 2.0)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []
        assert (tmp_path / f"{name}.json").exists()


# --------------------------------------------------------------------- #
# Export/restore unit details                                             #
# --------------------------------------------------------------------- #
class TestExportPayloads:
    def test_rocq_export_drops_derived_caches(self, store_with_ring):
        store_with_ring.set_reputation(3, 0.8, time=1.0)
        payload = store_with_ring.export_state()
        assert payload["scheme"] == "rocq"
        assert all(isinstance(key, str) for key in payload["managers"])
        fresh = type(store_with_ring)(assignment=store_with_ring.assignment)
        fresh.restore_state(payload)
        assert fresh.state_digest() == store_with_ring.state_digest()
        assert fresh.global_reputation(3) == store_with_ring.global_reputation(3)

    def test_log_export_skips_zero_count_entries(self):
        params = SimulationParameters(reputation_scheme="beta")
        backend = make_reputation_backend(params, assignment=None)
        backend.system.record_interaction(1, 2, satisfied=True)
        # A defaultdict read artefact: zero count, must not be exported.
        assert backend.system.log.positive[(9, 9)] == 0
        payload = backend.export_state()
        assert payload["positive"] == [[1, 2, 1]]
        assert payload["negative"] == []
        fresh = make_reputation_backend(params, assignment=None)
        fresh.restore_state(payload)
        assert fresh.state_digest() == backend.state_digest()
