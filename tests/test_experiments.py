"""Tests for the experiment harness (smoke runs at minuscule scale)."""

from __future__ import annotations

import pytest

from repro.analysis.storage import ResultStore
from repro.config import SimulationParameters
from repro.experiments import (
    EXPERIMENTS,
    DetectionEval,
    Figure1Growth,
    Figure2ReputationOverTime,
    Figure3NaiveProportion,
    Figure4LentAmount,
    Figure5LentProportion,
    Figure6FreeriderFraction,
    RobustnessMatrix,
    SchemeComparison,
    SuccessRateExperiment,
    Table1Parameters,
    make_experiment,
    render_report,
    run_all,
)
from repro.experiments.base import ExperimentResult


#: A tiny base configuration shared by the smoke runs: small community, short
#: horizon, short waiting period so admissions actually happen.
SMOKE_BASE = SimulationParameters(
    num_initial_peers=80,
    num_transactions=4_000,
    arrival_rate=0.02,
    waiting_period=200.0,
    sample_interval=500.0,
    audit_transactions=5,
    seed=17,
)


def smoke(experiment_cls, **kwargs):
    """Instantiate an experiment at smoke scale (scale=1 of the tiny base)."""
    return experiment_cls(
        scale=1.0, repeats=1, seed=17, base_params=SMOKE_BASE, **kwargs
    )


class TestRegistry:
    def test_registry_covers_every_paper_artefact(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "figure1",
            "success",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "scheme_comparison",
            "robustness_matrix",
            "detection_eval",
        }

    def test_make_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            make_experiment("figure99")

    def test_make_experiment_builds_registered_class(self):
        experiment = make_experiment("figure1", scale=0.5, repeats=2, seed=9)
        assert isinstance(experiment, Figure1Growth)
        assert experiment.scale == 0.5
        assert experiment.repeats == 2


class TestTable1:
    def test_defaults_pass_checks(self):
        experiment = Table1Parameters(scale=1.0, repeats=1)
        result = experiment.run_and_validate()
        assert result.all_checks_passed
        assert "num_initial_peers (paper)" in result.scalars


class TestFigure1:
    def test_produces_two_series_and_scalars(self):
        result = smoke(Figure1Growth).run_and_validate()
        assert set(result.series) == {"Random Network", "Scale-free Network"}
        for points in result.series.values():
            assert len(points) >= 2
        assert any("final cooperative" in key for key in result.scalars)

    def test_growth_check_passes_at_smoke_scale(self):
        result = smoke(Figure1Growth).run_and_validate()
        by_name = {check.name: check for check in result.checks}
        assert by_name["uncooperative count grows with cooperative count"].passed
        assert by_name["slope well below the admission-free 1:3 ratio"].passed


class TestSuccessRate:
    def test_reports_both_configurations(self):
        result = smoke(SuccessRateExperiment).run_and_validate()
        lending_keys = [k for k in result.scalars if "lending" in k and "std" not in k]
        open_keys = [k for k in result.scalars if "open" in k and "std" not in k]
        assert lending_keys and open_keys
        for check in result.checks:
            assert check.passed, check


class TestFigure2:
    def test_series_per_arrival_rate(self):
        experiment = smoke(Figure2ReputationOverTime, arrival_rates=(0.005, 0.05))
        result = experiment.run_and_validate()
        assert set(result.series) == {"Arrival Rate 0.005", "Arrival Rate 0.05"}
        for points in result.series.values():
            assert all(0.0 <= y <= 1.0 for _, y in points if y == y)

    def test_uncooperative_reputation_scalar_recorded(self):
        experiment = smoke(Figure2ReputationOverTime, arrival_rates=(0.01,))
        result = experiment.run()
        assert "final uncooperative reputation (rate 0.01)" in result.scalars


class TestFigure3:
    def test_series_cover_requested_fractions(self):
        experiment = smoke(Figure3NaiveProportion, naive_fractions=(0.0, 1.0))
        result = experiment.run_and_validate()
        xs = [x for x, _ in result.series["Cooperative Peers"]]
        assert xs == [0.0, 1.0]
        assert "Uncooperative Peers" in result.series


class TestFigures4And5:
    def test_figure4_series_and_refusals(self):
        experiment = smoke(Figure4LentAmount, amounts=(0.05, 0.45))
        result = experiment.run_and_validate()
        assert set(result.series) == {
            "Cooperative Peers",
            "Uncooperative Peers",
            "Entry Refused due to Introducer Reputation",
            "Entry Refused to Uncooperative Peer",
        }
        assert experiment.sweep_result is not None

    def test_figure5_reuses_figure4_sweep(self):
        figure4 = smoke(Figure4LentAmount, amounts=(0.05, 0.45))
        figure4.run()
        figure5 = smoke(
            Figure5LentProportion, amounts=(0.05, 0.45),
            shared_sweep=figure4.sweep_result,
        )
        result = figure5.run_and_validate()
        assert any("reused" in note for note in result.notes)
        for points in result.series.values():
            for _, proportion in points:
                assert 0.0 <= proportion <= 1.0
        by_name = {check.name: check for check in result.checks}
        assert by_name["proportions are complementary"].passed


class TestFigure6:
    def test_series_and_extreme_points(self):
        experiment = smoke(Figure6FreeriderFraction, fractions=(0.0, 1.0))
        result = experiment.run_and_validate()
        coop = dict(result.series["Cooperative Peers"])
        assert coop[0.0] >= coop[100.0]
        assert "uncooperative arrivals at 100%" in result.scalars


class TestSchemeComparison:
    def test_one_row_per_scheme_with_labels(self):
        experiment = smoke(SchemeComparison, schemes=("rocq", "complaints", "beta"))
        result = experiment.run_and_validate()
        assert len(result.series["Cooperative admission rate"]) == 3
        assert set(result.x_ticks.values()) == {"rocq", "complaints", "beta"}
        # The labelled table is what feeds the analysis layer.
        first_column = [row[0] for row in result.table_rows()]
        assert first_column == ["rocq", "complaints", "beta"]
        assert result.all_checks_passed

    def test_lending_vs_most_permissive_baseline(self):
        experiment = smoke(SchemeComparison, schemes=("rocq", "complaints"))
        result = experiment.run()
        uncoop = dict(result.series["Uncooperative admission rate"])
        # Complaints-based trust admits every stranger under open admission;
        # lending makes freeriders earn an introduction.
        assert uncoop[1.0] == pytest.approx(1.0)
        assert uncoop[0.0] < uncoop[1.0]

    def test_horizon_is_capped_at_paper_scale(self):
        from repro.experiments.scheme_comparison import MAX_COMPARISON_TRANSACTIONS

        experiment = SchemeComparison(scale=1.0, repeats=1, seed=1)
        assert (
            experiment._effective_scale()
            * experiment.base_params.num_transactions
            == pytest.approx(MAX_COMPARISON_TRANSACTIONS)
        )


class TestRobustnessMatrix:
    def test_one_cell_per_scheme_attack_pair(self):
        experiment = smoke(
            RobustnessMatrix,
            schemes=("rocq", "tit_for_tat"),
            attacks=("whitewash_waves", "churn_storm"),
        )
        result = experiment.run_and_validate()
        # 2 metrics per attack, each with one point per scheme.
        assert len(result.series) == 4
        for points in result.series.values():
            assert len(points) == 2
        assert set(result.x_ticks.values()) == {"rocq", "tit_for_tat"}
        assert result.scalars["cells"] == 4.0
        assert result.all_checks_passed

    def test_lending_resists_whitewashing_that_a_baseline_concedes(self):
        """The acceptance-criterion cell: rocq low, a trusting baseline high."""
        experiment = smoke(
            RobustnessMatrix,
            schemes=("rocq", "tit_for_tat"),
            attacks=("whitewash_waves",),
        )
        result = experiment.run()
        gain = dict(result.series["whitewash_waves: attacker gain"])
        assert gain[0.0] + 0.1 < gain[1.0]  # rocq vs tit_for_tat

    def test_every_cell_carries_its_adversary_spec(self):
        experiment = smoke(
            RobustnessMatrix, schemes=("rocq",), attacks=("sybil_swarm",)
        )
        horizon = experiment.base_params.num_transactions
        points = experiment._points(horizon)
        assert len(points) == 1
        spec = points[0].overrides["adversary"]
        assert spec.name == "sybil_swarm"
        assert spec.interval == pytest.approx(horizon / 8.0)

    def test_horizon_is_capped_at_comparison_scale(self):
        from repro.experiments.scheme_comparison import MAX_COMPARISON_TRANSACTIONS

        experiment = RobustnessMatrix(scale=1.0, repeats=1, seed=1)
        assert (
            experiment._effective_scale()
            * experiment.base_params.num_transactions
            == pytest.approx(MAX_COMPARISON_TRANSACTIONS)
        )


class TestDetectionEval:
    def test_one_cell_per_scheme_attack_pair(self):
        experiment = smoke(
            DetectionEval,
            schemes=("rocq", "tit_for_tat"),
            attacks=("whitewash_waves",),
        )
        result = experiment.run_and_validate()
        # 6 detection metrics per attack, each with one point per scheme.
        assert len(result.series) == 6
        for points in result.series.values():
            assert len(points) == 2
        assert set(result.x_ticks.values()) == {"rocq", "tit_for_tat"}
        assert result.scalars["cells"] == 2.0
        assert result.scalars["adversary identities per run"] > 0
        assert result.all_checks_passed

    def test_grids_are_canonically_sorted(self):
        experiment = smoke(
            DetectionEval,
            schemes=("tit_for_tat", "rocq"),
            attacks=("whitewash_waves", "churn_storm"),
        )
        assert experiment.schemes == ("rocq", "tit_for_tat")
        assert experiment.attacks == ("churn_storm", "whitewash_waves")
        # The robustness matrix sorts the same way, so the two grids' cells
        # line up in the consolidated report.
        matrix = smoke(
            RobustnessMatrix,
            schemes=("tit_for_tat", "rocq"),
            attacks=("whitewash_waves", "churn_storm"),
        )
        assert matrix.schemes == experiment.schemes
        assert matrix.attacks == experiment.attacks

    def test_lending_separates_whitewashers_at_the_admission_threshold(self):
        """The acceptance-criterion cell: plain AUC can rank perfectly with
        an unusable margin (tit_for_tat holds whitewashers at 0.89), so the
        comparison runs at the admission threshold."""
        experiment = smoke(
            DetectionEval,
            schemes=("rocq", "tit_for_tat"),
            attacks=("whitewash_waves",),
        )
        result = experiment.run()
        admission = dict(result.series["whitewash_waves: admission auc"])
        assert admission[0.0] > admission[1.0] + 0.1  # rocq vs tit_for_tat

    def test_every_cell_carries_its_adversary_spec(self):
        experiment = smoke(
            DetectionEval, schemes=("rocq",), attacks=("sybil_swarm",)
        )
        horizon = experiment.base_params.num_transactions
        points = experiment._points(horizon)
        assert len(points) == 1
        assert points[0].overrides["adversary"].name == "sybil_swarm"

    def test_horizon_is_capped_at_comparison_scale(self):
        from repro.experiments.scheme_comparison import MAX_COMPARISON_TRANSACTIONS

        experiment = DetectionEval(scale=1.0, repeats=1, seed=1)
        assert (
            experiment._effective_scale()
            * experiment.base_params.num_transactions
            == pytest.approx(MAX_COMPARISON_TRANSACTIONS)
        )


class TestRunnerAndReport:
    def test_run_all_subset_with_store(self, tmp_path):
        store = ResultStore(tmp_path)
        results = run_all(
            scale=1.0,
            repeats=1,
            seed=17,
            only=["table1", "figure1"],
            store=store,
            base_params=SMOKE_BASE,
        )
        assert set(results) == {"table1", "figure1"}
        assert store.exists("figure1")
        for result in results.values():
            assert isinstance(result, ExperimentResult)
            assert result.checks  # validation ran

    def test_render_report_mentions_every_experiment(self):
        results = run_all(
            scale=1.0, repeats=1, seed=17, only=["table1"], base_params=SMOKE_BASE
        )
        report = render_report(results)
        assert "# Reproduction report" in report
        assert "table1" in report
        assert "PASS" in report or "FAIL" in report

    def test_result_render_text_and_to_dict(self):
        result = smoke(Figure1Growth).run_and_validate()
        text = result.render_text()
        assert "figure1" in text
        data = result.to_dict()
        assert data["experiment_id"] == "figure1"
        assert set(data["series"]) == set(result.series)
