"""Tests for introducer policies and the introduction protocol registry."""

from __future__ import annotations

import pytest

from repro.config import SimulationParameters
from repro.core.introduction import (
    IntroductionDecision,
    IntroductionRegistry,
    RefusalReason,
)
from repro.core.policies import (
    NaivePolicy,
    RefusingPolicy,
    SelectivePolicy,
    assign_policy,
)
from repro.errors import DuplicateIntroductionError, WaitingPeriodError
from repro.peers.behavior import CooperativeBehavior, FreeriderBehavior


class TestPolicies:
    def test_naive_accepts_everyone(self, rng):
        policy = NaivePolicy()
        assert policy.is_willing(CooperativeBehavior(), rng)
        assert policy.is_willing(FreeriderBehavior(), rng)

    def test_refusing_accepts_nobody(self, rng):
        policy = RefusingPolicy()
        assert not policy.is_willing(CooperativeBehavior(), rng)
        assert not policy.is_willing(FreeriderBehavior(), rng)

    def test_selective_always_accepts_cooperative(self, rng):
        policy = SelectivePolicy(error_rate=0.0)
        assert all(
            policy.is_willing(CooperativeBehavior(), rng) for _ in range(50)
        )

    def test_selective_refuses_uncooperative_without_error(self, rng):
        policy = SelectivePolicy(error_rate=0.0)
        assert not any(
            policy.is_willing(FreeriderBehavior(), rng) for _ in range(50)
        )

    def test_selective_error_rate_statistics(self, rng):
        policy = SelectivePolicy(error_rate=0.1)
        accepted = sum(
            policy.is_willing(FreeriderBehavior(), rng) for _ in range(5000)
        )
        assert 0.05 < accepted / 5000 < 0.16

    def test_assign_policy_uncooperative_always_naive(self, rng):
        params = SimulationParameters(fraction_naive=0.0)
        for _ in range(20):
            policy = assign_policy(FreeriderBehavior(), params, rng)
            assert isinstance(policy, NaivePolicy)

    def test_assign_policy_cooperative_mix(self, rng):
        params = SimulationParameters(fraction_naive=0.3)
        kinds = [
            type(assign_policy(CooperativeBehavior(), params, rng))
            for _ in range(3000)
        ]
        naive_fraction = kinds.count(NaivePolicy) / len(kinds)
        assert 0.25 < naive_fraction < 0.35
        assert SelectivePolicy in kinds

    def test_selective_policy_carries_error_rate_from_params(self, rng):
        params = SimulationParameters(fraction_naive=0.0, selective_error_rate=0.07)
        policy = assign_policy(CooperativeBehavior(), params, rng)
        assert isinstance(policy, SelectivePolicy)
        assert policy.error_rate == pytest.approx(0.07)


class TestIntroductionDecision:
    def test_acceptance_cannot_carry_reason(self):
        with pytest.raises(ValueError):
            IntroductionDecision(accepted=True, reason=RefusalReason.NO_INTRODUCER)

    def test_refusal_requires_reason(self):
        with pytest.raises(ValueError):
            IntroductionDecision(accepted=False)

    def test_valid_combinations(self):
        assert IntroductionDecision(accepted=True).accepted
        refusal = IntroductionDecision(
            accepted=False, reason=RefusalReason.SELECTIVE_REFUSAL
        )
        assert refusal.reason == RefusalReason.SELECTIVE_REFUSAL


class TestIntroductionRegistry:
    def _registry(self, waiting: float = 100.0) -> IntroductionRegistry:
        return IntroductionRegistry(waiting_period=waiting)

    def test_open_request_schedules_response_after_waiting_period(self):
        registry = self._registry(waiting=50.0)
        request = registry.open_request(
            applicant=1, introducer=2, decision=IntroductionDecision(accepted=True),
            time=10.0,
        )
        assert request.respond_at == pytest.approx(60.0)
        assert registry.pending_request(1) is request

    def test_second_request_during_waiting_period_raises(self):
        registry = self._registry(waiting=100.0)
        registry.open_request(
            applicant=1, introducer=2, decision=IntroductionDecision(accepted=True),
            time=0.0,
        )
        with pytest.raises(WaitingPeriodError):
            registry.open_request(
                applicant=1, introducer=3,
                decision=IntroductionDecision(accepted=True), time=50.0,
            )

    def test_request_allowed_after_waiting_period(self):
        registry = self._registry(waiting=100.0)
        registry.open_request(
            applicant=1, introducer=2,
            decision=IntroductionDecision(
                accepted=False, reason=RefusalReason.SELECTIVE_REFUSAL
            ),
            time=0.0,
        )
        registry.resolve(1, time=100.0)
        assert registry.can_request_at(1, 100.0)
        registry.open_request(
            applicant=1, introducer=3, decision=IntroductionDecision(accepted=True),
            time=100.0,
        )

    def test_resolve_marks_granted(self):
        registry = self._registry()
        registry.open_request(
            applicant=1, introducer=2, decision=IntroductionDecision(accepted=True),
            time=0.0,
        )
        request = registry.resolve(1, time=100.0)
        assert request.resolved
        assert registry.has_been_granted(1)
        assert registry.granted_count() == 1

    def test_duplicate_grant_detected(self):
        registry = self._registry(waiting=10.0)
        registry.open_request(
            applicant=1, introducer=2, decision=IntroductionDecision(accepted=True),
            time=0.0,
        )
        registry.resolve(1, time=10.0)
        registry.open_request(
            applicant=1, introducer=3, decision=IntroductionDecision(accepted=True),
            time=20.0,
        )
        with pytest.raises(DuplicateIntroductionError):
            registry.resolve(1, time=30.0)
        assert registry.duplicate_attempts == 1

    def test_refusals_do_not_count_as_grants(self):
        registry = self._registry(waiting=10.0)
        registry.open_request(
            applicant=1, introducer=2,
            decision=IntroductionDecision(
                accepted=False, reason=RefusalReason.INSUFFICIENT_REPUTATION
            ),
            time=0.0,
        )
        request = registry.resolve(1, time=10.0)
        assert not request.accepted
        assert not registry.has_been_granted(1)

    def test_unique_request_ids(self):
        registry = self._registry(waiting=1.0)
        ids = set()
        for applicant in range(20):
            request = registry.open_request(
                applicant=applicant, introducer=None,
                decision=IntroductionDecision(
                    accepted=False, reason=RefusalReason.NO_INTRODUCER
                ),
                time=0.0,
            )
            ids.add(request.request_id)
        assert len(ids) == 20

    def test_pending_requests_sorted_by_response_time(self):
        registry = self._registry(waiting=10.0)
        registry.open_request(
            applicant=2, introducer=None,
            decision=IntroductionDecision(
                accepted=False, reason=RefusalReason.NO_INTRODUCER
            ),
            time=5.0,
        )
        registry.open_request(
            applicant=1, introducer=None,
            decision=IntroductionDecision(
                accepted=False, reason=RefusalReason.NO_INTRODUCER
            ),
            time=1.0,
        )
        pending = registry.pending_requests()
        assert [request.applicant for request in pending] == [1, 2]
        assert len(registry.all_requests()) == 2
