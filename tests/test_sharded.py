"""Tests for the sharded simulation engine (:mod:`repro.sim.sharded`).

The contract under test is *bit-identity*: for any workload, any shard
count and any executor backend, the sharded epoch loop must produce exactly
the serial engine's summary digest.  Pinned here:

* **Arc partition** — the contiguous arcs cover the key circle exactly
  (no gaps, no overlap) and ``arc_of_key`` agrees with ``bounds``.
* **Barrier merge** — the cross-arc exchange stream is a pure function of
  the plans' contents, independent of worker completion order.
* **Digest equality** — serial vs sharded at K ∈ {1, 2, 4} across the
  serial/thread/process backends, over randomised workloads.
* **Golden digests** — the sharded path reproduces the pre-optimisation
  digests recorded in ``tests/data/preopt_digests.json``.
* **Trace replay** — the pre-optimisation trace replays bit-identically
  through the sharded path.
* **CLI surface** — ``run --shards`` reports shard/epoch/barrier telemetry
  in both text and ``--json`` modes without perturbing the digest.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.ids import KEY_SPACE_SIZE, peer_key, replica_key
from repro.metrics.summary import RunSummary, summary_digest
from repro.overlay.arcs import ArcPartition
from repro.sim.engine import run_simulation
from repro.sim.sharded import (
    DEFAULT_EPOCH_LENGTH,
    ShardPlan,
    ShardedSimulation,
    merge_outbound,
    plan_epoch_shard,
    run_sharded_simulation,
)
from repro.trace import TraceLog, replay_simulation
from repro.workloads.scenarios import paper_default

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Digest of ``preopt_tiny.jsonl``'s recorded run (same pin as
#: tests/test_perf_hotpath2.py) — the sharded path must reproduce it too.
PREOPT_TRACE_DIGEST = (
    "5a0b9ba8236e8ce849ce76e77043fa582b783b0a057f09c1f9287f5a0350ad9b"
)


def _tiny_params(seed: int = 1, arrival_rate: float = 0.2, scheme: str | None = None):
    overrides: dict = {"arrival_rate": arrival_rate}
    if scheme is not None:
        overrides["reputation_scheme"] = scheme
    return (
        paper_default(seed=seed).scaled(400 / 500_000).with_overrides(**overrides)
    )


class TestArcPartition:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 16])
    def test_bounds_tile_the_circle_exactly(self, shards):
        partition = ArcPartition(shards)
        cursor = 0
        for arc in range(shards):
            lo, hi = partition.bounds(arc)
            assert lo == cursor
            assert hi > lo
            cursor = hi
        assert cursor == KEY_SPACE_SIZE

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 16])
    def test_arc_of_key_agrees_with_bounds_at_edges(self, shards):
        partition = ArcPartition(shards)
        for arc in range(shards):
            lo, hi = partition.bounds(arc)
            assert partition.arc_of_key(lo) == arc
            assert partition.arc_of_key(hi - 1) == arc
            if arc:
                assert partition.arc_of_key(lo - 1) == arc - 1

    def test_arc_widths_within_one_key(self):
        partition = ArcPartition(7)
        widths = {
            hi - lo
            for lo, hi in (partition.bounds(arc) for arc in range(7))
        }
        assert max(widths) - min(widths) <= 1

    def test_arc_of_key_canonicalises_off_circle_keys(self):
        partition = ArcPartition(4)
        assert partition.arc_of_key(KEY_SPACE_SIZE) == partition.arc_of_key(0)
        assert partition.arc_of_key(-1) == partition.arc_of_key(KEY_SPACE_SIZE - 1)

    def test_arc_of_peer_and_manager_arcs_are_pure_hashes(self):
        partition = ArcPartition(4)
        assert partition.arc_of_peer(17) == partition.arc_of_key(peer_key(17))
        arcs = partition.manager_arcs(17, num_score_managers=3)
        assert arcs == {
            partition.arc_of_key(replica_key(17, index)) for index in range(3)
        }
        assert arcs <= set(range(4))

    def test_single_shard_owns_everything(self):
        partition = ArcPartition(1)
        assert partition.bounds(0) == (0, KEY_SPACE_SIZE)
        assert partition.manager_arcs(99, num_score_managers=5) == {0}

    def test_invalid_construction_and_bounds(self):
        with pytest.raises(ValueError):
            ArcPartition(0)
        with pytest.raises(ValueError):
            ArcPartition(2).bounds(2)


class TestEpochBarrierOrdering:
    """merge_outbound is the epoch exchange barrier's ordering guarantee."""

    @staticmethod
    def _plan(shard: int, outbound) -> ShardPlan:
        return ShardPlan(
            shard=shard,
            events=len(outbound),
            arrivals=0,
            membership_events=len(outbound),
            outbound=tuple(outbound),
        )

    def test_merge_is_independent_of_plan_order(self):
        rng = random.Random(7)
        messages = [
            (round(rng.uniform(0.0, 8.0), 3), rng.randrange(100), rng.randrange(4))
            for _ in range(40)
        ]
        plans = [
            self._plan(shard, messages[shard::4]) for shard in range(4)
        ]
        reference = merge_outbound(plans)
        for _ in range(5):
            shuffled = plans[:]
            rng.shuffle(shuffled)
            assert merge_outbound(shuffled) == reference
        assert reference == sorted(reference)

    def test_merge_orders_by_time_then_sequence_then_destination(self):
        plans = [
            self._plan(0, [(2.0, 5, 1), (1.0, 9, 3)]),
            self._plan(1, [(1.0, 9, 2), (1.0, 2, 0)]),
        ]
        assert merge_outbound(plans) == [
            (1.0, 2, 0),
            (1.0, 9, 2),
            (1.0, 9, 3),
            (2.0, 5, 1),
        ]

    def test_plan_epoch_shard_routes_only_cross_arc(self):
        shards = 4
        partition = ArcPartition(shards)
        subject = 23
        num_sm = 3
        home = partition.arc_of_peer(subject)
        events = [
            (1.0, 0, "arrival", -1),
            (1.5, 1, "sample", -1),
            (2.0, 2, "admission_response", subject),
        ]
        plan = plan_epoch_shard(home, shards, num_sm, events)
        assert plan.events == 3
        assert plan.arrivals == 1
        assert plan.membership_events == 1
        expected = {
            partition.arc_of_key(replica_key(subject, index))
            for index in range(num_sm)
        } - {home}
        assert {dest for _, _, dest in plan.outbound} == expected
        for time, sequence, _ in plan.outbound:
            assert (time, sequence) == (2.0, 2)


class TestShardedDigestEquality:
    """Serial vs sharded bit-identity over shard counts, seeds, backends."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_sharded_matches_serial_digest(self, shards, seed):
        params = _tiny_params(seed=seed)
        serial = summary_digest(run_simulation(params))
        summary = run_sharded_simulation(params, shards=shards)
        assert summary_digest(summary) == serial
        assert summary.sharding is not None
        assert summary.sharding["shards"] == shards

    @pytest.mark.parametrize("scheme", ["rocq", "eigentrust"])
    def test_sharded_matches_serial_across_schemes(self, scheme):
        params = _tiny_params(seed=3, scheme=scheme)
        serial = summary_digest(run_simulation(params))
        assert summary_digest(run_sharded_simulation(params, shards=4)) == serial

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_backends_are_bit_identical(self, backend):
        params = _tiny_params(seed=2)
        serial = summary_digest(run_simulation(params))
        summary = run_sharded_simulation(params, shards=4, backend=backend, jobs=2)
        assert summary_digest(summary) == serial
        assert summary.sharding["backend"] == backend

    def test_process_backend_is_bit_identical(self):
        # One case only: process pools are expensive to spin up and the
        # plan payloads' picklability is what this actually exercises.
        params = _tiny_params(seed=2)
        serial = summary_digest(run_simulation(params))
        summary = run_sharded_simulation(params, shards=2, backend="process", jobs=2)
        assert summary_digest(summary) == serial

    def test_random_workloads_property(self):
        """Random (seed, arrival_rate, epoch_length) draws stay bit-identical."""
        rng = random.Random(2026)
        for _ in range(3):
            seed = rng.randrange(1, 10_000)
            arrival_rate = rng.choice([0.05, 0.1, 0.2])
            epoch_length = rng.choice([1, 7, 64, 1024])
            params = _tiny_params(seed=seed, arrival_rate=arrival_rate)
            serial = summary_digest(run_simulation(params))
            for shards in (1, 2, 4):
                summary = run_sharded_simulation(
                    params, shards=shards, epoch_length=epoch_length
                )
                assert summary_digest(summary) == serial, (
                    f"divergence at seed={seed} shards={shards} "
                    f"epoch_length={epoch_length}"
                )

    def test_epoch_and_barrier_accounting(self):
        params = _tiny_params(seed=1)
        summary = run_sharded_simulation(params, shards=2, epoch_length=16)
        stats = summary.sharding
        assert stats["epoch_length"] == 16
        assert stats["epochs"] >= 1
        # Two barriers (exchange + commit) per epoch, by construction.
        assert stats["barriers"] == 2 * stats["epochs"]
        assert len(stats["epoch_exchange"]) == stats["epochs"]
        assert sum(stats["epoch_exchange"]) == stats["cross_arc_messages"]

    def test_default_epoch_length_is_used(self):
        params = _tiny_params(seed=1)
        summary = run_sharded_simulation(params, shards=2)
        assert summary.sharding["epoch_length"] == DEFAULT_EPOCH_LENGTH

    def test_invalid_configuration_raises(self):
        from repro.errors import SimulationError

        params = _tiny_params(seed=1)
        with pytest.raises(SimulationError):
            ShardedSimulation(params, shards=0)
        with pytest.raises(SimulationError):
            ShardedSimulation(params, shards=2, epoch_length=0)

    def test_sharding_never_perturbs_the_digest_document(self):
        """summary_digest must strip the sharding telemetry."""
        params = _tiny_params(seed=4)
        summary = run_sharded_simulation(params, shards=2)
        document = summary.to_dict()
        assert "sharding" in document
        round_tripped = RunSummary.from_dict(document)
        assert round_tripped.sharding == summary.sharding
        assert summary_digest(round_tripped) == summary_digest(summary)


class TestShardedGoldenDigests:
    """The sharded path reproduces the pre-optimisation golden digests."""

    def _golden(self) -> dict[str, str]:
        return json.loads(
            (DATA_DIR / "preopt_digests.json").read_text(encoding="utf-8")
        )

    def test_growth_stress_rocq_golden_digest_sharded(self):
        golden = self._golden()
        name = "growth_stress_1500_rocq"
        params = (
            paper_default(seed=1)
            .scaled(1500 / 500_000)
            .with_overrides(arrival_rate=0.2, reputation_scheme="rocq")
        )
        summary = run_sharded_simulation(params, shards=4)
        assert summary_digest(summary) == golden[name]

    def test_preopt_trace_replays_bit_identically_sharded(self):
        log = TraceLog.load(DATA_DIR / "preopt_tiny.jsonl")
        summary, _ = replay_simulation(log, shards=4)
        assert summary_digest(summary) == PREOPT_TRACE_DIGEST
        assert summary.sharding["shards"] == 4


class TestShardedCli:
    ARGS = ["run", "--scenario", "tiny_test", "--seed", "5", "--quiet"]

    def _run(self, capsys, argv):
        from repro import cli

        exit_code = cli.main(argv)
        captured = capsys.readouterr()
        return exit_code, captured.out, captured.err

    def test_json_reports_shards_and_barriers(self, capsys):
        exit_code, out, _ = self._run(
            capsys, [*self.ARGS, "--shards", "2", "--json"]
        )
        assert exit_code == 0
        document = json.loads(out)
        assert document["request"]["shards"] == 2
        stats = document["summaries"][0]["sharding"]
        assert stats["shards"] == 2
        assert stats["barriers"] == 2 * stats["epochs"]
        assert len(stats["epoch_exchange"]) == stats["epochs"]

    def test_shards_do_not_change_the_digest(self, capsys):
        exit_code, serial_out, _ = self._run(capsys, [*self.ARGS, "--json"])
        assert exit_code == 0
        exit_code, sharded_out, _ = self._run(
            capsys, [*self.ARGS, "--shards", "4", "--json"]
        )
        assert exit_code == 0
        assert (
            json.loads(serial_out)["digest"] == json.loads(sharded_out)["digest"]
        )

    def test_text_mode_prints_sharding_line(self, capsys):
        exit_code, out, _ = self._run(capsys, [*self.ARGS, "--shards", "2"])
        assert exit_code == 0
        assert "shards=2" in out
        assert "sharding:" in out
        assert "barrier(s)" in out

    def test_sharded_runs_bypass_the_cache(self, tmp_path, capsys):
        argv = [*self.ARGS, "--shards", "2", "--cache-dir", str(tmp_path)]
        exit_code, _, err = self._run(capsys, argv)
        assert exit_code == 0
        exit_code, _, err = self._run(capsys, argv)
        assert exit_code == 0
        # Second run must still miss: sharded specs never enter the cache.
        assert "1 hit(s)" not in err
