"""Tests for repro.rng (stream management) and repro.ids (identifiers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ids import (
    KEY_SPACE_SIZE,
    PeerIdAllocator,
    hash_to_key,
    peer_key,
    replica_key,
)
from repro.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "arrivals") == derive_seed(1, "arrivals")

    def test_differs_by_token(self):
        assert derive_seed(1, "arrivals") != derive_seed(1, "behaviour")

    def test_differs_by_master_seed(self):
        assert derive_seed(1, "arrivals") != derive_seed(2, "arrivals")

    def test_accepts_mixed_tokens(self):
        seed = derive_seed(7, "sweep", 3, ("point", 0.25))
        assert isinstance(seed, int)
        assert seed >= 0

    def test_fits_in_63_bits(self):
        for token in range(50):
            assert 0 <= derive_seed(123, token) < 2**63


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=3)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_reproducible_across_instances(self):
        first = RandomStreams(seed=3).stream("arrivals").random(5)
        second = RandomStreams(seed=3).stream("arrivals").random(5)
        assert np.allclose(first, second)

    def test_different_names_give_independent_sequences(self):
        streams = RandomStreams(seed=3)
        a = streams.stream("a").random(100)
        b = streams.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_consuming_one_stream_does_not_affect_another(self):
        reference = RandomStreams(seed=9).stream("b").random(10)
        streams = RandomStreams(seed=9)
        streams.stream("a").random(1000)  # consume a lot from another stream
        assert np.allclose(streams.stream("b").random(10), reference)

    def test_spawn_creates_independent_universe(self):
        parent = RandomStreams(seed=3)
        child_one = parent.spawn("point", 1)
        child_two = parent.spawn("point", 2)
        assert child_one.seed != child_two.seed
        assert child_one.seed == parent.spawn("point", 1).seed

    def test_names_and_reset(self):
        streams = RandomStreams(seed=0)
        streams.stream("z")
        streams.stream("a")
        assert streams.names() == ["a", "z"]
        streams.reset()
        assert streams.names() == []


class TestHashing:
    def test_hash_to_key_in_range(self):
        for payload in (b"", b"abc", b"peer:12345"):
            key = hash_to_key(payload)
            assert 0 <= key < KEY_SPACE_SIZE

    def test_peer_key_deterministic_and_distinct(self):
        assert peer_key(1) == peer_key(1)
        assert peer_key(1) != peer_key(2)

    def test_replica_keys_distinct_across_replicas(self):
        keys = {replica_key(42, index) for index in range(8)}
        assert len(keys) == 8

    def test_replica_keys_distinct_across_peers(self):
        assert replica_key(1, 0) != replica_key(2, 0)


class TestPeerIdAllocator:
    def test_allocates_consecutive_ids(self):
        allocator = PeerIdAllocator()
        assert [allocator.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_allocate_many(self):
        allocator = PeerIdAllocator()
        assert allocator.allocate_many(3) == [0, 1, 2]
        assert allocator.allocate() == 3

    def test_allocate_many_rejects_negative(self):
        with pytest.raises(ValueError):
            PeerIdAllocator().allocate_many(-1)

    def test_never_reuses_ids(self):
        allocator = PeerIdAllocator()
        seen = set(allocator.allocate_many(100))
        assert len(seen) == 100

    def test_iteration_yields_fresh_ids(self):
        allocator = PeerIdAllocator()
        iterator = iter(allocator)
        assert [next(iterator) for _ in range(3)] == [0, 1, 2]
