"""Tests for workloads (scenarios, sweeps) and the analysis helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.comparison import ShapeCheck, evaluate_checks, monotonic, roughly_flat
from repro.analysis.plotting import ascii_plot, sparkline
from repro.analysis.storage import ResultStore
from repro.analysis.tables import format_markdown_table, format_table
from repro.config import BootstrapMode, SimulationParameters, Topology
from repro.metrics.timeseries import TimeSeries
from repro.workloads.scenarios import (
    fixed_credit_baseline,
    high_arrival_stress,
    laptop_scale,
    open_admission_baseline,
    paper_default,
    random_topology_variant,
    tiny_test,
)
from repro.workloads.sweep import (
    ParameterSweep,
    SweepPoint,
    aggregate_mean,
    average_series,
)


class TestScenarios:
    def test_paper_default_matches_table1(self):
        assert paper_default() == SimulationParameters(seed=1)

    def test_laptop_scale_shrinks_horizon(self):
        params = laptop_scale(0.1)
        assert params.num_transactions == 50_000
        assert params.arrival_rate == pytest.approx(0.01)

    def test_tiny_test_is_actually_tiny(self):
        params = tiny_test()
        assert params.num_transactions <= 5_000
        assert params.num_initial_peers <= 100

    def test_variants_change_only_what_they_claim(self):
        base = paper_default()
        assert random_topology_variant(base).topology == Topology.RANDOM
        assert open_admission_baseline(base).bootstrap_mode == BootstrapMode.OPEN
        fixed = fixed_credit_baseline(base, credit=0.4)
        assert fixed.bootstrap_mode == BootstrapMode.FIXED_CREDIT
        assert fixed.fixed_initial_credit == pytest.approx(0.4)
        assert high_arrival_stress(0.2, base).arrival_rate == pytest.approx(0.2)


class TestSweepHelpers:
    def test_aggregate_mean(self):
        mean, std = aggregate_mean([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)
        mean, std = aggregate_mean([5.0])
        assert std == 0.0
        mean, std = aggregate_mean([])
        assert math.isnan(mean)

    def test_average_series_elementwise(self):
        a = TimeSeries()
        b = TimeSeries()
        for t in range(3):
            a.append(float(t), 1.0)
            b.append(float(t), 3.0)
        merged = average_series([a, b], name="avg")
        assert merged.values == [2.0, 2.0, 2.0]
        assert merged.name == "avg"

    def test_average_series_handles_nan_and_length_mismatch(self):
        a = TimeSeries()
        a.append(0.0, float("nan"))
        a.append(1.0, 2.0)
        b = TimeSeries()
        b.append(0.0, 4.0)
        merged = average_series([a, b])
        assert len(merged) == 1
        assert merged.values[0] == pytest.approx(4.0)

    def test_average_series_empty(self):
        assert len(average_series([])) == 0


class TestParameterSweep:
    def test_sweep_runs_each_point_with_repeats(self):
        base = tiny_test(seed=3).with_overrides(num_transactions=600)
        sweep = ParameterSweep(
            name="unit-sweep",
            base=base,
            points=[
                SweepPoint(label="low", x=0.0, overrides={"arrival_rate": 0.0}),
                SweepPoint(label="high", x=1.0, overrides={"arrival_rate": 0.05}),
            ],
            repeats=2,
        )
        messages = []
        result = sweep.run(progress=messages.append)
        assert set(result.summaries) == {"low", "high"}
        assert len(result.summaries_at("low")) == 2
        assert len(messages) == 4
        # No arrivals at rate 0: community stays at the founders.
        mean, _ = result.mean_metric("low", lambda s: float(s.final_cooperative))
        assert mean == base.num_initial_peers

    def test_sweep_series_ordering_matches_points(self):
        base = tiny_test(seed=5).with_overrides(num_transactions=400)
        sweep = ParameterSweep(
            name="ordered",
            base=base,
            points=[
                SweepPoint(label=f"p{i}", x=float(i), overrides={}) for i in range(3)
            ],
            repeats=1,
        )
        result = sweep.run()
        xs = [x for x, _, _ in result.series(lambda s: float(s.final_cooperative))]
        assert xs == [0.0, 1.0, 2.0]

    def test_params_for_applies_scale_and_overrides(self):
        base = paper_default()
        sweep = ParameterSweep(
            name="scaled",
            base=base,
            points=[SweepPoint(label="a", x=0.0, overrides={"arrival_rate": 0.05})],
            repeats=1,
            scale=0.01,
        )
        params = sweep.params_for(sweep.points[0])
        assert params.arrival_rate == pytest.approx(0.05)
        assert params.num_transactions == 5_000


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["b", 20]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in text

    def test_nan_rendered_as_na(self):
        text = format_table(["x"], [[float("nan")]])
        assert "n/a" in text


class TestPlotting:
    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] != line[-1]

    def test_sparkline_handles_nan_and_constant(self):
        assert sparkline([float("nan"), 1.0, 1.0])[0] == " "
        constant = sparkline([2.0, 2.0])
        assert len(set(constant)) == 1

    def test_ascii_plot_contains_legend_and_bounds(self):
        plot = ascii_plot(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            width=20,
            height=5,
            x_label="x",
            y_label="y",
        )
        assert "legend:" in plot
        assert "up" in plot and "down" in plot
        assert "[0 .. 1]" in plot

    def test_ascii_plot_empty(self):
        assert "(no data)" in ascii_plot({}, title="t")


class TestStorage:
    def test_json_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save_json("figure1", {"a": [1, 2, 3]})
        assert path.exists()
        assert store.load_json("figure1") == {"a": [1, 2, 3]}
        assert store.exists("figure1")
        assert "figure1" in store.list_documents()

    def test_names_are_sanitised(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save_json("weird name/../x", {"ok": True})
        assert path.parent == store.root

    def test_csv_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_csv("series", ["x", "y"], [[1, 2], [3, 4]])
        headers, rows = store.load_csv("series")
        assert headers == ["x", "y"]
        assert rows == [["1", "2"], ["3", "4"]]


class TestComparison:
    def test_monotonic_checks(self):
        ok, _ = monotonic([(0, 1.0), (1, 2.0), (2, 3.0)], increasing=True)
        assert ok
        ok, _ = monotonic([(0, 3.0), (1, 1.0)], increasing=True)
        assert not ok
        ok, _ = monotonic([(0, 3.0), (1, 2.9)], increasing=True, tolerance=0.5)
        assert ok

    def test_roughly_flat(self):
        ok, _ = roughly_flat([(0, 1.0), (1, 1.05), (2, 0.95)], relative_band=0.1)
        assert ok
        ok, _ = roughly_flat([(0, 1.0), (1, 2.0)], relative_band=0.1)
        assert not ok

    def test_shape_check_evaluation_and_error_capture(self):
        good = ShapeCheck(name="always", predicate=lambda result: (True, "fine"))
        bad = ShapeCheck(name="boom", predicate=lambda result: 1 / 0)
        results = evaluate_checks([good, bad], result=None)
        assert results[0].passed
        assert not results[1].passed
        assert "error" in results[1].detail
        assert "PASS" in str(results[0])
