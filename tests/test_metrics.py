"""Tests for the metrics layer: time series, success rate, collector, summary."""

from __future__ import annotations

import math

import pytest

from repro.config import SimulationParameters
from repro.core.audit import AuditOutcome, AuditResult
from repro.core.introduction import RefusalReason
from repro.core.lending import LendingStats
from repro.metrics.collector import MetricsCollector
from repro.metrics.success_rate import SuccessRateTracker
from repro.metrics.summary import RunSummary
from repro.metrics.timeseries import TimeSeries
from repro.peers.behavior import CooperativeBehavior, FreeriderBehavior
from repro.peers.peer import Peer


class TestTimeSeries:
    def test_append_and_length(self):
        series = TimeSeries(name="x")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2
        assert bool(series)

    def test_rejects_out_of_order_times(self):
        series = TimeSeries()
        series.append(5.0, 1.0)
        with pytest.raises(ValueError):
            series.append(4.0, 1.0)

    def test_finite_drops_nan(self):
        series = TimeSeries()
        series.append(0.0, float("nan"))
        series.append(1.0, 2.0)
        clean = series.finite()
        assert len(clean) == 1
        assert clean.values == [2.0]

    def test_mean_and_last_value(self):
        series = TimeSeries()
        assert math.isnan(series.mean())
        assert math.isnan(series.last_value())
        series.append(0.0, 1.0)
        series.append(1.0, 3.0)
        assert series.mean() == pytest.approx(2.0)
        assert series.last_value() == pytest.approx(3.0)

    def test_value_at(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        series.append(10.0, 2.0)
        assert series.value_at(5.0) == pytest.approx(1.0)
        assert series.value_at(10.0) == pytest.approx(2.0)
        assert math.isnan(series.value_at(-1.0))

    def test_round_trip_dict(self):
        series = TimeSeries(name="s")
        series.append(0.0, 0.5)
        rebuilt = TimeSeries.from_dict(series.to_dict())
        assert rebuilt.name == "s"
        assert rebuilt.times == series.times
        assert rebuilt.values == series.values

    def test_as_arrays(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        times, values = series.as_arrays()
        assert times.shape == values.shape == (1,)


class TestSuccessRateTracker:
    def test_empty_tracker_has_nan_rate(self):
        assert math.isnan(SuccessRateTracker().success_rate)

    def test_paper_formula(self):
        tracker = SuccessRateTracker()
        # 3 correct accepts, 1 wrong accept, 1 wrong denial, 5 correct denials.
        for _ in range(3):
            tracker.record(requester_cooperative=True, served=True)
        tracker.record(requester_cooperative=False, served=True)
        tracker.record(requester_cooperative=True, served=False)
        for _ in range(5):
            tracker.record(requester_cooperative=False, served=False)
        assert tracker.total_decisions == 10
        assert tracker.correct_decisions == 8
        assert tracker.success_rate == pytest.approx(0.8)

    def test_merge(self):
        a = SuccessRateTracker(accepted_cooperative=1, denied_uncooperative=1)
        b = SuccessRateTracker(accepted_uncooperative=1, denied_cooperative=1)
        merged = a.merge(b)
        assert merged.total_decisions == 4
        assert merged.success_rate == pytest.approx(0.5)

    def test_to_dict_contains_rate(self):
        tracker = SuccessRateTracker(accepted_cooperative=2)
        data = tracker.to_dict()
        assert data["accepted_cooperative"] == 2
        assert data["success_rate"] == pytest.approx(1.0)


class TestMetricsCollector:
    def _coop_peer(self, peer_id=1):
        return Peer(peer_id=peer_id, behavior=CooperativeBehavior())

    def _uncoop_peer(self, peer_id=2):
        return Peer(peer_id=peer_id, behavior=FreeriderBehavior())

    def test_arrival_and_admission_counters(self):
        collector = MetricsCollector()
        collector.record_arrival(self._coop_peer())
        collector.record_arrival(self._uncoop_peer())
        collector.record_admission(self._coop_peer())
        assert collector.arrivals_cooperative == 1
        assert collector.arrivals_uncooperative == 1
        assert collector.admitted_cooperative == 1
        assert collector.admitted_uncooperative == 0

    def test_refusal_breakdown(self):
        collector = MetricsCollector()
        collector.record_refusal(RefusalReason.SELECTIVE_REFUSAL, self._uncoop_peer())
        collector.record_refusal(RefusalReason.SELECTIVE_REFUSAL, self._coop_peer())
        collector.record_refusal(
            RefusalReason.INSUFFICIENT_REPUTATION, self._coop_peer()
        )
        assert collector.total_refusals == 3
        assert collector.refusal_count(RefusalReason.SELECTIVE_REFUSAL) == 2
        assert (
            collector.refusal_count(RefusalReason.SELECTIVE_REFUSAL, cooperative=False)
            == 1
        )
        assert (
            collector.refusal_count(RefusalReason.INSUFFICIENT_REPUTATION, cooperative=True)
            == 1
        )

    def test_service_decisions_feed_success_tracker(self):
        collector = MetricsCollector()
        collector.record_service_decision(
            requester_cooperative=True, respondent_cooperative=True, served=True
        )
        collector.record_service_decision(
            requester_cooperative=False, respondent_cooperative=True, served=False
        )
        # Decisions made by uncooperative respondents are not judged.
        collector.record_service_decision(
            requester_cooperative=True, respondent_cooperative=False, served=False
        )
        assert collector.transactions_attempted == 3
        assert collector.decisions.total_decisions == 2
        assert collector.decisions.success_rate == pytest.approx(1.0)

    def test_audit_recording(self):
        collector = MetricsCollector()
        collector.record_audit(
            AuditResult(entrant=1, introducer=2, outcome=AuditOutcome.PASSED,
                        entrant_reputation=0.8, time=1.0)
        )
        collector.record_audit(
            AuditResult(entrant=3, introducer=2, outcome=AuditOutcome.FAILED,
                        entrant_reputation=0.1, time=2.0)
        )
        assert collector.audits_passed == 1
        assert collector.audits_failed == 1

    def test_sample_snapshots_population(self, population_with_members, store_with_ring):
        collector = MetricsCollector()
        for peer in population_with_members.active_peers():
            store_with_ring.set_reputation(
                peer.peer_id, 0.9 if peer.is_cooperative else 0.1
            )
        collector.sample(10.0, population_with_members, store_with_ring)
        assert collector.cooperative_count.last_value() == pytest.approx(5.0)
        assert collector.uncooperative_count.last_value() == pytest.approx(1.0)
        assert collector.cooperative_reputation.last_value() == pytest.approx(0.9)
        assert collector.uncooperative_reputation.last_value() == pytest.approx(0.1)

    def test_to_dict_is_json_friendly(self):
        collector = MetricsCollector()
        collector.record_arrival(self._coop_peer())
        collector.record_refusal(RefusalReason.NO_INTRODUCER, self._coop_peer())
        data = collector.to_dict()
        assert data["arrivals_cooperative"] == 1
        assert data["refusals"] == {"no_introducer": 1}
        assert "decisions" in data


class TestRunSummary:
    def _summary(self) -> RunSummary:
        collector = MetricsCollector()
        collector.record_arrival(Peer(peer_id=1, behavior=CooperativeBehavior()))
        collector.record_admission(Peer(peer_id=1, behavior=CooperativeBehavior()))
        collector.record_service_decision(True, True, True)
        return RunSummary.from_run(
            params=SimulationParameters(),
            seed=7,
            collector=collector,
            lending_stats=LendingStats(introductions_granted=1),
            final_cooperative=90,
            final_uncooperative=10,
            final_waiting=2,
            final_rejected=3,
            elapsed_seconds=1.5,
        )

    def test_derived_quantities(self):
        summary = self._summary()
        assert summary.final_total == 100
        assert summary.final_uncooperative_fraction == pytest.approx(0.1)
        assert summary.success_rate == pytest.approx(1.0)

    def test_to_dict_round_trips_core_fields(self):
        summary = self._summary()
        data = summary.to_dict()
        assert data["final_cooperative"] == 90
        assert data["seed"] == 7
        assert data["introductions_granted"] == 1
        assert data["params"]["num_initial_peers"] == 500
