"""Tests for the transaction engine and the full simulation engine."""

from __future__ import annotations

import pytest

from repro.config import BootstrapMode, SimulationParameters
from repro.errors import SimulationError
from repro.peers.peer import PeerStatus
from repro.sim.engine import Simulation, run_simulation


class TestTransactionEngine:
    def _ready_simulation(self, **overrides) -> Simulation:
        params = SimulationParameters(
            num_initial_peers=30,
            num_transactions=200,
            arrival_rate=0.0,
            sample_interval=100.0,
            seed=9,
            **overrides,
        )
        simulation = Simulation(params)
        simulation.setup()
        return simulation

    def test_execute_returns_outcome_between_members(self):
        simulation = self._ready_simulation()
        outcome = simulation.transactions.execute(time=1.0)
        assert outcome is not None
        assert outcome.requester != outcome.respondent
        assert outcome.requester in simulation.population.active_ids
        assert outcome.respondent in simulation.population.active_ids

    def test_high_reputation_requesters_get_served(self):
        simulation = self._ready_simulation()
        served = 0
        total = 300
        for time in range(1, total + 1):
            outcome = simulation.transactions.execute(float(time))
            assert outcome is not None
            served += outcome.served
        # Founders all have reputation 1.0 so almost every request is served.
        assert served / total > 0.9

    def test_feedback_reaches_score_managers(self):
        simulation = self._ready_simulation()
        before = simulation.store.reports_delivered
        for time in range(1, 50):
            simulation.transactions.execute(float(time))
        assert simulation.store.reports_delivered > before

    def test_metrics_record_decisions(self):
        simulation = self._ready_simulation()
        for time in range(1, 100):
            simulation.transactions.execute(float(time))
        assert simulation.metrics.transactions_attempted == 99
        assert simulation.metrics.decisions.total_decisions > 0

    def test_no_transaction_with_fewer_than_two_members(self):
        params = SimulationParameters(
            num_initial_peers=1, num_transactions=10, arrival_rate=0.0, seed=1
        )
        simulation = Simulation(params)
        simulation.setup()
        assert simulation.transactions.execute(1.0) is None


class TestSimulationEngine:
    def test_run_produces_summary(self, micro_params):
        summary = run_simulation(micro_params)
        assert summary.final_cooperative >= micro_params.num_initial_peers
        assert summary.transactions_attempted > 0
        assert summary.params == micro_params
        assert len(summary.cooperative_count) >= 2

    def test_same_seed_reproduces_identical_results(self, micro_params):
        first = run_simulation(micro_params, seed=123)
        second = run_simulation(micro_params, seed=123)
        assert first.final_cooperative == second.final_cooperative
        assert first.final_uncooperative == second.final_uncooperative
        assert first.transactions_served == second.transactions_served
        assert first.success_rate == pytest.approx(second.success_rate, nan_ok=True)
        assert first.cooperative_reputation.values == second.cooperative_reputation.values

    def test_different_seeds_differ(self, micro_params):
        first = run_simulation(micro_params, seed=1)
        second = run_simulation(micro_params, seed=2)
        differs = (
            first.transactions_served != second.transactions_served
            or first.final_cooperative != second.final_cooperative
            or first.cooperative_reputation.values != second.cooperative_reputation.values
        )
        assert differs

    def test_running_twice_raises(self, micro_params):
        simulation = Simulation(micro_params)
        simulation.run()
        with pytest.raises(SimulationError):
            simulation.run()

    def test_arrivals_processed_and_classified(self, micro_params):
        summary = run_simulation(micro_params.with_overrides(arrival_rate=0.2))
        assert summary.arrivals_cooperative + summary.arrivals_uncooperative > 0

    def test_waiting_period_delays_admission(self):
        params = SimulationParameters(
            num_initial_peers=20,
            num_transactions=300,
            arrival_rate=0.05,
            waiting_period=200.0,
            sample_interval=100.0,
            seed=4,
        )
        simulation = Simulation(params)
        simulation.step(150)
        # No arrival can have been admitted yet: the waiting period is 200.
        admitted_entrants = [
            peer
            for peer in simulation.population.active_peers()
            if not peer.is_founder
        ]
        assert admitted_entrants == []

    def test_zero_arrival_rate_never_admits_anyone_new(self):
        params = SimulationParameters(
            num_initial_peers=25,
            num_transactions=500,
            arrival_rate=0.0,
            sample_interval=100.0,
            seed=2,
        )
        summary = run_simulation(params)
        assert summary.arrivals_cooperative == 0
        assert summary.arrivals_uncooperative == 0
        assert summary.final_cooperative == 25

    def test_closed_mode_rejects_all_arrivals(self):
        params = SimulationParameters(
            num_initial_peers=20,
            num_transactions=1000,
            arrival_rate=0.05,
            bootstrap_mode=BootstrapMode.CLOSED,
            sample_interval=200.0,
            seed=6,
        )
        summary = run_simulation(params)
        assert summary.admitted_cooperative == 0
        assert summary.admitted_uncooperative == 0
        assert summary.final_cooperative == 20
        assert summary.final_rejected > 0

    def test_open_mode_admits_everyone(self):
        params = SimulationParameters(
            num_initial_peers=20,
            num_transactions=1000,
            arrival_rate=0.05,
            bootstrap_mode=BootstrapMode.OPEN,
            waiting_period=0.0,
            sample_interval=200.0,
            seed=6,
        )
        summary = run_simulation(params)
        arrivals = summary.arrivals_cooperative + summary.arrivals_uncooperative
        admitted = summary.admitted_cooperative + summary.admitted_uncooperative
        assert arrivals > 0
        assert admitted == arrivals

    def test_departure_hook_removes_member(self, micro_params):
        simulation = Simulation(micro_params)
        simulation.setup()
        victim = simulation.population.active_ids[0]
        simulation.schedule_departure(victim, time=5.0)
        simulation.step(10)
        assert victim not in simulation.population.active_ids
        assert simulation.population.get(victim).status == PeerStatus.DEPARTED
        assert victim not in simulation.ring

    def test_lending_mode_entrants_start_with_lent_amount(self):
        params = SimulationParameters(
            num_initial_peers=30,
            num_transactions=2000,
            arrival_rate=0.02,
            waiting_period=50.0,
            fraction_uncooperative=0.0,
            sample_interval=500.0,
            seed=8,
        )
        simulation = Simulation(params)
        summary = simulation.run()
        entrants = [
            peer for peer in simulation.population.active_peers() if not peer.is_founder
        ]
        assert entrants, "expected at least one admitted entrant"
        assert summary.introductions_granted >= len(entrants)
        for peer in entrants:
            assert peer.introduced_by is not None

    def test_reputations_stay_in_unit_interval(self, micro_params):
        simulation = Simulation(micro_params.with_overrides(arrival_rate=0.1))
        simulation.run()
        for peer in simulation.population.active_peers():
            reputation = simulation.store.global_reputation(peer.peer_id)
            assert 0.0 <= reputation <= 1.0
