"""Tests for the Chord-style overlay ring, hashing and routing."""

from __future__ import annotations

import pytest

from repro.errors import UnknownPeerError
from repro.ids import KEY_SPACE_SIZE, peer_key
from repro.overlay.hashing import clockwise_distance, in_interval, ring_distance
from repro.overlay.ring import ChordRing
from repro.overlay.routing import lookup


class TestRingArithmetic:
    def test_ring_distance_symmetric(self):
        assert ring_distance(10, 20) == ring_distance(20, 10) == 10

    def test_ring_distance_wraps(self):
        assert ring_distance(1, KEY_SPACE_SIZE - 1) == 2

    def test_clockwise_distance_wraps(self):
        assert clockwise_distance(KEY_SPACE_SIZE - 1, 1) == 2
        assert clockwise_distance(1, KEY_SPACE_SIZE - 1) == KEY_SPACE_SIZE - 2

    def test_in_interval_simple(self):
        assert in_interval(5, 1, 10)
        assert not in_interval(1, 1, 10)
        assert in_interval(10, 1, 10)
        assert not in_interval(10, 1, 10, inclusive_right=False)

    def test_in_interval_wrapping(self):
        left = KEY_SPACE_SIZE - 10
        assert in_interval(3, left, 5)
        assert in_interval(KEY_SPACE_SIZE - 5, left, 5)
        assert not in_interval(100, left, 5)

    def test_in_interval_full_ring(self):
        assert in_interval(42, 7, 7)
        assert not in_interval(7, 7, 7, inclusive_right=False)


class TestChordRing:
    def test_join_and_contains(self):
        ring = ChordRing()
        ring.join(1)
        assert 1 in ring
        assert len(ring) == 1

    def test_join_is_idempotent(self):
        ring = ChordRing()
        node_first = ring.join(1)
        node_second = ring.join(1)
        assert node_first is node_second
        assert len(ring) == 1

    def test_leave_removes_node(self, ring_with_peers: ChordRing):
        ring_with_peers.leave(3)
        assert 3 not in ring_with_peers
        assert len(ring_with_peers) == 9

    def test_leave_unknown_peer_raises(self):
        ring = ChordRing()
        with pytest.raises(UnknownPeerError):
            ring.leave(99)

    def test_successor_of_own_key_is_self(self, ring_with_peers: ChordRing):
        for peer_id in range(10):
            node = ring_with_peers.node_for_peer(peer_id)
            assert ring_with_peers.successor_of(node.key).peer_id == peer_id

    def test_successor_is_clockwise_nearest(self, ring_with_peers: ChordRing):
        keys = sorted(
            ring_with_peers.node_for_peer(peer_id).key for peer_id in range(10)
        )
        probe = (keys[0] + 1) % KEY_SPACE_SIZE
        expected_key = keys[1] if keys[0] + 1 <= keys[1] else keys[0]
        assert ring_with_peers.successor_of(probe).key == expected_key

    def test_successors_of_returns_distinct_nodes_in_order(self, ring_with_peers):
        nodes = ring_with_peers.successors_of(0, 4)
        assert len(nodes) == 4
        assert len({node.peer_id for node in nodes}) == 4
        keys = [node.key for node in nodes]
        # Clockwise order from key 0 means non-decreasing until wrap.
        wrap_points = sum(1 for a, b in zip(keys, keys[1:]) if b < a)
        assert wrap_points <= 1

    def test_successors_of_caps_at_ring_size(self, ring_with_peers):
        nodes = ring_with_peers.successors_of(123, 50)
        assert len(nodes) == 10

    def test_neighbour_pointers_consistent(self, ring_with_peers: ChordRing):
        for peer_id in range(10):
            node = ring_with_peers.node_for_peer(peer_id)
            successor = ring_with_peers._nodes_by_key[node.successor]
            assert successor.predecessor == node.key

    def test_empty_ring_successor_raises(self):
        with pytest.raises(UnknownPeerError):
            ChordRing().successor_of(5)

    def test_single_node_is_its_own_neighbour(self):
        ring = ChordRing()
        node = ring.join(7)
        assert node.successor == node.key
        assert node.predecessor == node.key


class TestRouting:
    def test_lookup_finds_responsible_node(self, ring_with_peers: ChordRing):
        for peer_id in range(10):
            ring_with_peers.build_fingers(peer_id)
        target_key = peer_key(4)
        result = lookup(ring_with_peers, origin_peer=0, key=target_key)
        assert result.responsible_peer == 4
        assert result.path[0] == ring_with_peers.node_for_peer(0).key

    def test_lookup_without_fingers_still_correct(self, ring_with_peers: ChordRing):
        result = lookup(ring_with_peers, origin_peer=2, key=peer_key(8))
        assert result.responsible_peer == 8

    def test_lookup_from_responsible_peer_has_zero_or_one_hop(self, ring_with_peers):
        ring_with_peers.build_fingers(5)
        own_key = ring_with_peers.node_for_peer(5).key
        result = lookup(ring_with_peers, origin_peer=5, key=own_key)
        assert result.responsible_peer == 5
        assert result.hops <= 1

    def test_lookup_hop_count_scales_logarithmically(self):
        ring = ChordRing()
        for peer_id in range(128):
            ring.join(peer_id)
        for peer_id in range(128):
            ring.build_fingers(peer_id)
        worst = 0
        for target in range(0, 128, 7):
            result = lookup(ring, origin_peer=0, key=peer_key(target))
            assert result.responsible_peer == target
            worst = max(worst, result.hops)
        # log2(128) = 7; allow generous slack for the iterative walk.
        assert worst <= 24
