"""Tests for the consolidated report generator (and its CLI/HTTP surfaces).

The load-bearing contract is byte determinism: at a fixed seed the merged
JSON and Markdown artifacts are a pure function of the configuration — no
wall-clock fields, sorted keys, seed-derived experiment results, and a
bench section *read* from the committed report rather than re-measured.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro import cli
from repro.api.errors import UnknownNameError
from repro.api.server import ReputationServer
from repro.config import SimulationParameters
from repro.report import (
    REPORT_SECTIONS,
    generate_report,
    render_json,
    render_markdown,
    resolve_report_sections,
    write_report,
)

#: A minuscule base: 2 schemes x 1 attack at this horizon is 2 short runs.
TINY_BASE = SimulationParameters(
    num_initial_peers=25,
    num_transactions=800,
    arrival_rate=0.05,
    waiting_period=50.0,
    sample_interval=200.0,
    audit_transactions=5,
    seed=17,
)

BENCH_FIXTURE = {
    "description": "fixture benchmark",
    "all_bit_identical": True,
    "max_end_to_end_speedup": 2.5,
    "end_to_end": [
        {
            "workload": "figure1_growth",
            "arrival_rate": 0.01,
            "speedup": 2.5,
            "bit_identical": True,
            "before": {"tx_per_sec": 1000.0},
            "after": {"tx_per_sec": 2500.0},
        }
    ],
}


@pytest.fixture()
def bench_file(tmp_path):
    path = tmp_path / "BENCH_fixture.json"
    path.write_text(json.dumps(BENCH_FIXTURE))
    return path


def tiny_report(bench_path, sections=None):
    return generate_report(
        sections,
        scale=1.0,
        repeats=1,
        seed=17,
        base_params=TINY_BASE,
        schemes=["rocq", "tit_for_tat"],
        attacks=["whitewash_waves"],
        bench_path=bench_path,
    )


class TestSections:
    def test_default_is_every_section_in_canonical_order(self):
        assert resolve_report_sections(None) == REPORT_SECTIONS

    def test_selection_is_reordered_canonically_and_deduplicated(self):
        assert resolve_report_sections(["bench", "detection", "bench"]) == (
            "detection",
            "bench",
        )

    def test_unknown_section_raises_with_did_you_mean(self):
        with pytest.raises(UnknownNameError) as excinfo:
            resolve_report_sections(["detectoin"])
        assert excinfo.value.kind == "report section"
        assert excinfo.value.hint == "detection"

    def test_unknown_scheme_and_attack_are_validated_up_front(self):
        with pytest.raises(UnknownNameError):
            generate_report(["detection"], schemes=["rqoc"])
        with pytest.raises(UnknownNameError):
            generate_report(["detection"], attacks=["whitwash_waves"])


class TestGenerateReport:
    def test_merges_all_three_sources_deterministically(self, bench_file):
        first = tiny_report(bench_file)
        second = tiny_report(bench_file)
        assert render_json(first) == render_json(second)
        assert render_markdown(first) == render_markdown(second)
        assert first["sections"] == ["robustness", "detection", "bench"]
        assert first["robustness"]["experiment_id"] == "robustness_matrix"
        assert first["detection"]["experiment_id"] == "detection_eval"
        assert first["bench"]["available"] is True
        assert first["checks"]["total"] > 0

    def test_json_rendering_is_standard_json(self, bench_file):
        document = tiny_report(bench_file, sections=["detection", "bench"])
        # NaN cells (undetected adversaries) must serialise as null, not as
        # bare NaN tokens.
        parsed = json.loads(render_json(document))
        assert parsed["sections"] == ["detection", "bench"]

    def test_section_filter_skips_experiments(self, bench_file):
        document = tiny_report(bench_file, sections=["bench"])
        assert document["sections"] == ["bench"]
        assert "robustness" not in document
        assert "detection" not in document
        assert document["checks"]["total"] == 0

    def test_missing_bench_file_degrades_to_a_note(self, tmp_path):
        document = generate_report(
            ["bench"], bench_path=tmp_path / "missing.json"
        )
        assert document["bench"]["available"] is False
        assert "note" in document["bench"]
        # The degraded section still renders.
        assert "Hot-path benchmark" in render_markdown(document)

    def test_config_block_records_the_grid(self, bench_file):
        document = tiny_report(bench_file, sections=["bench"])
        assert document["config"]["seed"] == 17
        assert document["config"]["schemes"] == ["rocq", "tit_for_tat"]
        assert document["config"]["attacks"] == ["whitewash_waves"]

    def test_write_report_persists_both_artifacts(self, bench_file, tmp_path):
        document = tiny_report(bench_file, sections=["bench"])
        json_path, markdown_path = write_report(document, tmp_path / "out")
        assert json.loads(json_path.read_text())["sections"] == ["bench"]
        assert markdown_path.read_text() == render_markdown(document)
        # Re-writing the same document produces identical bytes.
        first_bytes = json_path.read_bytes()
        write_report(document, tmp_path / "out")
        assert json_path.read_bytes() == first_bytes


class TestReportCli:
    def run_cli(self, capsys, argv):
        exit_code = cli.main(argv)
        captured = capsys.readouterr()
        return exit_code, captured.out, captured.err

    def test_bench_only_report_renders_markdown(self, capsys, bench_file, tmp_path):
        exit_code, out, err = self.run_cli(
            capsys,
            [
                "report",
                "--sections",
                "bench",
                "--bench",
                str(bench_file),
                "--out",
                str(tmp_path / "report"),
            ],
        )
        assert exit_code == 0
        assert out.startswith("# Consolidated report")
        assert "fixture benchmark" in out
        assert (tmp_path / "report" / "report.json").exists()
        assert (tmp_path / "report" / "report.md").exists()

    def test_json_flag_prints_the_document(self, capsys, bench_file):
        exit_code, out, _ = self.run_cli(
            capsys,
            ["report", "--sections", "bench", "--bench", str(bench_file), "--json"],
        )
        assert exit_code == 0
        assert json.loads(out)["sections"] == ["bench"]

    def test_unknown_section_exits_2_with_hint(self, capsys):
        exit_code, _, err = self.run_cli(capsys, ["report", "--sections", "detectoin"])
        assert exit_code == 2
        assert "did you mean 'detection'" in err

    def test_unknown_scheme_exits_2(self, capsys):
        exit_code, _, err = self.run_cli(
            capsys, ["report", "--sections", "detection", "--schemes", "rqoc"]
        )
        assert exit_code == 2
        assert "unknown reputation scheme" in err


@contextmanager
def running_server(store_url: str, **kwargs):
    server = ReputationServer(store_url, port=0, **kwargs)
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever()), daemon=True
    )
    thread.start()
    assert server.started.wait(timeout=10), "server did not bind in time"
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "server did not shut down cleanly"


def get(server, path, timeout=120):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}{path}", timeout=timeout
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestReportEndpoint:
    def test_get_report_runs_the_detection_grid(self):
        with running_server("memory://report-endpoint") as server:
            status, document = get(
                server,
                "/report?scenario=tiny_test&seed=17&repeats=1"
                "&sections=detection&schemes=rocq&attacks=whitewash_waves",
            )
        assert status == 200
        assert document["sections"] == ["detection"]
        assert document["detection"]["experiment_id"] == "detection_eval"
        # Sanitised to standard JSON: a NaN cell arrives as null, never as a
        # parse error (urllib+json.loads above would have thrown).
        assert document["config"]["schemes"] == ["rocq"]

    def test_bad_query_values_are_400(self):
        with running_server("memory://report-endpoint-errors") as server:
            status, document = get(server, "/report?sections=nope")
            assert status == 400
            assert "unknown report section" in document["error"]
            status, document = get(server, "/report?seed=abc")
            assert status == 400
            assert "seed" in document["error"]
