"""Tests for the discrete-event machinery: events, queue, clock, arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.core.policies import NaivePolicy, SelectivePolicy
from repro.errors import SimulationError
from repro.peers.population import Population
from repro.sim.arrivals import ArrivalFactory, PoissonArrivalProcess
from repro.sim.clock import SimulationClock
from repro.sim.event_queue import EventQueue
from repro.sim.events import Event, EventKind


class TestEventOrdering:
    def test_events_order_by_time_then_sequence(self):
        early = Event(time=1.0, sequence=5, kind=EventKind.ARRIVAL)
        late = Event(time=2.0, sequence=1, kind=EventKind.SAMPLE)
        tie_first = Event(time=2.0, sequence=0, kind=EventKind.SAMPLE)
        assert early < late
        assert tie_first < late

    def test_payload_not_part_of_ordering(self):
        a = Event(time=1.0, sequence=0, payload={"x": 1})
        b = Event(time=1.0, sequence=1, payload={"x": 2})
        assert a < b


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.SAMPLE)
        queue.schedule(1.0, EventKind.ARRIVAL)
        queue.schedule(3.0, EventKind.ADMISSION_RESPONSE)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_simultaneous_events_keep_scheduling_order(self):
        queue = EventQueue()
        first = queue.schedule(2.0, EventKind.ARRIVAL, payload="first")
        second = queue.schedule(2.0, EventKind.ARRIVAL, payload="second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_due_yields_only_due_events(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.ARRIVAL)
        queue.schedule(2.0, EventKind.ARRIVAL)
        queue.schedule(10.0, EventKind.SAMPLE)
        due = list(queue.pop_due(5.0))
        assert [event.time for event in due] == [1.0, 2.0]
        assert len(queue) == 1

    def test_scheduling_into_the_past_raises(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.SAMPLE)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(1.0, EventKind.SAMPLE)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_and_next_time(self):
        queue = EventQueue()
        assert queue.peek() is None
        assert queue.next_time() == float("inf")
        queue.schedule(4.0, EventKind.SAMPLE)
        assert queue.peek() is not None
        assert queue.next_time() == pytest.approx(4.0)
        assert bool(queue)


class TestClock:
    def test_advance_forward(self):
        clock = SimulationClock()
        assert clock.advance_to(10.0) == pytest.approx(10.0)
        assert clock.now == pytest.approx(10.0)

    def test_advance_backwards_raises(self):
        clock = SimulationClock(now=5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_tick(self):
        clock = SimulationClock()
        clock.tick()
        clock.tick(2.5)
        assert clock.now == pytest.approx(3.5)
        with pytest.raises(SimulationError):
            clock.tick(-1.0)


class TestPoissonArrivals:
    def test_zero_rate_never_arrives(self, rng):
        process = PoissonArrivalProcess(rate=0.0, rng=rng)
        assert process.next_arrival_after(10.0) == float("inf")

    def test_arrivals_strictly_after_reference_time(self, rng):
        process = PoissonArrivalProcess(rate=0.5, rng=rng)
        for _ in range(100):
            assert process.next_arrival_after(7.0) > 7.0

    def test_mean_interarrival_matches_rate(self, rng):
        rate = 0.05
        process = PoissonArrivalProcess(rate=rate, rng=rng)
        gaps = [process.next_arrival_after(0.0) for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(1.0 / rate, rel=0.1)
        assert process.arrivals_generated == 4000


class TestArrivalFactory:
    def _factory(self, **overrides):
        params = SimulationParameters(**overrides)
        population = Population()
        factory = ArrivalFactory(
            params=params, population=population, rng=np.random.default_rng(3)
        )
        return factory, population

    def test_create_arrival_registers_waiting_peer(self):
        factory, population = self._factory()
        peer = factory.create_arrival(time=12.0)
        assert peer.peer_id in population
        assert peer.is_waiting
        assert peer.arrived_at == pytest.approx(12.0)
        assert not peer.is_founder

    def test_create_founder_is_cooperative(self):
        factory, _ = self._factory()
        founder = factory.create_founder()
        assert founder.is_founder
        assert founder.is_cooperative
        assert founder.introducer_policy is not None

    def test_uncooperative_fraction_statistics(self):
        factory, _ = self._factory(fraction_uncooperative=0.25)
        arrivals = [factory.create_arrival(time=0.0) for _ in range(3000)]
        uncooperative = sum(1 for peer in arrivals if not peer.is_cooperative)
        assert 0.20 < uncooperative / len(arrivals) < 0.30

    def test_uncooperative_arrivals_get_naive_policy(self):
        factory, _ = self._factory(fraction_uncooperative=1.0)
        arrivals = [factory.create_arrival(time=0.0) for _ in range(50)]
        assert all(isinstance(peer.introducer_policy, NaivePolicy) for peer in arrivals)

    def test_all_cooperative_when_fraction_zero(self):
        factory, _ = self._factory(fraction_uncooperative=0.0, fraction_naive=0.0)
        arrivals = [factory.create_arrival(time=0.0) for _ in range(50)]
        assert all(peer.is_cooperative for peer in arrivals)
        assert all(
            isinstance(peer.introducer_policy, SelectivePolicy) for peer in arrivals
        )
