"""Tests for ROCQ score managers and the replicated reputation store."""

from __future__ import annotations

import pytest

from repro.overlay.assignment import ScoreManagerAssignment
from repro.overlay.ring import ChordRing
from repro.rocq.protocol import AdjustmentKind, FeedbackReport, ReputationAdjustment
from repro.rocq.score_manager import ReputationRecord, ScoreManager
from repro.rocq.store import ReputationStore


class TestReputationRecord:
    def test_first_report_adopts_value(self):
        record = ReputationRecord()
        record.apply_report(1.0, weight=0.1, time=1.0)
        assert record.value == pytest.approx(1.0)

    def test_reports_move_value_by_weight(self):
        record = ReputationRecord(value=1.0, reports=1)
        record.apply_report(0.0, weight=0.25, time=2.0)
        assert record.value == pytest.approx(0.75)

    def test_value_clamped(self):
        record = ReputationRecord(value=0.9, reports=1)
        record.apply_adjustment(0.5, time=1.0)
        assert record.value == 1.0
        record.apply_adjustment(-2.0, time=2.0)
        assert record.value == 0.0

    def test_adjustment_returns_amount_actually_applied(self):
        record = ReputationRecord(value=0.95, reports=1)
        applied = record.apply_adjustment(0.2, time=1.0)
        assert applied == pytest.approx(0.05)
        applied = record.apply_adjustment(-0.1, time=2.0)
        assert applied == pytest.approx(-0.1)

    def test_snapshot_round_trip(self):
        record = ReputationRecord(value=0.42, reports=3, adjustments=1, last_update=9.0)
        rebuilt = ReputationRecord.from_snapshot(record.snapshot())
        assert rebuilt == record


class TestScoreManager:
    def test_unknown_subject_has_no_reputation(self):
        manager = ScoreManager(manager_id=1)
        assert manager.reputation_of(5) is None
        assert not manager.has_record(5)

    def test_receive_report_creates_record(self):
        manager = ScoreManager(manager_id=1)
        value = manager.receive_report(
            FeedbackReport(reporter=2, subject=5, value=1.0, quality=0.5, time=1.0)
        )
        assert manager.has_record(5)
        assert value == manager.reputation_of(5)

    def test_repeated_positive_reports_drive_reputation_up(self):
        manager = ScoreManager(manager_id=1)
        manager.set_reputation(5, 0.1)
        for time in range(1, 60):
            manager.receive_report(
                FeedbackReport(reporter=2, subject=5, value=1.0, quality=0.8,
                               time=float(time))
            )
        assert manager.reputation_of(5) > 0.8

    def test_repeated_negative_reports_drive_reputation_down(self):
        manager = ScoreManager(manager_id=1)
        manager.set_reputation(5, 0.9)
        for time in range(1, 60):
            manager.receive_report(
                FeedbackReport(reporter=2, subject=5, value=0.0, quality=0.8,
                               time=float(time))
            )
        assert manager.reputation_of(5) < 0.2

    def test_low_credibility_reporters_have_less_influence(self):
        with_credibility = ScoreManager(manager_id=1, use_credibility=True)
        without_credibility = ScoreManager(manager_id=2, use_credibility=False)
        # Reporter 9 destroys its credibility by always disagreeing with the
        # aggregate built by reporter 3; reporter 3 keeps agreeing with it.
        for manager in (with_credibility, without_credibility):
            for time in range(1, 40):
                manager.receive_report(
                    FeedbackReport(reporter=3, subject=7, value=1.0, quality=0.9,
                                   time=float(time))
                )
                manager.receive_report(
                    FeedbackReport(reporter=9, subject=7, value=0.0, quality=0.9,
                                   time=float(time))
                )
        low_cred = with_credibility.credibility.credibility_of(9)
        high_cred = with_credibility.credibility.credibility_of(3)
        assert low_cred < high_cred
        # Credibility weighting keeps the aggregate closer to the credible
        # reporter's view than plain unweighted averaging does.
        assert (
            with_credibility.reputation_of(7) > without_credibility.reputation_of(7)
        )
        assert with_credibility.reputation_of(7) > 0.5

    def test_adjustments_follow_protocol_messages(self):
        manager = ScoreManager(manager_id=1)
        manager.set_reputation(4, 0.5)
        applied = manager.receive_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.LEND_DEBIT, issuer=4, subject=4, delta=-0.1, time=1.0
            )
        )
        assert applied == pytest.approx(-0.1)
        assert manager.reputation_of(4) == pytest.approx(0.4)

    def test_quality_weighting_can_be_disabled(self):
        with_quality = ScoreManager(manager_id=1, use_quality=True)
        without_quality = ScoreManager(manager_id=2, use_quality=False)
        for manager in (with_quality, without_quality):
            manager.set_reputation(3, 0.5)
            manager.receive_report(
                FeedbackReport(reporter=1, subject=3, value=1.0, quality=0.1, time=1.0)
            )
        # Ignoring the low quality makes the report move the value further.
        assert without_quality.reputation_of(3) > with_quality.reputation_of(3)

    def test_export_and_install_record(self):
        source = ScoreManager(manager_id=1)
        target = ScoreManager(manager_id=2)
        source.set_reputation(5, 0.77, time=4.0)
        snapshot = source.export_record(5)
        assert snapshot is not None
        target.install_record(5, snapshot)
        assert target.reputation_of(5) == pytest.approx(0.77)

    def test_install_keeps_freshest_copy(self):
        manager = ScoreManager(manager_id=1)
        manager.set_reputation(5, 0.9, time=10.0)
        manager.install_record(5, {"value": 0.1, "reports": 1, "adjustments": 0,
                                   "last_update": 2.0})
        assert manager.reputation_of(5) == pytest.approx(0.9)


class TestFeedbackReportValidation:
    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            FeedbackReport(reporter=1, subject=2, value=1.5, quality=0.5, time=0.0)

    def test_rejects_out_of_range_quality(self):
        with pytest.raises(ValueError):
            FeedbackReport(reporter=1, subject=2, value=0.5, quality=-0.1, time=0.0)


class TestReputationStore:
    def test_default_reputation_for_unknown_subject(self, store_with_ring):
        assert store_with_ring.global_reputation(999) == pytest.approx(0.0)

    def test_set_and_query_reputation(self, store_with_ring):
        store_with_ring.set_reputation(3, 0.8)
        assert store_with_ring.global_reputation(3) == pytest.approx(0.8)

    def test_reports_update_all_replicas(self, store_with_ring):
        report = FeedbackReport(reporter=1, subject=4, value=1.0, quality=0.7, time=1.0)
        store_with_ring.submit_report(report)
        values = store_with_ring.replica_values(4)
        assert len(values) == len(store_with_ring.managers_for(4))
        assert all(value > 0.0 for value in values)

    def test_adjustment_mean_applied(self, store_with_ring):
        store_with_ring.set_reputation(2, 0.5)
        applied = store_with_ring.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.LEND_CREDIT, issuer=1, subject=2, delta=0.2, time=1.0
            )
        )
        assert applied == pytest.approx(0.2)
        assert store_with_ring.global_reputation(2) == pytest.approx(0.7)

    def test_median_combination(self):
        ring = ChordRing()
        for peer_id in range(6):
            ring.join(peer_id)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        store = ReputationStore(assignment=assignment, combine="median")
        store.set_reputation(0, 0.6)
        assert store.global_reputation(0) == pytest.approx(0.6)

    def test_assignment_cache_invalidation(self, store_with_ring):
        before = store_with_ring.managers_for(1)
        ring = store_with_ring.assignment.ring
        for peer_id in range(100, 130):
            ring.join(peer_id)
        # Without invalidation the cached assignment is returned.
        assert store_with_ring.managers_for(1) == before
        store_with_ring.invalidate_assignments()
        after = store_with_ring.managers_for(1)
        assert set(after) != set(before) or after == before  # recomputed, may differ

    def test_drop_manager_forgets_records(self, store_with_ring):
        store_with_ring.set_reputation(5, 0.9)
        managers = store_with_ring.managers_for(5)
        for manager in managers:
            store_with_ring.drop_manager(manager)
        # All replicas gone: the default reputation applies again.
        assert store_with_ring.global_reputation(5) == pytest.approx(0.0)

    def test_counters_track_deliveries(self, store_with_ring):
        store_with_ring.submit_report(
            FeedbackReport(reporter=1, subject=2, value=1.0, quality=0.5, time=0.0)
        )
        store_with_ring.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.SANCTION, issuer=2, subject=2, delta=-1.0, time=0.0
            )
        )
        assert store_with_ring.reports_delivered > 0
        assert store_with_ring.adjustments_delivered > 0

    def test_install_record_requires_snapshot_dict(self, store_with_ring):
        with pytest.raises(TypeError):
            store_with_ring.install_record(1, 2, record="not-a-dict")
