"""Tests for score-manager assignment and churn handling."""

from __future__ import annotations

import pytest

from repro.overlay.assignment import ScoreManagerAssignment
from repro.overlay.churn import ChurnKind, ChurnManager
from repro.overlay.ring import ChordRing
from repro.rocq.protocol import FeedbackReport
from repro.rocq.store import ReputationStore


def make_ring(count: int) -> ChordRing:
    ring = ChordRing()
    for peer_id in range(count):
        ring.join(peer_id)
    return ring


class TestScoreManagerAssignment:
    def test_returns_requested_number_of_managers(self):
        ring = make_ring(20)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=6)
        managers = assignment.managers_for(3)
        assert 1 <= len(managers) <= 6
        assert len(set(managers)) == len(managers)

    def test_excludes_subject_by_default(self):
        ring = make_ring(20)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=6)
        for subject in range(20):
            assert subject not in assignment.managers_for(subject)

    def test_exclude_self_disabled_allows_subject(self):
        ring = make_ring(1)
        assignment = ScoreManagerAssignment(
            ring=ring, num_score_managers=3, exclude_self=False
        )
        assert assignment.managers_for(0) == [0]

    def test_single_peer_ring_with_exclusion_falls_back_to_self(self):
        ring = make_ring(1)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        assert assignment.managers_for(0) == [0]

    def test_assignment_deterministic(self):
        ring = make_ring(15)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=4)
        assert assignment.managers_for(7) == assignment.managers_for(7)

    def test_assignment_changes_when_ring_changes(self):
        ring = make_ring(30)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=6)
        before = {subject: assignment.managers_for(subject) for subject in range(30)}
        for new_peer in range(30, 60):
            ring.join(new_peer)
        changed = sum(
            1 for subject in range(30) if assignment.managers_for(subject) != before[subject]
        )
        assert changed > 0

    def test_empty_ring_returns_no_managers(self):
        assignment = ScoreManagerAssignment(ring=ChordRing(), num_score_managers=3)
        assert assignment.managers_for(0) == []

    def test_managed_by_filters_subjects(self):
        ring = make_ring(10)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        subjects = list(range(10))
        for manager in range(10):
            for subject in assignment.managed_by(manager, subjects):
                assert manager in assignment.managers_for(subject)


class TestChurnManager:
    def _build(self, peers: int = 12):
        ring = make_ring(peers)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        store = ReputationStore(assignment=assignment)
        churn = ChurnManager(ring=ring, assignment=assignment, store=store)
        return ring, assignment, store, churn

    def test_join_event_recorded(self):
        ring, _, _, churn = self._build()
        event = churn.join(100, time=5.0)
        assert event.kind == ChurnKind.JOIN
        assert event.peer_id == 100
        assert 100 in ring
        assert churn.history == [event]

    def test_leave_event_recorded_and_node_removed(self):
        ring, _, _, churn = self._build()
        event = churn.leave(3, time=9.0)
        assert event.kind == ChurnKind.LEAVE
        assert 3 not in ring

    def test_crash_flag(self):
        _, _, _, churn = self._build()
        event = churn.leave(2, time=1.0, crashed=True)
        assert event.kind == ChurnKind.CRASH

    def test_records_survive_manager_departure(self):
        ring, assignment, store, churn = self._build(peers=12)
        subject = 5
        # Establish a reputation for the subject at all of its managers.
        for reporter in (1, 2, 3):
            store.submit_report(
                FeedbackReport(reporter=reporter, subject=subject, value=1.0,
                               quality=0.8, time=1.0)
            )
        reputation_before = store.global_reputation(subject)
        assert reputation_before > 0.0
        # Remove every original manager one by one; records must be migrated.
        for manager in list(store.managers_for(subject)):
            if manager == subject:
                continue
            churn.leave(manager, time=2.0)
            store.invalidate_assignments()
        reputation_after = store.global_reputation(subject)
        assert reputation_after == pytest.approx(reputation_before, abs=0.35)
        assert reputation_after > 0.0

    def test_join_migrates_records_to_new_manager(self):
        ring, assignment, store, churn = self._build(peers=8)
        subject = 2
        store.submit_report(
            FeedbackReport(reporter=1, subject=subject, value=1.0, quality=0.9, time=1.0)
        )
        baseline = store.global_reputation(subject)
        # A burst of joins forces some responsibility to move.
        for new_peer in range(100, 140):
            churn.join(new_peer, time=3.0)
            store.invalidate_assignments()
        after = store.global_reputation(subject)
        assert after == pytest.approx(baseline, abs=0.35)

    def test_reassignment_counter_increases_under_churn(self):
        _, assignment, _, churn = self._build(peers=10)
        for new_peer in range(50, 80):
            churn.join(new_peer, time=1.0)
        assert assignment.reassignments > 0
