"""Integration tests: end-to-end behaviour of the full simulated system.

These exercise the paper's qualitative claims at a small (seconds-long) scale
so the ordinary test suite already gives confidence that the full-scale
benchmark reproduction will show the right shapes.
"""

from __future__ import annotations

import pytest

from repro.config import BootstrapMode, SimulationParameters
from repro.sim.engine import Simulation, run_simulation

#: Shared small-but-meaningful configuration: ~160 arrivals over 8k transactions.
BASE = SimulationParameters(
    num_initial_peers=150,
    num_transactions=8_000,
    arrival_rate=0.02,
    waiting_period=250.0,
    sample_interval=1_000.0,
    audit_transactions=10,
    seed=42,
)


@pytest.fixture(scope="module")
def lending_run():
    """One lending-mode run shared by several assertions (it is not mutated)."""
    simulation = Simulation(BASE)
    summary = simulation.run()
    return simulation, summary


@pytest.fixture(scope="module")
def open_run():
    """The matching open-admission run."""
    params = BASE.with_overrides(bootstrap_mode=BootstrapMode.OPEN)
    simulation = Simulation(params)
    summary = simulation.run()
    return simulation, summary


class TestCommunityComposition:
    def test_cooperative_peers_dominate_admissions(self, lending_run):
        _, summary = lending_run
        assert summary.admitted_cooperative > summary.admitted_uncooperative

    def test_most_cooperative_arrivals_get_in(self, lending_run):
        _, summary = lending_run
        assert summary.arrivals_cooperative > 0
        admitted_fraction = summary.admitted_cooperative / summary.arrivals_cooperative
        assert admitted_fraction > 0.7

    def test_most_uncooperative_arrivals_kept_out(self, lending_run):
        _, summary = lending_run
        assert summary.arrivals_uncooperative > 0
        admitted_fraction = (
            summary.admitted_uncooperative / summary.arrivals_uncooperative
        )
        # Naive introducers (30% of coop + all uncoop members) still let some in;
        # the point of the mechanism is that the majority are kept out.
        assert admitted_fraction < 0.6

    def test_lending_admits_fewer_freeriders_than_open_admission(
        self, lending_run, open_run
    ):
        _, lending_summary = lending_run
        _, open_summary = open_run
        lending_fraction = lending_summary.admitted_uncooperative / max(
            1, lending_summary.arrivals_uncooperative
        )
        open_fraction = open_summary.admitted_uncooperative / max(
            1, open_summary.arrivals_uncooperative
        )
        assert open_fraction == pytest.approx(1.0)
        assert lending_fraction < open_fraction


class TestReputationDynamics:
    def test_cooperative_reputation_stays_high(self, lending_run):
        _, summary = lending_run
        assert summary.cooperative_reputation.finite().last_value() > 0.7

    def test_uncooperative_reputation_stays_low(self, lending_run):
        _, summary = lending_run
        final = summary.uncooperative_reputation.finite().last_value(default=0.0)
        assert final < 0.4

    def test_all_reputations_in_unit_interval(self, lending_run):
        simulation, _ = lending_run
        for peer in simulation.population.active_peers():
            reputation = simulation.store.global_reputation(peer.peer_id)
            assert 0.0 <= reputation <= 1.0

    def test_founders_keep_high_reputation(self, lending_run):
        simulation, _ = lending_run
        founder_reps = [
            simulation.store.global_reputation(peer.peer_id)
            for peer in simulation.population.founders()
        ]
        assert sum(founder_reps) / len(founder_reps) > 0.75


class TestDecisionQuality:
    def test_success_rate_is_high(self, lending_run):
        _, summary = lending_run
        assert summary.success_rate > 0.8

    def test_success_rate_comparable_to_open_admission(self, lending_run, open_run):
        _, lending_summary = lending_run
        _, open_summary = open_run
        assert abs(lending_summary.success_rate - open_summary.success_rate) < 0.12


class TestLendingAccounting:
    def test_every_admitted_entrant_has_an_introducer(self, lending_run):
        simulation, _ = lending_run
        entrants = [
            peer
            for peer in simulation.population.active_peers()
            if not peer.is_founder
        ]
        assert entrants
        assert all(peer.introduced_by is not None for peer in entrants)

    def test_introductions_match_admissions(self, lending_run):
        _, summary = lending_run
        admitted = summary.admitted_cooperative + summary.admitted_uncooperative
        assert summary.introductions_granted == admitted

    def test_audits_settle_and_mostly_pass_for_cooperative_majority(self, lending_run):
        _, summary = lending_run
        assert summary.audits_passed + summary.audits_failed > 0
        assert summary.audits_passed >= summary.audits_failed

    def test_rewards_and_stakes_are_consistent_with_audit_counts(self, lending_run):
        simulation, summary = lending_run
        stats = simulation.lending.stats
        assert stats.total_rewards_paid == pytest.approx(
            stats.audits_passed * BASE.reward_amount
        )
        assert stats.total_stakes_lost == pytest.approx(
            stats.audits_failed * BASE.intro_amount
        )

    def test_refusal_counts_consistent_with_arrivals(self, lending_run):
        _, summary = lending_run
        arrivals = summary.arrivals_cooperative + summary.arrivals_uncooperative
        admitted = summary.admitted_cooperative + summary.admitted_uncooperative
        refused = sum(summary.refusals.values())
        assert admitted + refused + summary.final_waiting == arrivals


class TestTopologyAndOverlayIntegration:
    def test_ring_contains_exactly_active_members(self, lending_run):
        simulation, _ = lending_run
        active = set(simulation.population.active_ids)
        assert set(simulation.ring.peers()) == active
        assert len(simulation.topology) == len(active)

    def test_score_managers_assigned_for_every_member(self, lending_run):
        simulation, _ = lending_run
        for peer_id in simulation.population.active_ids[:50]:
            managers = simulation.store.managers_for(peer_id)
            assert managers
            assert peer_id not in managers


class TestBaselineComparison:
    def test_fixed_credit_baseline_runs_and_admits_everyone(self):
        params = BASE.with_overrides(
            bootstrap_mode=BootstrapMode.FIXED_CREDIT, num_transactions=3_000
        )
        summary = run_simulation(params)
        arrivals = summary.arrivals_cooperative + summary.arrivals_uncooperative
        admitted = summary.admitted_cooperative + summary.admitted_uncooperative
        assert admitted == arrivals
        assert summary.success_rate > 0.6
