"""Tests for the hot-path benchmark subsystem (``repro.bench``)."""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench import (
    HotpathBenchConfig,
    bench_assignment_lookup,
    bench_end_to_end,
    bench_ring_ops,
    legacy_membership_path,
    run_hotpath_benchmarks,
    write_report,
)
from repro.bench.hotpath import compare_reports, format_compare_table
from repro.bench.__main__ import main as bench_main
from repro.overlay.ring import ChordRing
from repro.rocq.store import ReputationStore

#: Sub-second sizes so the suite stays fast; the real trajectory numbers are
#: produced by ``python -m repro.bench`` at the default sizes.
TINY = HotpathBenchConfig(
    num_transactions=60,
    ring_sizes=(32,),
    churn_ops=8,
    lookup_ring_size=32,
    lookups=40,
    warmup=0,
    samples=1,
)

#: The report contract: consumers (CI artifact diffing, the committed
#: repo-root report, the README tables) key into these names.
EXPECTED_TOP_KEYS = {
    "benchmark",
    "description",
    "created_unix",
    "python",
    "python_implementation",
    "platform",
    "machine",
    "cpu_count",
    "config",
    "end_to_end",
    "quick_reference",
    "sharding",
    "micro",
    "profile",
    "max_end_to_end_speedup",
    "all_bit_identical",
}
EXPECTED_MICRO_KEYS = {
    "ring_ops",
    "assignment_lookup",
    "event_queue",
    "eigentrust_refresh",
}
#: Provenance fields that make cross-machine comparisons interpretable.
EXPECTED_PROVENANCE_KEYS = {
    "python",
    "python_implementation",
    "platform",
    "machine",
    "cpu_count",
}
EXPECTED_CONFIG_KEYS = {
    "num_transactions",
    "seed",
    "ring_sizes",
    "churn_ops",
    "lookup_ring_size",
    "lookups",
    "warmup",
    "samples",
}
EXPECTED_END_TO_END_KEYS = {
    "workload",
    "num_transactions",
    "arrival_rate",
    "expected_arrivals",
    "before",
    "after",
    "speedup",
    "bit_identical",
}


class TestLegacyMode:
    def test_patches_are_restored_on_exit(self):
        original_join = ChordRing.join
        original_leave = ChordRing.leave
        original_changed = ReputationStore.membership_changed
        with legacy_membership_path():
            assert ChordRing.join is not original_join
        assert ChordRing.join is original_join
        assert ChordRing.leave is original_leave
        assert ReputationStore.membership_changed is original_changed

    def test_patches_are_restored_even_on_error(self):
        original_join = ChordRing.join
        try:
            with legacy_membership_path():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert ChordRing.join is original_join

    def test_legacy_mode_blanket_invalidates(self):
        ring = ChordRing()
        for peer_id in range(6):
            ring.join(peer_id)
        from repro.overlay.assignment import ScoreManagerAssignment

        store = ReputationStore(
            assignment=ScoreManagerAssignment(ring=ring, num_score_managers=2)
        )
        for subject in range(6):
            store.managers_for(subject)
        with legacy_membership_path():
            ring.join(50)
            store.membership_changed(ring.last_change)
        assert store._assignment_cache == {}
        assert store.full_invalidations == 1

    def test_legacy_mode_keeps_ring_pointers_correct(self):
        with legacy_membership_path():
            ring = ChordRing()
            for peer_id in range(10):
                ring.join(peer_id)
            ring.leave(4)
        node = ring.node_for_peer(0)
        assert node.successor in ring._nodes_by_key
        assert node.predecessor in ring._nodes_by_key


class TestReport:
    def test_report_structure_and_determinism_flags(self):
        report = run_hotpath_benchmarks(TINY)
        assert report["benchmark"] == "hotpath"
        assert {row["workload"] for row in report["end_to_end"]} == {
            "figure1_growth",
            "growth_stress",
        }
        for row in report["end_to_end"]:
            assert row["bit_identical"], row["workload"]
            assert row["before"]["tx_per_sec"] > 0
            assert row["after"]["tx_per_sec"] > 0
        assert report["all_bit_identical"] is True
        assert report["max_end_to_end_speedup"] > 0

    def test_ring_ops_rows(self):
        rows = bench_ring_ops(TINY)
        assert [row["ring_size"] for row in rows] == [32]
        assert rows[0]["ops"] == 16
        assert rows[0]["before_us_per_op"] > 0
        assert rows[0]["after_us_per_op"] > 0

    def test_assignment_lookup_row(self):
        row = bench_assignment_lookup(TINY)
        assert row["ring_size"] == 32
        assert row["cold_us_per_lookup"] > 0
        assert row["cached_us_per_lookup"] > 0
        eviction = row["targeted_eviction"]
        assert 0 <= eviction["evicted_by_one_join"] <= eviction["cached_subjects"]

    def test_write_report_round_trips(self, tmp_path):
        report = {"benchmark": "hotpath", "end_to_end": []}
        path = write_report(report, tmp_path / "BENCH_hotpath.json")
        assert json.loads(path.read_text(encoding="utf-8")) == report


class TestWarmupEdgeCases:
    def test_quick_config_uses_zero_warmup_iterations(self):
        assert HotpathBenchConfig.quick().warmup == 0
        assert HotpathBenchConfig().warmup == 1  # full runs warm up by default

    @pytest.mark.parametrize("warmup,expected_runs", [(0, 4), (1, 8), (2, 12)])
    def test_warmup_runs_are_untimed_extras(self, monkeypatch, warmup, expected_runs):
        """Each workload runs ``warmup`` extra untimed simulations per path."""
        import repro.bench.hotpath as hotpath_module

        calls: list[int] = []

        def fake_timed_run(params):
            calls.append(1)
            return 0.5, "constant-digest"

        monkeypatch.setattr(hotpath_module, "_timed_run", fake_timed_run)
        rows = bench_end_to_end(replace(TINY, warmup=warmup))
        assert len(calls) == expected_runs  # 2 workloads x 2 paths x (w + 1)
        assert all(row["bit_identical"] for row in rows)

    def test_zero_warmup_report_is_still_bit_identical(self):
        """--quick semantics: skipping warm-up must not change any result."""
        rows = bench_end_to_end(replace(TINY, warmup=0))
        assert all(row["bit_identical"] for row in rows)


class TestReportSchema:
    """BENCH_hotpath.json is a contract: its keys must stay stable."""

    def test_generated_report_keys(self):
        report = run_hotpath_benchmarks(TINY)
        assert set(report) == EXPECTED_TOP_KEYS
        assert set(report["config"]) == EXPECTED_CONFIG_KEYS
        assert set(report["micro"]) == EXPECTED_MICRO_KEYS
        for row in report["end_to_end"]:
            assert set(row) == EXPECTED_END_TO_END_KEYS
            assert set(row["before"]) == {"elapsed_seconds", "tx_per_sec"}
            assert set(row["after"]) == {"elapsed_seconds", "tx_per_sec"}

    def test_provenance_fields_are_populated(self):
        """Cross-machine comparisons need python/platform/CPU provenance."""
        report = run_hotpath_benchmarks(TINY, include_profile=False)
        assert report["python"]  # e.g. "3.11.7"
        assert report["python_implementation"]  # e.g. "CPython"
        assert report["platform"]  # full platform.platform() string
        assert report["machine"]
        assert isinstance(report["cpu_count"], int) and report["cpu_count"] >= 1

    def test_profile_section_aggregates_subsystems(self):
        report = run_hotpath_benchmarks(TINY)
        profile = report["profile"]
        assert profile["workload"] == "growth_stress"
        subsystems = {row["subsystem"] for row in profile["subsystems"]}
        # The layers the optimisation pass targets must be visible.
        assert {"rocq", "sim", "overlay"} <= subsystems
        assert profile["top_functions"]
        assert sum(row["share"] for row in profile["subsystems"]) == pytest.approx(
            1.0, abs=0.02
        )

    def test_committed_report_matches_the_schema(self):
        committed_path = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
        committed = json.loads(committed_path.read_text(encoding="utf-8"))
        assert set(committed) == EXPECTED_TOP_KEYS
        assert set(committed["config"]) == EXPECTED_CONFIG_KEYS
        assert set(committed["micro"]) == EXPECTED_MICRO_KEYS
        for key in EXPECTED_PROVENANCE_KEYS:
            assert committed[key], key
        for row in committed["end_to_end"]:
            assert set(row) == EXPECTED_END_TO_END_KEYS
        assert committed["all_bit_identical"] is True


class TestCli:
    def test_quick_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        # Even --quick runs two full simulations; shrink further via argv is
        # not exposed, so this is the one intentionally-slower test (~5 s).
        exit_code = bench_main(["--quick", "--out", str(out)])
        assert exit_code == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["all_bit_identical"] is True
        assert report["config"]["warmup"] == 0  # --quick skips warm-up
        captured = capsys.readouterr()
        assert "report written to" in captured.out

    def test_warmup_flag_overrides_the_config(self, tmp_path, monkeypatch):
        # The CLI (python -m repro bench, which the repro.bench shim
        # delegates to) runs the suite via SimulationService.bench, which
        # resolves run_hotpath_benchmarks on the hotpath module at call time.
        import repro.bench.hotpath as hotpath_module

        seen: dict[str, int] = {}

        def fake_run(config):
            seen["warmup"] = config.warmup
            return {
                "end_to_end": [],
                "micro": {
                    "ring_ops": [],
                    "assignment_lookup": {
                        "cold_us_per_lookup": 1.0,
                        "cached_us_per_lookup": 1.0,
                        "cache_speedup": 1.0,
                        "targeted_eviction": {
                            "evicted_by_one_join": 0,
                            "cached_subjects": 0,
                        },
                    },
                },
                "all_bit_identical": True,
            }

        monkeypatch.setattr(hotpath_module, "run_hotpath_benchmarks", fake_run)
        out = tmp_path / "bench.json"
        exit_code = bench_main(["--quick", "--warmup", "3", "--out", str(out)])
        assert exit_code == 0
        assert seen["warmup"] == 3

    def test_negative_warmup_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--quick", "--warmup", "-1", "--out", str(tmp_path / "x")])


def _report_with(
    workload: str,
    tx_per_sec: float,
    num_transactions: int | None = None,
    quick_tx_per_sec: float | None = None,
) -> dict:
    row: dict = {"workload": workload, "after": {"tx_per_sec": tx_per_sec}}
    if num_transactions is not None:
        row["num_transactions"] = num_transactions
    report: dict = {"platform": "test-rig", "end_to_end": [row]}
    if quick_tx_per_sec is not None:
        report["quick_reference"] = [
            {
                "workload": workload,
                "num_transactions": 600,
                "tx_per_sec": quick_tx_per_sec,
            }
        ]
    return report


class TestCompare:
    """The --compare primitive the CI perf gate calls."""

    def test_within_tolerance_passes(self):
        comparison = compare_reports(
            _report_with("growth_stress", 100.0),
            _report_with("growth_stress", 80.0),
            tolerance=0.25,
        )
        assert not comparison["regressed"]
        assert comparison["workloads"][0]["delta"] == pytest.approx(-0.2)

    def test_beyond_tolerance_regresses(self):
        comparison = compare_reports(
            _report_with("growth_stress", 100.0),
            _report_with("growth_stress", 70.0),
            tolerance=0.25,
        )
        assert comparison["regressed"]
        assert comparison["workloads"][0]["regression"]

    def test_faster_than_baseline_always_passes(self):
        comparison = compare_reports(
            _report_with("growth_stress", 100.0),
            _report_with("growth_stress", 500.0),
        )
        assert not comparison["regressed"]

    def test_unmatched_workloads_are_listed_not_gated(self):
        comparison = compare_reports(
            _report_with("figure1_growth", 100.0),
            _report_with("growth_stress", 1.0),
        )
        assert not comparison["regressed"]
        assert {row["workload"] for row in comparison["workloads"]} == {
            "figure1_growth",
            "growth_stress",
        }

    def test_quick_run_gates_against_quick_reference(self):
        """A --quick run is judged against the baseline's quick-size rows."""
        baseline = _report_with(
            "growth_stress", 8800.0, num_transactions=5000, quick_tx_per_sec=10000.0
        )
        current = _report_with("growth_stress", 4000.0, num_transactions=600)
        comparison = compare_reports(baseline, current, tolerance=0.25)
        row = comparison["workloads"][0]
        assert row["baseline_source"] == "quick_reference"
        assert row["baseline_tx_per_sec"] == 10000.0
        assert comparison["regressed"]

    def test_quick_run_within_tolerance_of_quick_reference_passes(self):
        baseline = _report_with(
            "growth_stress", 8800.0, num_transactions=5000, quick_tx_per_sec=10000.0
        )
        current = _report_with("growth_stress", 9000.0, num_transactions=600)
        comparison = compare_reports(baseline, current, tolerance=0.25)
        assert not comparison["regressed"]

    def test_quick_vs_quick_compares_best_against_worst(self):
        """Noise-robust gate: current best-of-N vs baseline worst good run."""
        baseline = _report_with(
            "growth_stress", 8800.0, num_transactions=5000, quick_tx_per_sec=10000.0
        )
        current = _report_with("growth_stress", 7000.0, num_transactions=600)
        current["quick_reference"] = [
            {
                "workload": "growth_stress",
                "num_transactions": 600,
                "tx_per_sec": 6000.0,
                "best_tx_per_sec": 9000.0,
            }
        ]
        comparison = compare_reports(baseline, current, tolerance=0.25)
        row = comparison["workloads"][0]
        assert row["baseline_source"] == "quick_reference"
        assert row["current_tx_per_sec"] == 9000.0  # best, not the e2e sample
        assert not comparison["regressed"]
        current["quick_reference"][0]["best_tx_per_sec"] = 4000.0
        assert compare_reports(baseline, current, tolerance=0.25)["regressed"]

    def test_scale_mismatch_without_quick_reference_is_not_gated(self):
        """Cross-scale tx/s carries no signal: report the delta, never gate."""
        baseline = _report_with("figure1_growth", 16000.0, num_transactions=5000)
        current = _report_with("figure1_growth", 8000.0, num_transactions=600)
        comparison = compare_reports(baseline, current, tolerance=0.25)
        row = comparison["workloads"][0]
        assert row["baseline_source"] == "scale_mismatch"
        assert row["delta"] == pytest.approx(-0.5)
        assert not comparison["regressed"]
        assert "n/a (scale)" in format_compare_table(comparison)

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports({}, {}, tolerance=1.5)

    def test_format_compare_table_mentions_verdict(self):
        comparison = compare_reports(
            _report_with("growth_stress", 100.0),
            _report_with("growth_stress", 70.0),
        )
        table = format_compare_table(comparison)
        assert "REGRESSION" in table and "FAIL" in table

    def test_cli_compare_gate_exit_codes(self, tmp_path, monkeypatch):
        """`repro bench --compare` exits 1 on regression, 0 otherwise."""
        import repro.bench.hotpath as hotpath_module

        baseline = tmp_path / "baseline.json"
        fake_report = {
            "end_to_end": [
                {
                    "workload": "growth_stress",
                    "before": {"tx_per_sec": 10.0, "elapsed_seconds": 1.0},
                    "after": {"tx_per_sec": 100.0, "elapsed_seconds": 0.1},
                    "speedup": 10.0,
                    "bit_identical": True,
                }
            ],
            "micro": {
                "ring_ops": [],
                "assignment_lookup": {
                    "cold_us_per_lookup": 1.0,
                    "cached_us_per_lookup": 1.0,
                    "cache_speedup": 1.0,
                    "targeted_eviction": {
                        "evicted_by_one_join": 0,
                        "cached_subjects": 0,
                    },
                },
            },
            "all_bit_identical": True,
        }
        monkeypatch.setattr(
            hotpath_module, "run_hotpath_benchmarks", lambda config: fake_report
        )
        out = tmp_path / "bench.json"

        baseline.write_text(
            json.dumps(_report_with("growth_stress", 50.0)), encoding="utf-8"
        )
        assert (
            bench_main(
                ["--quick", "--out", str(out), "--compare", str(baseline)]
            )
            == 0
        )

        baseline.write_text(
            json.dumps(_report_with("growth_stress", 1_000.0)), encoding="utf-8"
        )
        assert (
            bench_main(
                ["--quick", "--out", str(out), "--compare", str(baseline)]
            )
            == 1
        )
        # A generous tolerance lets the same numbers pass.
        assert (
            bench_main(
                [
                    "--quick",
                    "--out",
                    str(out),
                    "--compare",
                    str(baseline),
                    "--tolerance",
                    "0.95",
                ]
            )
            == 0
        )

    def test_cli_compare_missing_baseline_is_usage_error(self, tmp_path, monkeypatch):
        import repro.bench.hotpath as hotpath_module

        monkeypatch.setattr(
            hotpath_module,
            "run_hotpath_benchmarks",
            lambda config: {
                "end_to_end": [],
                "micro": {
                    "ring_ops": [],
                    "assignment_lookup": {
                        "cold_us_per_lookup": 1.0,
                        "cached_us_per_lookup": 1.0,
                        "cache_speedup": 1.0,
                        "targeted_eviction": {
                            "evicted_by_one_join": 0,
                            "cached_subjects": 0,
                        },
                    },
                },
                "all_bit_identical": True,
            },
        )
        exit_code = bench_main(
            [
                "--quick",
                "--out",
                str(tmp_path / "b.json"),
                "--compare",
                str(tmp_path / "missing.json"),
            ]
        )
        assert exit_code == 2
