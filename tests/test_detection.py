"""Tests for the detection-quality subsystem (labels, ranking, calibration).

The metric tests pin golden values computed by hand, then check the two
invariants the ranking metrics promise: AUC is invariant under strictly
monotone rescaling of the scores, and degrades to ~0.5 on label-shuffled
inputs.  The integration tests pin the ground-truth labelling contract on
the engine: adversary runs carry ``adversary_identities`` and a
``detection`` payload, neither perturbs the digest document, and trace
recovery agrees with the summary labels.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import AdversarySpec, SimulationParameters
from repro.detection import (
    LabelSet,
    auc,
    average_precision,
    brier_score,
    expected_calibration_error,
    operating_point_auc,
    precision_at_k,
    precision_recall_f1,
    reliability_diagram,
    roc_curve,
    threshold_sweep,
    time_to_detection,
)
from repro.metrics.summary import RunSummary, summary_digest
from repro.sim.engine import run_simulation
from repro.trace import record_simulation

#: A fast operating point with enough churn for adversaries to act.
SMALL = dict(
    num_initial_peers=20,
    num_transactions=600,
    arrival_rate=0.05,
    waiting_period=50.0,
    sample_interval=100.0,
    num_score_managers=3,
)


def small_params(**overrides) -> SimulationParameters:
    return SimulationParameters(**{**SMALL, **overrides})


def adversary_params(attack: str = "whitewash_waves", **overrides):
    return small_params(
        adversary=AdversarySpec(name=attack, count=3, interval=150.0),
        **overrides,
    )


# --------------------------------------------------------------------- #
# Ranking: golden values                                                  #
# --------------------------------------------------------------------- #
class TestRocGoldenValues:
    def test_perfect_separation(self):
        curve = roc_curve([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0])
        assert curve.auc == pytest.approx(1.0)
        assert curve.fpr == (0.0, 0.0, 0.0, 0.5, 1.0)
        assert curve.tpr == (0.0, 0.5, 1.0, 1.0, 1.0)
        assert curve.thresholds[0] == math.inf

    def test_inverted_separation(self):
        assert auc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == pytest.approx(0.0)

    def test_ties_get_half_credit(self):
        # Pairs: (0.8+, 0.8-) tie = 0.5; (0.8+, 0.3-) = 1; (0.5+, 0.8-) = 0;
        # (0.5+, 0.3-) = 1 -> Mann-Whitney AUC = 2.5/4.
        assert auc([0.8, 0.8, 0.5, 0.3], [1, 0, 1, 0]) == pytest.approx(0.625)

    def test_tie_group_forms_one_vertex(self):
        curve = roc_curve([0.7, 0.7, 0.7, 0.2], [1, 0, 1, 0])
        # One vertex for the 0.7 group, one for 0.2, plus the origin.
        assert len(curve.thresholds) == 3

    def test_one_class_inputs_are_nan(self):
        assert math.isnan(auc([0.4, 0.6], [1, 1]))
        assert math.isnan(auc([0.4, 0.6], [0, 0]))
        assert math.isnan(auc([], []))

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            auc([0.1, 0.2], [1])


class TestRankingGoldenValues:
    def test_average_precision_hand_computed(self):
        # Descending: 0.9(P) R=1/2 P=1/1; 0.8(N) dR=0; 0.7(P) R=1 P=2/3
        # AP = 0.5*1 + 0.5*(2/3) = 5/6.
        value = average_precision([0.9, 0.8, 0.7], [1, 0, 1])
        assert value == pytest.approx(5.0 / 6.0)

    def test_average_precision_no_positives_is_nan(self):
        assert math.isnan(average_precision([0.9, 0.1], [0, 0]))

    def test_precision_at_k(self):
        scores = [0.9, 0.8, 0.7, 0.6]
        labels = [1, 0, 1, 0]
        assert precision_at_k(scores, labels, 1) == pytest.approx(1.0)
        assert precision_at_k(scores, labels, 2) == pytest.approx(0.5)
        assert precision_at_k(scores, labels, 10) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            precision_at_k(scores, labels, 0)

    def test_precision_at_k_breaks_ties_by_input_order(self):
        assert precision_at_k([0.5, 0.5], [1, 0], 1) == pytest.approx(1.0)
        assert precision_at_k([0.5, 0.5], [0, 1], 1) == pytest.approx(0.0)

    def test_precision_recall_f1_hand_computed(self):
        point = precision_recall_f1([0.9, 0.8, 0.3, 0.1], [1, 0, 1, 0], 0.5)
        assert point.true_positives == 1
        assert point.false_positives == 1
        assert point.false_negatives == 1
        assert point.precision == pytest.approx(0.5)
        assert point.recall == pytest.approx(0.5)
        assert point.f1 == pytest.approx(0.5)

    def test_precision_is_nan_when_nothing_called(self):
        point = precision_recall_f1([0.1, 0.2], [1, 0], 0.9)
        assert math.isnan(point.precision)
        assert point.recall == pytest.approx(0.0)
        assert math.isnan(point.f1)

    def test_threshold_sweep_defaults_to_distinct_scores(self):
        points = threshold_sweep([0.9, 0.9, 0.5], [1, 0, 1])
        assert [point.threshold for point in points] == [0.9, 0.5]

    def test_operating_point_auc_hand_computed(self):
        scores = [0.9, 0.8, 0.2, 0.1]
        labels = [1, 1, 0, 0]
        assert operating_point_auc(scores, labels, 0.5) == pytest.approx(1.0)
        # Threshold below everything: everyone called, chance level.
        assert operating_point_auc(scores, labels, 0.05) == pytest.approx(0.5)
        # TPR 1/2, FPR 0 -> (0.5 + 1) / 2.
        assert operating_point_auc(scores, labels, 0.85) == pytest.approx(0.75)
        assert math.isnan(operating_point_auc(scores, [0, 0, 0, 0], 0.5))

    def test_operating_point_auc_is_threshold_sensitive(self):
        # The same ranking scores 1.0 at a usable cut and 0.5 at a useless
        # one: the reason detection_eval reports this next to the plain AUC.
        scores = [1.0, 0.89, 0.9, 0.91]
        labels = [0, 1, 1, 1]
        suspicion = [-s for s in scores]
        assert auc(suspicion, labels) == pytest.approx(1.0)
        assert operating_point_auc(suspicion, labels, -0.95) == pytest.approx(1.0)
        assert operating_point_auc(suspicion, labels, -0.2) == pytest.approx(0.5)

    def test_time_to_detection(self):
        history = ((100.0, 0.5), (200.0, 0.15), (300.0, 0.4))
        assert time_to_detection(history, 0.2) == pytest.approx(200.0)
        assert time_to_detection(history, 0.1) is None
        assert time_to_detection((), 0.2) is None


# --------------------------------------------------------------------- #
# Ranking: properties                                                     #
# --------------------------------------------------------------------- #
class TestRankingProperties:
    def test_auc_invariant_under_strictly_monotone_rescaling(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            scores = rng.normal(size=60)
            labels = rng.random(60) < 0.4
            if labels.all() or not labels.any():
                continue
            baseline = auc(scores, labels)
            for transform in (
                lambda s: 2.0 * s + 3.0,
                np.exp,
                lambda s: np.arctan(s / 4.0),
            ):
                assert auc(transform(scores), labels) == pytest.approx(baseline)

    def test_auc_degrades_to_chance_on_shuffled_labels(self):
        rng = np.random.default_rng(11)
        scores = rng.random(600)
        labels = np.zeros(600, dtype=bool)
        labels[:300] = True
        values = []
        for _ in range(10):
            rng.shuffle(labels)
            values.append(auc(scores, labels))
        # Null-hypothesis AUC has std ~0.024 at this size; the mean of ten
        # draws sits well within this band.
        assert abs(float(np.mean(values)) - 0.5) < 0.05

    def test_auc_is_input_order_independent(self):
        rng = np.random.default_rng(13)
        scores = np.round(rng.random(50), 1)  # coarse grid -> many ties
        labels = rng.random(50) < 0.5
        order = rng.permutation(50)
        assert auc(scores[order], labels[order]) == pytest.approx(
            auc(scores, labels)
        )


# --------------------------------------------------------------------- #
# Calibration                                                             #
# --------------------------------------------------------------------- #
class TestCalibration:
    def test_brier_golden_values(self):
        assert brier_score([1.0, 0.0], [1, 0]) == pytest.approx(0.0)
        assert brier_score([0.5, 0.5], [1, 0]) == pytest.approx(0.25)
        # ((0.8-1)^2 + (0.4-0)^2) / 2 = (0.04 + 0.16) / 2.
        assert brier_score([0.8, 0.4], [1, 0]) == pytest.approx(0.1)
        assert math.isnan(brier_score([], []))

    def test_probabilities_outside_unit_interval_raise(self):
        with pytest.raises(ValueError):
            brier_score([1.2], [1])
        with pytest.raises(ValueError):
            brier_score([-0.1], [0])

    def test_ece_hand_computed(self):
        # Bin 0: conf 0.05 vs freq 0 (gap 0.05); bin 1: conf 0.15 vs freq 1
        # (gap 0.85); bin 9: conf 0.95 vs freq 1 (gap 0.05); equal weights.
        value = expected_calibration_error([0.05, 0.15, 0.95], [0, 1, 1])
        assert value == pytest.approx((0.05 + 0.85 + 0.05) / 3.0)

    def test_perfectly_calibrated_bins_have_zero_ece(self):
        probs = [0.25] * 4 + [0.75] * 4
        outcomes = [1, 0, 0, 0, 1, 1, 1, 0]
        assert expected_calibration_error(probs, outcomes) == pytest.approx(0.0)

    def test_reliability_bins_are_fixed_width_and_top_inclusive(self):
        diagram = reliability_diagram([0.0, 0.05, 1.0], [0, 0, 1], num_bins=10)
        assert len(diagram.bins) == 10
        assert diagram.bins[0].count == 2  # 0.0 and 0.05
        assert diagram.bins[9].count == 1  # 1.0 lands in the last bin
        assert diagram.bins[5].count == 0
        assert math.isnan(diagram.bins[5].mean_confidence)
        assert diagram.samples == 3
        assert diagram.brier == pytest.approx(
            brier_score([0.0, 0.05, 1.0], [0, 0, 1])
        )

    def test_diagram_is_json_serialisable(self):
        import json

        diagram = reliability_diagram([0.2, 0.8], [0, 1], num_bins=2)
        document = diagram.to_dict()
        assert json.loads(json.dumps(document)) == document


# --------------------------------------------------------------------- #
# Labels: engine integration                                              #
# --------------------------------------------------------------------- #
class TestEngineLabels:
    def test_adversary_run_carries_identities_and_payload(self):
        summary = run_simulation(adversary_params())
        assert summary.adversary_identities
        assert summary.detection is not None
        assert summary.detection["scheme"] == summary.params.reputation_scheme
        assert summary.detection["snapshots"]

    def test_whitewash_rebirths_are_labelled(self):
        summary = run_simulation(adversary_params("whitewash_waves"))
        founders = summary.params.num_initial_peers
        # Rebirth identities are allocated after the founding population.
        assert any(
            peer_id >= founders for peer_id in summary.adversary_identities
        )

    def test_clean_run_carries_neither(self):
        summary = run_simulation(small_params())
        assert summary.adversary_identities is None
        assert summary.detection is None
        assert "detection" not in summary.to_dict()
        assert "adversary_identities" not in summary.to_dict()

    def test_labels_never_perturb_the_digest_document(self):
        """Mirror of the sharding regression: the digest is the currency of
        golden tests and trace replay, so derived observability data must be
        stripped before hashing."""
        summary = run_simulation(adversary_params())
        document = summary.to_dict()
        assert "adversary_identities" in document
        assert "detection" in document
        stripped = RunSummary.from_dict(document)
        stripped.adversary_identities = None
        stripped.detection = None
        assert summary_digest(stripped) == summary_digest(summary)

    def test_round_trip_preserves_labels(self):
        summary = run_simulation(adversary_params())
        restored = RunSummary.from_dict(summary.to_dict())
        assert restored.adversary_identities == summary.adversary_identities
        assert restored.detection == summary.detection

    def test_label_set_from_summary(self):
        summary = run_simulation(adversary_params())
        labels = LabelSet.from_summary(summary)
        assert len(labels) > 0
        assert labels.threshold == pytest.approx(
            summary.params.effective_min_intro_reputation()
        )
        assert labels.source == "summary"
        assert set(labels.adversary_ids()) == set(summary.adversary_identities)
        cells = labels.cells()
        peer_id, final_score, history, is_adversary = cells[0]
        assert isinstance(peer_id, int)
        assert isinstance(final_score, float)
        assert isinstance(is_adversary, bool)
        scores, flags = labels.scored()
        assert scores.shape == flags.shape
        assert flags.any() and not flags.all()
        suspicion, _ = labels.suspicion()
        assert np.allclose(suspicion, -scores)

    def test_from_summary_requires_detection_payload(self):
        summary = run_simulation(small_params())
        with pytest.raises(ValueError):
            LabelSet.from_summary(summary)

    def test_histories_track_membership_snapshots(self):
        summary = run_simulation(adversary_params())
        labels = LabelSet.from_summary(summary)
        with_history = [label for label in labels.labels if label.history]
        assert with_history
        for label in with_history:
            times = [time for time, _ in label.history]
            assert times == sorted(times)

    def test_trace_recovery_agrees_with_summary_labels(self):
        params = adversary_params()
        summary, log = record_simulation(params, seed=params.seed)
        from_trace = LabelSet.from_trace(log)
        from_summary = LabelSet.from_summary(summary)
        assert from_trace.source == "trace"
        assert from_trace.adversary_ids() == from_summary.adversary_ids()
        assert from_trace.threshold == pytest.approx(from_summary.threshold)
        # Traces carry no scores.
        assert all(label.final_score is None for label in from_trace.labels)

    def test_label_set_to_dict_is_json_serialisable(self):
        import json

        summary = run_simulation(adversary_params())
        document = LabelSet.from_summary(summary).to_dict()
        assert json.loads(json.dumps(document)) == document
