"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    DuplicateIntroductionError,
    EmptyPopulationError,
    InsufficientReputationError,
    IntroductionRefusedError,
    ProtocolError,
    ReproError,
    SimulationError,
    UnknownPeerError,
    WaitingPeriodError,
)


ALL_ERRORS = [
    ConfigurationError,
    UnknownPeerError,
    DuplicateIntroductionError,
    IntroductionRefusedError,
    InsufficientReputationError,
    WaitingPeriodError,
    ProtocolError,
    SimulationError,
    EmptyPopulationError,
]


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_every_error_derives_from_repro_error(error_cls):
    assert issubclass(error_cls, ReproError)


def test_empty_population_is_a_simulation_error():
    assert issubclass(EmptyPopulationError, SimulationError)


def test_unknown_peer_error_carries_peer_id():
    error = UnknownPeerError(17)
    assert error.peer_id == 17
    assert "17" in str(error)


def test_duplicate_introduction_error_carries_peer_id():
    error = DuplicateIntroductionError(4)
    assert error.peer_id == 4
    assert "4" in str(error)


def test_introduction_refused_error_fields():
    error = IntroductionRefusedError(1, 2, "low reputation")
    assert error.introducer_id == 1
    assert error.applicant_id == 2
    assert "low reputation" in str(error)


def test_insufficient_reputation_error_fields():
    error = InsufficientReputationError(3, 0.1, 0.2)
    assert error.introducer_id == 3
    assert error.reputation == pytest.approx(0.1)
    assert error.required == pytest.approx(0.2)


def test_waiting_period_error_fields():
    error = WaitingPeriodError(5, ready_at=100.0, now=40.0)
    assert error.peer_id == 5
    assert error.ready_at == pytest.approx(100.0)
    assert error.now == pytest.approx(40.0)


def test_errors_can_be_caught_as_repro_error():
    with pytest.raises(ReproError):
        raise WaitingPeriodError(1, 10.0, 5.0)
