"""Tests for the typed public facade (:mod:`repro.api`).

Covers the tentpole contracts of the service layer:

* ``RunRequest`` — registry validation at construction, JSON round-trips,
  fingerprint stability under field reordering;
* golden digests — the service path is bit-identical to each legacy path
  (direct ``run_simulation``, ``ParameterSweep.run``, the experiment
  runner) for equivalent requests, across executor backends and job counts;
* ``RunHandle`` — progress determinism across backends, cooperative
  cancellation;
* the unified catalogue — spans all four registries and matches them.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import available_adversaries
from repro.api import (
    CATALOGUE_SECTIONS,
    BatchResult,
    ProgressEvent,
    RunCancelledError,
    RunRequest,
    SimulationService,
    UnknownNameError,
    catalogue,
    summary_digest,
)
from repro.config import (
    ADVERSARY_STRATEGIES,
    REPUTATION_SCHEMES,
    AdversarySpec,
    SimulationParameters,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import EXPERIMENTS, make_experiment
from repro.parallel.executor import create_executor
from repro.sim.engine import run_simulation
from repro.workloads.registry import available_scenarios, get_scenario
from repro.workloads.sweep import ParameterSweep, SweepPoint

#: A minuscule configuration so each simulation takes ~20 ms.
_TINY_OVERRIDES = {
    "num_initial_peers": 40,
    "num_transactions": 600,
    "arrival_rate": 0.02,
    "waiting_period": 100.0,
    "sample_interval": 200.0,
    "audit_transactions": 3,
}

TINY = SimulationParameters(seed=11, **_TINY_OVERRIDES)


def tiny_request(**changes) -> RunRequest:
    base = dict(overrides=_TINY_OVERRIDES, seed=11, label="tiny")
    base.update(changes)
    return RunRequest(**base)


# --------------------------------------------------------------------- #
# RunRequest validation and serialisation                                 #
# --------------------------------------------------------------------- #
class TestRunRequestValidation:
    def test_unknown_scenario_suggests_closest(self):
        with pytest.raises(UnknownNameError, match="did you mean 'tiny_test'"):
            RunRequest(scenario="tiny_tset")

    def test_unknown_scheme_suggests_closest(self):
        with pytest.raises(UnknownNameError, match="did you mean 'rocq'"):
            RunRequest(scheme="roqc")

    def test_scheme_aliases_canonicalise(self):
        assert RunRequest(scheme="tft").scheme == "tit_for_tat"

    def test_unknown_adversary_suggests_closest(self):
        with pytest.raises(UnknownNameError, match="did you mean 'sybil_swarm'"):
            RunRequest(adversary="sybil_swam")

    def test_adversary_accepts_name_and_mapping(self):
        by_name = RunRequest(adversary="slander")
        assert isinstance(by_name.adversary, AdversarySpec)
        by_mapping = RunRequest(adversary={"name": "slander", "count": 2})
        assert by_mapping.adversary.count == 2

    def test_unknown_override_field_suggests_closest(self):
        with pytest.raises(UnknownNameError, match="arrival_rate"):
            RunRequest(overrides={"arival_rate": 0.5})

    def test_reserved_overrides_are_rejected_with_guidance(self):
        for key, field in [
            ("seed", "seed"),
            ("reputation_scheme", "scheme"),
            ("adversary", "adversary"),
        ]:
            with pytest.raises(ConfigurationError, match=f"RunRequest.{field}"):
                RunRequest(overrides={key: 1})

    def test_invalid_override_value_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            RunRequest(overrides={"arrival_rate": -1.0})

    def test_scale_and_repeats_bounds(self):
        with pytest.raises(ConfigurationError, match="scale"):
            RunRequest(scale=0.0)
        with pytest.raises(ConfigurationError, match="repeats"):
            RunRequest(repeats=0)

    def test_resolution_order_matches_legacy_composition(self):
        request = RunRequest(
            seed=7, scale=0.01, overrides={"arrival_rate": 0.05}, scheme="beta"
        )
        manual = (
            SimulationParameters(seed=7)
            .with_overrides(arrival_rate=0.05, reputation_scheme="beta")
            .scaled(0.01)
        )
        assert request.resolve() == manual


class TestRunRequestSerialisation:
    def test_json_round_trip(self):
        request = RunRequest(
            scenario="tiny_test",
            scheme="beta",
            adversary={"name": "slander", "count": 2},
            overrides={"arrival_rate": 0.05},
            scale=0.5,
            seed=3,
            repeats=2,
            label="rt",
        )
        restored = RunRequest.from_json(request.to_json())
        assert restored == request
        assert restored.fingerprint() == request.fingerprint()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(UnknownNameError, match="request field"):
            RunRequest.from_dict({"scenari": "tiny_test"})

    def test_fingerprint_stable_under_field_reordering(self):
        document = RunRequest(
            scenario="tiny_test", overrides={"arrival_rate": 0.05}, seed=3
        ).to_dict()
        reordered = json.loads(
            json.dumps({key: document[key] for key in reversed(list(document))})
        )
        assert RunRequest.from_dict(reordered).fingerprint() == RunRequest.from_dict(
            document
        ).fingerprint()

    def test_fingerprint_insensitive_to_spelling_but_not_content(self):
        via_alias = RunRequest(scheme="tft", seed=5)
        via_canonical = RunRequest(scheme="tit_for_tat", seed=5)
        assert via_alias.fingerprint() == via_canonical.fingerprint()
        assert (
            RunRequest(scheme="beta", seed=5).fingerprint()
            != via_canonical.fingerprint()
        )
        assert (
            RunRequest(scheme="tit_for_tat", seed=6).fingerprint()
            != via_canonical.fingerprint()
        )

    def test_repeat_zero_uses_master_seed(self):
        request = tiny_request(repeats=3)
        seeds = request.seeds()
        assert seeds[0] == request.seed
        assert len(set(seeds)) == 3


# --------------------------------------------------------------------- #
# Golden digests: service vs legacy paths                                 #
# --------------------------------------------------------------------- #
class TestGoldenDigests:
    @pytest.mark.parametrize(
        "backend,jobs", [("serial", 1), ("thread", 2), ("process", 2)]
    )
    def test_service_matches_direct_run_simulation(self, backend, jobs):
        # The quickstart example's legacy path: run_simulation on resolved
        # parameters, with the master seed.
        request = tiny_request()
        legacy = run_simulation(TINY, seed=11)
        with SimulationService(jobs=jobs, backend=backend) as service:
            result = service.run(request)
        assert summary_digest(result.summary) == summary_digest(legacy)

    def test_service_matches_scenario_path(self):
        request = RunRequest(scenario="tiny_test", seed=5)
        legacy = run_simulation(get_scenario("tiny_test", seed=5), seed=5)
        with SimulationService() as service:
            result = service.run(request)
        assert summary_digest(result.summary) == summary_digest(legacy)

    def test_run_batch_matches_individual_runs(self):
        requests = [
            tiny_request(label=f"b{i}", overrides={**_TINY_OVERRIDES,
                                                   "arrival_rate": rate})
            for i, rate in enumerate((0.01, 0.03))
        ]
        with SimulationService(jobs=2, backend="thread") as service:
            batch = service.run_batch(requests)
        assert isinstance(batch, BatchResult)
        assert len(batch) == 2
        with SimulationService() as service:
            individual = [service.run(request) for request in requests]
        assert [r.digest() for r in batch] == [r.digest() for r in individual]

    def test_service_sweep_matches_legacy_sweep_run(self):
        # The introducer-economics example's legacy path: sweep.run() inline.
        def make_sweep():
            return ParameterSweep(
                name="api-equivalence",
                base=TINY,
                points=[
                    SweepPoint(label=f"r{rate:g}", x=rate,
                               overrides={"arrival_rate": rate})
                    for rate in (0.01, 0.03)
                ],
                repeats=1,
            )

        legacy = make_sweep().run()
        with SimulationService(jobs=2, backend="thread") as service:
            via_service = service.sweep(make_sweep())
        for label in ("r0.01", "r0.03"):
            assert [summary_digest(s) for s in via_service.summaries_at(label)] == [
                summary_digest(s) for s in legacy.summaries_at(label)
            ]

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("process", 2)])
    def test_run_experiments_matches_legacy_experiment_path(self, backend, jobs):
        # The pre-service experiment path: instantiate the experiment with
        # its own executor, exactly as run_all used to.
        executor = create_executor(None, 1)
        try:
            legacy = make_experiment(
                "figure1", scale=1.0, repeats=1, seed=11,
                base_params=TINY, executor=executor,
            ).run_and_validate()
        finally:
            executor.close()
        with SimulationService(jobs=jobs, backend=backend) as service:
            via_service = service.run_experiments(
                scale=1.0, repeats=1, seed=11, only=["figure1"], base_params=TINY
            )
        assert json.dumps(
            via_service["figure1"].to_dict(), sort_keys=True
        ) == json.dumps(legacy.to_dict(), sort_keys=True)

    def test_run_experiments_unknown_id_still_raises_keyerror(self):
        with SimulationService() as service:
            with pytest.raises(KeyError, match="unknown experiment"):
                service.run_experiments(only=["figure99"], base_params=TINY)


# --------------------------------------------------------------------- #
# Service cache behaviour                                                 #
# --------------------------------------------------------------------- #
class TestServiceCache:
    def test_second_run_is_served_from_cache(self, tmp_path):
        request = tiny_request(repeats=2)
        with SimulationService(cache=tmp_path) as service:
            first = service.run(request)
            assert first.cache_hits == 0
        with SimulationService(cache=tmp_path) as service:
            second = service.run(request)
            assert second.cache_hits == 2
        assert first.digest() == second.digest()

    def test_run_batch_attributes_hits_per_request(self, tmp_path):
        requests = [
            tiny_request(label=f"c{i}", repeats=2,
                         overrides={**_TINY_OVERRIDES, "arrival_rate": rate})
            for i, rate in enumerate((0.01, 0.03))
        ]
        with SimulationService(cache=tmp_path) as service:
            service.run(requests[0])  # warm only the first request's repeats
        with SimulationService(cache=tmp_path) as service:
            batch = service.run_batch(requests)
        assert [result.cache_hits for result in batch] == [2, 0]

    def test_request_fingerprint_is_cache_stable(self):
        # Same content spelled differently → same fingerprint → same cache
        # identity for request-level memoisation.
        a = RunRequest(overrides={"arrival_rate": 0.05, "fraction_naive": 0.1})
        b = RunRequest(overrides={"fraction_naive": 0.1, "arrival_rate": 0.05})
        assert a.fingerprint() == b.fingerprint()


# --------------------------------------------------------------------- #
# RunHandle: progress + cancellation                                      #
# --------------------------------------------------------------------- #
class TestRunHandle:
    REQUEST_KW = dict(repeats=3)

    @pytest.mark.parametrize(
        "backend,jobs", [("serial", 1), ("thread", 2), ("process", 2)]
    )
    def test_progress_events_and_result_are_backend_invariant(self, backend, jobs):
        request = tiny_request(**self.REQUEST_KW)
        with SimulationService(jobs=jobs, backend=backend) as service:
            handle = service.submit(request)
            result = handle.result(timeout=120)
        events = handle.progress()
        assert handle.done() and not handle.cancelled
        # The identity set is deterministic; completion order may not be.
        assert sorted((e.label, e.repeat, e.seed) for e in events) == [
            ("tiny", repeat, seed)
            for repeat, seed in enumerate(request.seeds())
        ]
        assert sorted(e.completed for e in events) == [1, 2, 3]
        assert all(e.total == 3 for e in events)
        # Bit-identical to the synchronous path:
        with SimulationService() as service:
            assert result.digest() == service.run(request).digest()

    def test_cancel_before_start_yields_no_result(self):
        request = tiny_request(repeats=4)
        with SimulationService() as service:
            handle = service.submit(request)
            handle.cancel()
            assert handle.wait(timeout=120)
        if handle.cancelled:
            with pytest.raises(RunCancelledError):
                handle.result()
            assert len(handle.progress()) < 4
        else:
            # The run beat the cancel flag; it must then be complete & valid.
            assert len(handle.progress()) == 4

    def test_cancel_mid_run_stops_remaining_repeats(self):
        request = tiny_request(repeats=5)
        with SimulationService() as service:  # serial: deterministic ordering
            events: list[ProgressEvent] = []

            def cancel_after_first(event: ProgressEvent) -> None:
                events.append(event)
                handle.cancel()

            handle = service.submit(request, on_event=cancel_after_first)
            assert handle.wait(timeout=120)
        assert handle.cancelled
        assert handle.cancel_requested
        # Serial backend checks the flag after every repeat: exactly one ran.
        assert len(events) == 1
        with pytest.raises(RunCancelledError):
            handle.result()

    def test_result_times_out_while_running(self):
        request = tiny_request(repeats=2)
        with SimulationService() as service:
            handle = service.submit(request)
            try:
                with pytest.raises(TimeoutError):
                    handle.result(timeout=0.0)
            finally:
                handle.wait(timeout=120)


# --------------------------------------------------------------------- #
# Catalogue                                                               #
# --------------------------------------------------------------------- #
class TestCatalogue:
    def test_sections_match_constant(self):
        assert tuple(catalogue()) == CATALOGUE_SECTIONS

    def test_spans_all_four_registries(self):
        sections = catalogue()
        assert set(sections["schemes"]) == set(REPUTATION_SCHEMES)
        assert set(sections["adversaries"]) == set(ADVERSARY_STRATEGIES)
        assert set(sections["scenarios"]) == set(available_scenarios())
        assert set(sections["experiments"]) == set(EXPERIMENTS)
        assert available_adversaries() == sections["adversaries"]

    def test_every_entry_has_a_description(self):
        for section, entries in catalogue().items():
            for name, description in entries.items():
                assert description, f"{section}/{name} lacks a description"

    def test_service_catalogue_matches_module_function(self):
        with SimulationService() as service:
            assert service.catalogue() == catalogue()
