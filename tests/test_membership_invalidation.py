"""Tests for incremental ring rewiring and targeted assignment invalidation.

The refactor's contract is behavioural transparency: incremental
successor/predecessor updates must leave the ring exactly as a full rewire
would, and targeted cache eviction must leave the reputation store's
assignment cache indistinguishable from a cold recompute — after *any*
sequence of joins and leaves.  The randomized property tests here drive both
through hundreds of membership changes and compare against the reference
implementations (``ChordRing.rewire_all`` and
``ScoreManagerAssignment.managers_for``) at every step.
"""

from __future__ import annotations

import random

import pytest

from repro.overlay.assignment import ScoreManagerAssignment
from repro.overlay.membership import MembershipChange, MembershipKind
from repro.overlay.ring import ChordRing
from repro.reputation.adapters import LogReputationBackend
from repro.reputation.backend import notify_membership_change
from repro.reputation.beta import BetaReputation
from repro.rocq.store import ReputationStore


def assert_pointers_match_reference(ring: ChordRing) -> None:
    """Every node's successor/predecessor equals the full-rewire result."""
    keys = sorted(ring._nodes_by_key)
    total = len(keys)
    for index, key in enumerate(keys):
        node = ring._nodes_by_key[key]
        assert node.successor == keys[(index + 1) % total]
        assert node.predecessor == keys[(index - 1) % total]


class TestIncrementalRewiring:
    def test_join_reports_the_changed_arc(self):
        ring = ChordRing()
        ring.join(1)
        ring.join(2)
        change = ring.last_change
        assert change is not None
        assert change.kind is MembershipKind.JOIN
        assert change.peer_id == 2
        assert change.node_key == ring.node_for_peer(2).key
        assert change.predecessor_key == ring.node_for_peer(1).key
        assert change.successor_key == ring.node_for_peer(1).key
        assert change.ring_size == 2

    def test_leave_reports_the_released_arc(self):
        ring = ChordRing()
        for peer_id in range(5):
            ring.join(peer_id)
        departing_key = ring.node_for_peer(3).key
        ring.leave(3)
        change = ring.last_change
        assert change is not None
        assert change.kind is MembershipKind.LEAVE
        assert change.peer_id == 3
        assert change.node_key == departing_key
        assert change.ring_size == 4
        # The arc endpoints are live neighbours of the departed position.
        assert change.successor_key in ring._nodes_by_key
        assert change.predecessor_key in ring._nodes_by_key

    def test_idempotent_join_reports_no_change(self):
        ring = ChordRing()
        ring.join(7)
        assert ring.last_change is not None
        ring.join(7)
        assert ring.last_change is None

    def test_last_node_leaving_empties_the_ring(self):
        ring = ChordRing()
        node = ring.join(1)
        key = node.key
        ring.leave(1)
        change = ring.last_change
        assert len(ring) == 0
        assert change is not None and change.ring_size == 0
        assert change.predecessor_key == key and change.successor_key == key

    def test_single_node_arc_covers_the_whole_ring(self):
        ring = ChordRing()
        ring.join(1)
        change = ring.last_change
        assert change is not None
        assert change.arc_contains(0)
        assert change.arc_contains(change.node_key)

    def test_pointers_match_full_rewire_after_random_churn(self):
        rng = random.Random(0xC0FFEE)
        ring = ChordRing()
        live: list[int] = []
        next_id = 0
        for _ in range(400):
            if not live or rng.random() < 0.6:
                ring.join(next_id)
                live.append(next_id)
                next_id += 1
            else:
                victim = live.pop(rng.randrange(len(live)))
                ring.leave(victim)
            assert_pointers_match_reference(ring)

    def test_rewire_all_is_a_fixed_point_of_incremental_wiring(self):
        ring = ChordRing()
        for peer_id in range(50):
            ring.join(peer_id)
        pointers = {
            key: (node.successor, node.predecessor)
            for key, node in ring._nodes_by_key.items()
        }
        ring.rewire_all()
        after = {
            key: (node.successor, node.predecessor)
            for key, node in ring._nodes_by_key.items()
        }
        assert pointers == after


class TestTargetedInvalidation:
    def _build(self, peers: int = 24, managers: int = 6):
        ring = ChordRing()
        for peer_id in range(peers):
            ring.join(peer_id)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=managers)
        store = ReputationStore(assignment=assignment)
        return ring, assignment, store

    def test_join_evicts_only_affected_subjects(self):
        ring, assignment, store = self._build()
        for subject in range(24):
            store.managers_for(subject)
        assert len(store._assignment_cache) == 24
        ring.join(1000)
        store.membership_changed(ring.last_change)
        # Some entries survive (targeted, not blanket) ...
        assert store._assignment_cache, "a single join must not clear everything"
        assert store.full_invalidations == 0
        # ... and every entry, cached or recomputed, matches a cold resolve.
        for subject in range(24):
            assert store.managers_for(subject) == assignment.managers_for(subject)

    def test_none_change_degrades_to_full_invalidation(self):
        _, _, store = self._build()
        store.managers_for(3)
        store.membership_changed(None)
        assert store._assignment_cache == {}
        assert store.full_invalidations == 1

    def test_notify_helper_falls_back_without_the_hook(self):
        class OldSchoolBackend:
            def __init__(self):
                self.invalidations = 0

            def invalidate_assignments(self):
                self.invalidations += 1

        backend = OldSchoolBackend()
        change = MembershipChange(
            kind=MembershipKind.JOIN,
            peer_id=1,
            node_key=10,
            predecessor_key=5,
            successor_key=20,
            ring_size=3,
        )
        notify_membership_change(backend, change)
        assert backend.invalidations == 1

    def test_notify_helper_prefers_the_structured_hook(self):
        _, _, store = self._build(peers=8, managers=3)
        store.managers_for(2)
        notify_membership_change(store, None)
        assert store.full_invalidations == 1

    def test_log_backend_accepts_membership_changes(self):
        backend = LogReputationBackend(BetaReputation())
        notify_membership_change(backend, None)  # must simply not raise

    def test_eviction_unindexes_all_dependency_keys(self):
        ring, _, store = self._build(peers=12, managers=3)
        store.managers_for(4)
        keys = store._arc_dependencies[4]
        assert keys
        store._evict_subject(4)
        assert 4 not in store._arc_dependencies
        for key in keys:
            assert 4 not in store._arc_dependents.get(key, set())

    @pytest.mark.parametrize("managers", [1, 3, 6])
    def test_targeted_equals_cold_recompute_over_random_churn(self, managers):
        """The tentpole property: targeted invalidation == full recompute.

        Drives a store through hundreds of random joins/leaves (notifying it
        only with the structured per-change arcs, never blanket-clearing) and
        asserts after every change that *every* cached assignment equals what
        a cold ``ScoreManagerAssignment.managers_for`` resolves — including
        subjects that are not ring members and subjects whose own node moved.
        """
        rng = random.Random(1000 + managers)
        ring = ChordRing()
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=managers)
        store = ReputationStore(assignment=assignment)
        live: list[int] = []
        next_id = 0
        for step in range(250):
            if not live or rng.random() < 0.55:
                ring.join(next_id)
                live.append(next_id)
                next_id += 1
            else:
                victim = live.pop(rng.randrange(len(live)))
                ring.leave(victim)
            store.membership_changed(ring.last_change)
            # Touch a mix of members and strangers to grow the cache.
            for _ in range(4):
                store.managers_for(rng.randrange(next_id + 5))
            # Every cached entry must match a cold recompute.
            for subject, cached in store._assignment_cache.items():
                assert cached == assignment.managers_for(subject), (
                    f"stale cache for subject {subject} at step {step}"
                )
        assert store.targeted_evictions > 0
        assert store.full_invalidations == 0


class TestChurnManagerUsesTheCache:
    def test_snapshot_and_migration_go_through_store_cache(self):
        from repro.overlay.churn import ChurnManager

        ring = ChordRing()
        for peer_id in range(16):
            ring.join(peer_id)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        store = ReputationStore(assignment=assignment)
        store.set_reputation(5, 0.9, 0.0)
        churn = ChurnManager(ring=ring, assignment=assignment, store=store)
        for joiner in range(100, 130):
            churn.join(joiner, time=1.0)
        for victim in (3, 7, 11):
            churn.leave(victim, time=2.0)
        # No blanket invalidation was ever needed, and the cache stayed
        # coherent through thirty joins and three leaves.
        assert store.full_invalidations == 0
        for subject in ring.peers():
            assert store.managers_for(subject) == assignment.managers_for(subject)
        assert store.global_reputation(5) == pytest.approx(0.9, abs=0.35)

    def test_idempotent_rejoin_does_not_blanket_invalidate(self):
        from repro.overlay.churn import ChurnManager

        ring = ChordRing()
        for peer_id in range(8):
            ring.join(peer_id)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        store = ReputationStore(assignment=assignment)
        churn = ChurnManager(ring=ring, assignment=assignment, store=store)
        for subject in range(8):
            store.managers_for(subject)
        churn.join(3)  # already a member: nothing moved
        assert store.full_invalidations == 0
        assert len(store._assignment_cache) == 8

    def test_managed_by_routes_through_store_cache(self):
        ring = ChordRing()
        for peer_id in range(10):
            ring.join(peer_id)
        assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
        store = ReputationStore(assignment=assignment)
        peers = list(range(10))
        for manager in peers:
            via_store = store.managed_by(manager, peers)
            via_assignment = assignment.managed_by(manager, peers)
            assert via_store == via_assignment
        # The store path populated (and reused) the cache.
        assert len(store._assignment_cache) == 10
