"""Tests for the baseline reputation systems (related-work comparators)."""

from __future__ import annotations

import pytest

from repro.reputation.base import InteractionLog
from repro.reputation.beta import BetaReputation
from repro.reputation.comparison import (
    compare_newcomer_treatment,
    default_systems,
)
from repro.reputation.complaints import ComplaintsBasedTrust
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.positive_only import PositiveOnlyReputation
from repro.reputation.tit_for_tat import TitForTatCredit


class TestInteractionLog:
    def test_record_and_counters(self):
        log = InteractionLog()
        log.record(1, 2, satisfied=True)
        log.record(1, 2, satisfied=False)
        log.record(3, 2, satisfied=True)
        assert log.positives_about(2) == 2
        assert log.negatives_about(2) == 1
        assert log.complaints_by(1) == 1
        assert log.pair_counts(1, 2) == (1, 1)
        assert log.peers == {1, 2, 3}


class TestComplaintsBasedTrust:
    def test_newcomer_is_fully_trusted(self):
        system = ComplaintsBasedTrust()
        assert system.newcomer_score() == pytest.approx(1.0)
        assert system.is_trustworthy(99)

    def test_complaints_erode_trust(self):
        system = ComplaintsBasedTrust()
        for _ in range(10):
            system.record_interaction(1, 2, satisfied=False)
        assert system.score(2) < 0.5
        assert not system.is_trustworthy(2)

    def test_chronic_complainers_also_lose_trust(self):
        system = ComplaintsBasedTrust()
        for victim in range(2, 12):
            system.record_interaction(1, victim, satisfied=False)
        assert system.score(1) < 0.5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ComplaintsBasedTrust(distrust_threshold=0.0)


class TestPositiveOnly:
    def test_newcomer_starts_at_zero(self):
        assert PositiveOnlyReputation().newcomer_score() == pytest.approx(0.0)

    def test_positive_reports_raise_score_saturating(self):
        system = PositiveOnlyReputation(half_life=5.0)
        for _ in range(5):
            system.record_interaction(1, 2, satisfied=True)
        assert system.score(2) == pytest.approx(0.5)
        for _ in range(100):
            system.record_interaction(1, 2, satisfied=True)
        assert 0.9 < system.score(2) < 1.0

    def test_negative_reports_ignored(self):
        system = PositiveOnlyReputation()
        for _ in range(10):
            system.record_interaction(1, 2, satisfied=False)
        assert system.score(2) == pytest.approx(0.0)


class TestBetaReputation:
    def test_newcomer_in_the_middle(self):
        assert BetaReputation().newcomer_score() == pytest.approx(0.5)

    def test_scores_track_behaviour(self):
        system = BetaReputation()
        for _ in range(20):
            system.record_interaction(1, 2, satisfied=True)
            system.record_interaction(1, 3, satisfied=False)
        assert system.score(2) > 0.9
        assert system.score(3) < 0.1

    def test_uncertainty_decreases_with_evidence(self):
        system = BetaReputation()
        before = system.uncertainty(2)
        for _ in range(20):
            system.record_interaction(1, 2, satisfied=True)
        assert system.uncertainty(2) < before

    def test_forgetting_validation(self):
        with pytest.raises(ValueError):
            BetaReputation(forgetting=0.0)


class TestEigenTrust:
    def _system_with_history(self) -> EigenTrust:
        system = EigenTrust(pre_trusted={0})
        # Peers 0-2 serve each other well; peer 3 serves badly.
        for _ in range(10):
            system.record_interaction(0, 1, satisfied=True)
            system.record_interaction(1, 2, satisfied=True)
            system.record_interaction(2, 0, satisfied=True)
            system.record_interaction(0, 3, satisfied=False)
            system.record_interaction(1, 3, satisfied=False)
        return system

    def test_global_trust_sums_to_one(self):
        trust = self._system_with_history().global_trust()
        assert sum(trust.values()) == pytest.approx(1.0, abs=1e-6)

    def test_good_peers_outrank_bad_ones(self):
        system = self._system_with_history()
        assert system.score(1) > system.score(3)
        assert system.score(2) > system.score(3)

    def test_newcomer_scores_zero_unless_pretrusted(self):
        system = self._system_with_history()
        assert system.score(99) == pytest.approx(0.0)

    def test_empty_log(self):
        assert EigenTrust().global_trust() == {}
        assert EigenTrust().score(1) == 0.0

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            EigenTrust(damping=1.5)


class TestTitForTat:
    def test_newcomer_served_by_everyone(self):
        system = TitForTatCredit()
        system.record_interaction(1, 2, satisfied=True)
        assert system.score(99) == pytest.approx(1.0)

    def test_balances_are_antisymmetric(self):
        system = TitForTatCredit()
        for _ in range(3):
            system.record_interaction(1, 2, satisfied=True)  # 2 served 1
        assert system.balance(2, 1) == pytest.approx(3.0)
        assert system.balance(1, 2) == pytest.approx(-3.0)

    def test_overdrawn_peer_is_not_served(self):
        system = TitForTatCredit(allowance=2.0)
        for _ in range(5):
            system.record_interaction(1, 2, satisfied=True)  # 1 keeps taking from 2
        assert not system.would_serve(2, 1)
        assert system.would_serve(1, 2)

    def test_score_reflects_service_availability(self):
        system = TitForTatCredit(allowance=1.0)
        for server in (2, 3, 4):
            for _ in range(4):
                system.record_interaction(1, server, satisfied=True)
        assert system.score(1) < 0.5

    def test_allowance_validation(self):
        with pytest.raises(ValueError):
            TitForTatCredit(allowance=-1.0)


class TestNewcomerComparison:
    def test_reports_cover_every_default_system(self):
        reports = compare_newcomer_treatment(interactions=300, seed=3)
        assert {report.system for report in reports} == {
            system.name for system in default_systems()
        }

    def test_all_systems_separate_honest_from_freeriders(self):
        reports = compare_newcomer_treatment(interactions=600, seed=3)
        for report in reports:
            assert report.separates_honest_from_freerider, report

    def test_paper_taxonomy_of_newcomer_treatment(self):
        reports = {r.system: r for r in compare_newcomer_treatment(seed=5)}
        # Complaints-based and tit-for-tat over-trust the stranger...
        assert reports["complaints"].newcomer_like_honest
        assert reports["tit_for_tat"].newcomer_score == pytest.approx(1.0)
        # ...while positive-only and EigenTrust freeze it out at the bottom.
        assert reports["positive_only"].newcomer_score == pytest.approx(0.0)
        assert reports["eigentrust"].newcomer_score == pytest.approx(0.0)
        # Beta puts it exactly in the middle.
        assert reports["beta"].newcomer_score == pytest.approx(0.5)

    def test_scores_listing(self):
        system = BetaReputation()
        system.record_interaction(1, 2, satisfied=True)
        scores = system.scores()
        assert set(scores) == {1, 2}
        assert all(0.0 <= value <= 1.0 for value in scores.values())
