"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.ids import PeerIdAllocator
from repro.overlay.assignment import ScoreManagerAssignment
from repro.overlay.ring import ChordRing
from repro.peers.behavior import CooperativeBehavior, FreeriderBehavior
from repro.peers.population import Population
from repro.rocq.store import ReputationStore
from repro.sim.engine import Simulation
from repro.workloads.scenarios import tiny_test


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_params() -> SimulationParameters:
    """A very small but complete configuration (runs in well under a second)."""
    return tiny_test(seed=11)


@pytest.fixture
def micro_params() -> SimulationParameters:
    """An even smaller configuration for engine unit tests."""
    return SimulationParameters(
        num_initial_peers=20,
        num_transactions=400,
        arrival_rate=0.05,
        waiting_period=20.0,
        sample_interval=100.0,
        audit_transactions=5,
        repeats=1,
        seed=5,
    )


@pytest.fixture
def ring_with_peers() -> ChordRing:
    """A ring populated with ten peers (ids 0..9)."""
    ring = ChordRing()
    for peer_id in range(10):
        ring.join(peer_id)
    return ring


@pytest.fixture
def store_with_ring(ring_with_peers: ChordRing) -> ReputationStore:
    """A reputation store wired to the ten-peer ring with 3 managers per peer."""
    assignment = ScoreManagerAssignment(ring=ring_with_peers, num_score_managers=3)
    return ReputationStore(assignment=assignment)


@pytest.fixture
def population_with_members() -> Population:
    """A population with five active cooperative members and one freerider."""
    population = Population(allocator=PeerIdAllocator())
    for _ in range(5):
        peer = population.create_peer(CooperativeBehavior(), is_founder=True)
        population.admit(peer.peer_id, time=0.0)
    freerider = population.create_peer(FreeriderBehavior())
    population.admit(freerider.peer_id, time=1.0)
    return population


@pytest.fixture
def micro_simulation(micro_params: SimulationParameters) -> Simulation:
    """A ready-to-run simulation at the micro scale."""
    return Simulation(micro_params)
