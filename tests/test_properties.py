"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.plotting import sparkline
from repro.analysis.tables import format_table
from repro.config import SimulationParameters
from repro.ids import KEY_SPACE_SIZE, PeerIdAllocator, hash_to_key
from repro.metrics.success_rate import SuccessRateTracker
from repro.metrics.timeseries import TimeSeries
from repro.overlay.hashing import clockwise_distance, in_interval, ring_distance
from repro.overlay.ring import ChordRing
from repro.rng import derive_seed
from repro.rocq.credibility import CredibilityRecord
from repro.rocq.opinion import LocalOpinion
from repro.rocq.score_manager import ReputationRecord

# Keep hypothesis fast and deterministic enough for CI-style runs.
settings.register_profile("repro", max_examples=60, deadline=None)
settings.load_profile("repro")

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
keys = st.integers(min_value=0, max_value=KEY_SPACE_SIZE - 1)


class TestRingArithmeticProperties:
    @given(a=keys, b=keys)
    def test_ring_distance_symmetric_and_bounded(self, a, b):
        assert ring_distance(a, b) == ring_distance(b, a)
        assert 0 <= ring_distance(a, b) <= KEY_SPACE_SIZE // 2

    @given(a=keys, b=keys)
    def test_clockwise_distances_sum_to_ring_size(self, a, b):
        if a == b:
            assert clockwise_distance(a, b) == 0
        else:
            assert (
                clockwise_distance(a, b) + clockwise_distance(b, a) == KEY_SPACE_SIZE
            )

    @given(key=keys, left=keys, right=keys)
    def test_interval_membership_is_exclusive_with_complement(self, key, left, right):
        if left == right or key in (left, right):
            return
        inside = in_interval(key, left, right, inclusive_right=False)
        outside = in_interval(key, right, left, inclusive_right=False)
        assert inside != outside

    @given(data=st.binary(max_size=64))
    def test_hash_to_key_stays_in_key_space(self, data):
        assert 0 <= hash_to_key(data) < KEY_SPACE_SIZE


class TestRingMembershipProperties:
    @given(peer_ids=st.sets(st.integers(min_value=0, max_value=10_000), min_size=1,
                            max_size=40))
    def test_every_key_has_exactly_one_responsible_node(self, peer_ids):
        ring = ChordRing()
        for peer_id in peer_ids:
            ring.join(peer_id)
        assert len(ring) == len(peer_ids)
        probe_keys = [hash_to_key(str(i).encode()) for i in range(10)]
        for key in probe_keys:
            responsible = ring.responsible_peer(key)
            assert responsible in peer_ids

    @given(peer_ids=st.lists(st.integers(min_value=0, max_value=1000), min_size=2,
                             max_size=30, unique=True))
    def test_join_then_leave_restores_previous_responsibility(self, peer_ids):
        ring = ChordRing()
        for peer_id in peer_ids[:-1]:
            ring.join(peer_id)
        probe = hash_to_key(b"probe")
        before = ring.responsible_peer(probe)
        ring.join(peer_ids[-1])
        ring.leave(peer_ids[-1])
        assert ring.responsible_peer(probe) == before


class TestReputationRecordProperties:
    @given(
        initial=unit_floats,
        reports=st.lists(st.tuples(unit_floats, unit_floats), max_size=30),
        adjustments=st.lists(st.floats(min_value=-1.0, max_value=1.0,
                                       allow_nan=False), max_size=10),
    )
    def test_reputation_always_stays_in_unit_interval(self, initial, reports, adjustments):
        record = ReputationRecord(value=initial, reports=1)
        time = 0.0
        for value, weight in reports:
            time += 1.0
            record.apply_report(value, weight, time)
            assert 0.0 <= record.value <= 1.0
        for delta in adjustments:
            time += 1.0
            record.apply_adjustment(delta, time)
            assert 0.0 <= record.value <= 1.0

    @given(values=st.lists(unit_floats, min_size=1, max_size=50))
    def test_reputation_bounded_by_report_extremes_after_first(self, values):
        record = ReputationRecord()
        for index, value in enumerate(values):
            record.apply_report(value, weight=0.3, time=float(index))
        assert min(values) - 1e-9 <= record.value <= max(values) + 1e-9

    @given(initial=unit_floats, delta=st.floats(min_value=-1.0, max_value=1.0,
                                                allow_nan=False))
    def test_adjustment_returns_exact_applied_amount(self, initial, delta):
        record = ReputationRecord(value=initial, reports=1)
        before = record.value
        applied = record.apply_adjustment(delta, time=1.0)
        assert math.isclose(record.value, before + applied, abs_tol=1e-12)

    def test_snapshot_round_trip_property(self):
        @given(value=unit_floats, reports=st.integers(0, 100),
               adjustments=st.integers(0, 100), when=st.floats(0, 1e6))
        def inner(value, reports, adjustments, when):
            record = ReputationRecord(value=value, reports=reports,
                                      adjustments=adjustments, last_update=when)
            assert ReputationRecord.from_snapshot(record.snapshot()) == record

        inner()


class TestOpinionAndCredibilityProperties:
    @given(samples=st.lists(unit_floats, max_size=50),
           smoothing=st.floats(min_value=0.01, max_value=1.0))
    def test_opinion_value_and_quality_bounded(self, samples, smoothing):
        opinion = LocalOpinion()
        for sample in samples:
            opinion.record(sample, smoothing)
        assert 0.0 <= opinion.value <= 1.0
        assert 0.0 <= opinion.quality <= 1.0

    @given(agreements=st.lists(unit_floats, max_size=50),
           gain=st.floats(min_value=0.01, max_value=1.0))
    def test_credibility_bounded(self, agreements, gain):
        record = CredibilityRecord(value=0.5)
        for agreement in agreements:
            record.update(agreement, gain)
        assert 0.0 <= record.value <= 1.0


class TestSuccessTrackerProperties:
    @given(decisions=st.lists(st.tuples(st.booleans(), st.booleans()), max_size=200))
    def test_rate_between_zero_and_one_and_counts_add_up(self, decisions):
        tracker = SuccessRateTracker()
        for cooperative, served in decisions:
            tracker.record(cooperative, served)
        assert tracker.total_decisions == len(decisions)
        if decisions:
            assert 0.0 <= tracker.success_rate <= 1.0
        assert (
            tracker.correct_decisions
            + tracker.accepted_uncooperative
            + tracker.denied_cooperative
            == tracker.total_decisions
        )

    @given(left=st.lists(st.tuples(st.booleans(), st.booleans()), max_size=50),
           right=st.lists(st.tuples(st.booleans(), st.booleans()), max_size=50))
    def test_merge_equals_recording_everything_in_one_tracker(self, left, right):
        a, b, combined = SuccessRateTracker(), SuccessRateTracker(), SuccessRateTracker()
        for cooperative, served in left:
            a.record(cooperative, served)
            combined.record(cooperative, served)
        for cooperative, served in right:
            b.record(cooperative, served)
            combined.record(cooperative, served)
        assert a.merge(b) == combined


class TestTimeSeriesProperties:
    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                     width=32), max_size=40))
    def test_round_trip_and_monotone_times(self, values):
        series = TimeSeries(name="p")
        for index, value in enumerate(values):
            series.append(float(index), value)
        rebuilt = TimeSeries.from_dict(series.to_dict())
        assert rebuilt.values == series.values
        assert rebuilt.times == sorted(rebuilt.times)


class TestMiscellaneousProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           token=st.text(max_size=20))
    def test_derive_seed_deterministic_and_in_range(self, seed, token):
        first = derive_seed(seed, token)
        second = derive_seed(seed, token)
        assert first == second
        assert 0 <= first < 2**63

    @given(count=st.integers(min_value=0, max_value=200))
    def test_allocator_ids_unique_and_dense(self, count):
        allocator = PeerIdAllocator()
        ids = allocator.allocate_many(count)
        assert ids == list(range(count))

    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                     width=32), max_size=30))
    def test_sparkline_length_matches_input(self, values):
        assert len(sparkline(values)) == len(values)

    @given(rows=st.lists(st.lists(st.integers(-1000, 1000), min_size=2, max_size=2),
                         max_size=10))
    def test_format_table_line_count(self, rows):
        text = format_table(["a", "b"], rows)
        assert len(text.splitlines()) == 2 + len(rows)

    @given(factor=st.floats(min_value=0.001, max_value=1.0))
    def test_scaled_params_always_valid(self, factor):
        params = SimulationParameters().scaled(factor)
        assert params.num_transactions >= 1
        assert params.sample_interval >= 1.0
