"""Tests for the consolidated CLI (``python -m repro``) and the legacy shims.

The contracts pinned here:

* the ``catalogue`` subcommand unifies the legacy ``--list-*`` flags, in
  both text and ``--json`` modes;
* ``run`` executes end-to-end and its digest matches the service path;
* unknown scheme/scenario/adversary/experiment names exit with code 2 and
  a did-you-mean hint, consistently across subcommands;
* the deprecated entry points (``python -m repro.experiments.runner``,
  ``python -m repro.bench``) delegate with byte-identical stdout.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.api import catalogue
from repro.bench.__main__ import main as bench_main
from repro.experiments import runner


def run_cli(capsys, argv: list[str]) -> tuple[int, str, str]:
    """Run the CLI and return (exit code, stdout, stderr)."""
    exit_code = cli.main(argv)
    captured = capsys.readouterr()
    return exit_code, captured.out, captured.err


class TestCatalogueSubcommand:
    def test_single_section_text_matches_legacy_listing_format(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue", "adversaries"])
        assert exit_code == 0
        lines = out.strip().splitlines()
        names = [line.split()[0] for line in lines]
        assert names == sorted(names)
        assert set(names) == set(catalogue()["adversaries"])
        for line in lines:  # every entry is "name  description"
            assert len(line.split(None, 1)) == 2, line

    def test_all_sections_text_has_headers(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue"])
        assert exit_code == 0
        for section in ("schemes", "scenarios", "adversaries", "experiments"):
            assert f"[{section}]" in out

    def test_json_mode_round_trips_the_catalogue(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue", "--json"])
        assert exit_code == 0
        assert json.loads(out) == catalogue()

    def test_json_mode_single_section_is_nested(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue", "schemes", "--json"])
        assert exit_code == 0
        assert json.loads(out) == {"schemes": catalogue()["schemes"]}

    def test_unknown_section_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["catalogue", "schemas"])
        assert excinfo.value.code == 2


class TestRunSubcommand:
    ARGS = ["run", "--scenario", "tiny_test", "--seed", "5", "--quiet"]

    def test_end_to_end_text_output(self, capsys):
        exit_code, out, _ = run_cli(capsys, self.ARGS)
        assert exit_code == 0
        assert "decision success rate" in out
        assert "digest:" in out

    def test_json_output_matches_service_digest(self, capsys):
        from repro.api import RunRequest, SimulationService

        exit_code, out, _ = run_cli(capsys, [*self.ARGS, "--json"])
        assert exit_code == 0
        document = json.loads(out)
        with SimulationService() as service:
            expected = service.run(RunRequest(scenario="tiny_test", seed=5))
        assert document["digest"] == expected.digest()
        assert document["request"]["scenario"] == "tiny_test"
        assert len(document["summaries"]) == 1

    def test_set_overrides_and_jobs(self, capsys):
        exit_code, out, _ = run_cli(
            capsys,
            ["run", "--scenario", "tiny_test", "--set", "arrival_rate=0.05",
             "--set", "bootstrap_mode=open", "--jobs", "2", "--repeats", "2",
             "--quiet"],
        )
        assert exit_code == 0
        assert "2 repeat(s)" in out

    def test_cache_dir_reports_stats(self, tmp_path, capsys):
        argv = [*self.ARGS, "--cache-dir", str(tmp_path)]
        exit_code, _, err = run_cli(capsys, argv)
        assert exit_code == 0
        assert "0 hit(s), 1 miss(es)" in err
        exit_code, _, err = run_cli(capsys, argv)
        assert exit_code == 0
        assert "1 hit(s), 0 miss(es)" in err


class TestErrorNormalisation:
    """Unknown names exit 2 with a did-you-mean hint, on every subcommand."""

    @pytest.mark.parametrize(
        "argv,hint",
        [
            (["run", "--scheme", "roqc"], "rocq"),
            (["run", "--scenario", "tiny_tset"], "tiny_test"),
            (["run", "--adversary", "sybil_swam"], "sybil_swarm"),
            (["run", "--set", "arival_rate=0.5"], "arrival_rate"),
            (["experiment", "--scheme", "roqc"], "rocq"),
            (["experiment", "--scenario", "tiny_tset"], "tiny_test"),
            (["experiment", "--only", "figure99"], "did you mean"),
        ],
    )
    def test_unknown_names_exit_2_with_hint(self, capsys, argv, hint):
        exit_code, out, err = run_cli(capsys, argv)
        assert exit_code == 2
        assert "error:" in err
        assert hint in err

    def test_malformed_set_flag_exits_2(self, capsys):
        exit_code, _, err = run_cli(capsys, ["run", "--set", "arrival_rate"])
        assert exit_code == 2
        assert "KEY=VALUE" in err

    def test_malformed_adversary_json_exits_2(self, capsys):
        exit_code, _, err = run_cli(capsys, ["run", "--adversary", "{bad json"])
        assert exit_code == 2
        assert "not valid JSON" in err


class TestExperimentSubcommand:
    def test_tiny_run_produces_report_and_store(self, tmp_path, capsys):
        exit_code, out, _ = run_cli(
            capsys,
            ["experiment", "--scale", "0.01", "--repeats", "1",
             "--only", "table1", "--out", str(tmp_path)],
        )
        assert exit_code == 0
        assert "Reproduction report" in out
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "table1.json").exists()


class TestLegacyShims:
    """The deprecated entry points delegate with byte-identical stdout."""

    RUNNER_ARGS = ["--scale", "0.01", "--repeats", "1", "--only", "table1"]

    def test_runner_shim_stdout_identical_for_tiny_run(self, capsys):
        legacy_exit = runner.main(self.RUNNER_ARGS)
        legacy = capsys.readouterr()
        new_exit = cli.main(["experiment", *self.RUNNER_ARGS])
        new = capsys.readouterr()
        assert legacy_exit == new_exit == 0
        assert legacy.out == new.out
        assert "deprecated" in legacy.err

    @pytest.mark.parametrize(
        "flag,section",
        [("--list-scenarios", "scenarios"), ("--list-adversaries", "adversaries")],
    )
    def test_runner_listing_flags_map_to_catalogue(self, capsys, flag, section):
        legacy_exit = runner.main([flag])
        legacy = capsys.readouterr()
        new_exit = cli.main(["catalogue", section])
        new = capsys.readouterr()
        assert legacy_exit == new_exit == 0
        assert legacy.out == new.out

    def test_bench_shim_stdout_identical(self, tmp_path, capsys, monkeypatch):
        # Patch the suite itself so the comparison is instant; the shim and
        # the CLI must then print the same report lines.
        import repro.bench.hotpath as hotpath_module

        def fake_run(config):
            return {
                "end_to_end": [],
                "micro": {
                    "ring_ops": [],
                    "assignment_lookup": {
                        "cold_us_per_lookup": 1.0,
                        "cached_us_per_lookup": 1.0,
                        "cache_speedup": 1.0,
                        "targeted_eviction": {
                            "evicted_by_one_join": 0,
                            "cached_subjects": 0,
                        },
                    },
                },
                "all_bit_identical": True,
            }

        monkeypatch.setattr(hotpath_module, "run_hotpath_benchmarks", fake_run)
        legacy_exit = bench_main(
            ["--quick", "--out", str(tmp_path / "legacy.json")]
        )
        legacy = capsys.readouterr()
        new_exit = cli.main(
            ["bench", "--quick", "--out", str(tmp_path / "new.json")]
        )
        new = capsys.readouterr()
        assert legacy_exit == new_exit == 0
        assert "deprecated" in legacy.err
        # Same stdout modulo the differing --out path on the last line.
        strip = lambda text: [  # noqa: E731 - tiny local helper
            line for line in text.splitlines()
            if not line.startswith("report written to")
        ]
        assert strip(legacy.out) == strip(new.out)
        assert (tmp_path / "legacy.json").exists()
        assert (tmp_path / "new.json").exists()
