"""Tests for the consolidated CLI (``python -m repro``) and the legacy shims.

The contracts pinned here:

* the ``catalogue`` subcommand unifies the legacy ``--list-*`` flags, in
  both text and ``--json`` modes;
* ``run`` executes end-to-end and its digest matches the service path;
* unknown scheme/scenario/adversary/experiment names exit with code 2 and
  a did-you-mean hint, consistently across subcommands;
* the deprecated entry points (``python -m repro.experiments.runner``,
  ``python -m repro.bench``) delegate with byte-identical stdout.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.api import catalogue
from repro.bench.__main__ import main as bench_main
from repro.experiments import runner


def run_cli(capsys, argv: list[str]) -> tuple[int, str, str]:
    """Run the CLI and return (exit code, stdout, stderr)."""
    exit_code = cli.main(argv)
    captured = capsys.readouterr()
    return exit_code, captured.out, captured.err


class TestCatalogueSubcommand:
    def test_single_section_text_matches_legacy_listing_format(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue", "adversaries"])
        assert exit_code == 0
        lines = out.strip().splitlines()
        names = [line.split()[0] for line in lines]
        assert names == sorted(names)
        assert set(names) == set(catalogue()["adversaries"])
        for line in lines:  # every entry is "name  description"
            assert len(line.split(None, 1)) == 2, line

    def test_all_sections_text_has_headers(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue"])
        assert exit_code == 0
        for section in (
            "schemes",
            "scenarios",
            "adversaries",
            "experiments",
            "fuzz-generators",
        ):
            assert f"[{section}]" in out

    def test_json_mode_round_trips_the_catalogue(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue", "--json"])
        assert exit_code == 0
        assert json.loads(out) == catalogue()

    def test_json_mode_single_section_is_nested(self, capsys):
        exit_code, out, _ = run_cli(capsys, ["catalogue", "schemes", "--json"])
        assert exit_code == 0
        assert json.loads(out) == {"schemes": catalogue()["schemes"]}

    def test_unknown_section_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["catalogue", "schemas"])
        assert excinfo.value.code == 2


class TestRunSubcommand:
    ARGS = ["run", "--scenario", "tiny_test", "--seed", "5", "--quiet"]

    def test_end_to_end_text_output(self, capsys):
        exit_code, out, _ = run_cli(capsys, self.ARGS)
        assert exit_code == 0
        assert "decision success rate" in out
        assert "digest:" in out

    def test_json_output_matches_service_digest(self, capsys):
        from repro.api import RunRequest, SimulationService

        exit_code, out, _ = run_cli(capsys, [*self.ARGS, "--json"])
        assert exit_code == 0
        document = json.loads(out)
        with SimulationService() as service:
            expected = service.run(RunRequest(scenario="tiny_test", seed=5))
        assert document["digest"] == expected.digest()
        assert document["request"]["scenario"] == "tiny_test"
        assert len(document["summaries"]) == 1

    def test_json_output_carries_throughput_keys(self, capsys):
        """`run --json` surfaces tx_per_sec and elapsed_seconds."""
        exit_code, out, _ = run_cli(capsys, [*self.ARGS, "--json"])
        assert exit_code == 0
        document = json.loads(out)
        assert document["elapsed_seconds"] > 0
        assert document["tx_per_sec"] > 0
        expected = sum(
            summary["transactions_attempted"] for summary in document["summaries"]
        ) / sum(summary["elapsed_seconds"] for summary in document["summaries"])
        assert document["tx_per_sec"] == pytest.approx(expected, rel=1e-3)

    def test_set_overrides_and_jobs(self, capsys):
        exit_code, out, _ = run_cli(
            capsys,
            ["run", "--scenario", "tiny_test", "--set", "arrival_rate=0.05",
             "--set", "bootstrap_mode=open", "--jobs", "2", "--repeats", "2",
             "--quiet"],
        )
        assert exit_code == 0
        assert "2 repeat(s)" in out

    def test_cache_dir_reports_stats(self, tmp_path, capsys):
        argv = [*self.ARGS, "--cache-dir", str(tmp_path)]
        exit_code, _, err = run_cli(capsys, argv)
        assert exit_code == 0
        assert "0 hit(s), 1 miss(es)" in err
        exit_code, _, err = run_cli(capsys, argv)
        assert exit_code == 0
        assert "1 hit(s), 0 miss(es)" in err


class TestErrorNormalisation:
    """Unknown names exit 2 with a did-you-mean hint, on every subcommand."""

    @pytest.mark.parametrize(
        "argv,hint",
        [
            (["run", "--scheme", "roqc"], "rocq"),
            (["run", "--scenario", "tiny_tset"], "tiny_test"),
            (["run", "--adversary", "sybil_swam"], "sybil_swarm"),
            (["run", "--set", "arival_rate=0.5"], "arrival_rate"),
            (["experiment", "--scheme", "roqc"], "rocq"),
            (["experiment", "--scenario", "tiny_tset"], "tiny_test"),
            (["experiment", "--only", "figure99"], "did you mean"),
            (["trace", "diff", "no-such.jsonl", "also-missing.jsonl"], "unknown trace"),
            (["trace", "replay", "no-such.jsonl"], "unknown trace"),
            (["trace", "fuzz", "--scheme", "roqc"], "rocq"),
        ],
    )
    def test_unknown_names_exit_2_with_hint(self, capsys, argv, hint):
        exit_code, out, err = run_cli(capsys, argv)
        assert exit_code == 2
        assert "error:" in err
        assert hint in err

    def test_malformed_set_flag_exits_2(self, capsys):
        exit_code, _, err = run_cli(capsys, ["run", "--set", "arrival_rate"])
        assert exit_code == 2
        assert "KEY=VALUE" in err

    def test_malformed_adversary_json_exits_2(self, capsys):
        exit_code, _, err = run_cli(capsys, ["run", "--adversary", "{bad json"])
        assert exit_code == 2
        assert "not valid JSON" in err


class TestTraceSubcommand:
    """`trace record/replay/diff/fuzz` against a downscaled tiny_test run."""

    RECORD_ARGS = ["--scenario", "tiny_test", "--seed", "5", "--scale", "0.1"]
    FUZZ_ARGS = ["--seed", "11", "--max-transactions", "400", "--max-peers", "20"]

    @pytest.fixture()
    def recorded_trace(self, tmp_path, capsys):
        path = tmp_path / "base.jsonl"
        exit_code, _, _ = run_cli(
            capsys,
            ["trace", "record", *self.RECORD_ARGS, "--out", str(path), "--quiet"],
        )
        assert exit_code == 0
        return path

    def test_record_reports_path_and_digest(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        exit_code, out, _ = run_cli(
            capsys,
            ["trace", "record", *self.RECORD_ARGS, "--out", str(path), "--quiet"],
        )
        assert exit_code == 0
        assert path.exists()
        assert str(path) in out
        assert "summary digest:" in out

    def test_record_json_mode(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        exit_code, out, _ = run_cli(
            capsys,
            ["trace", "record", *self.RECORD_ARGS,
             "--out", str(path), "--quiet", "--json"],
        )
        assert exit_code == 0
        document = json.loads(out)
        assert document["trace"] == str(path)
        assert document["summary_digest"]
        assert document["fingerprint"]

    def test_unmodified_replay_is_bit_identical(self, recorded_trace, capsys):
        exit_code, out, _ = run_cli(
            capsys, ["trace", "replay", str(recorded_trace), "--quiet"]
        )
        assert exit_code == 0
        assert "bit-identical" in out

    def test_modified_replay_diverges_without_failing(
        self, recorded_trace, tmp_path, capsys
    ):
        replay_to = tmp_path / "beta.jsonl"
        exit_code, out, _ = run_cli(
            capsys,
            ["trace", "replay", str(recorded_trace), "--scheme", "beta",
             "--record-to", str(replay_to), "--quiet", "--json"],
        )
        assert exit_code == 0
        document = json.loads(out)
        assert document["identical"] is False
        assert document["modified"] is True
        assert replay_to.exists()

        exit_code, out, _ = run_cli(
            capsys, ["trace", "diff", str(recorded_trace), str(replay_to)]
        )
        assert exit_code == 1
        assert "first divergence:" in out

    def test_diff_of_identical_traces_exits_0(self, recorded_trace, capsys):
        exit_code, out, _ = run_cli(
            capsys, ["trace", "diff", str(recorded_trace), str(recorded_trace)]
        )
        assert exit_code == 0
        assert "identical" in out

    def test_diff_json_mode(self, recorded_trace, capsys):
        exit_code, out, _ = run_cli(
            capsys,
            ["trace", "diff", str(recorded_trace), str(recorded_trace), "--json"],
        )
        assert exit_code == 0
        document = json.loads(out)
        assert document["identical"] is True
        assert document["divergences"] == []

    def test_missing_trace_exits_2_with_sibling_hint(self, recorded_trace, capsys):
        missing = recorded_trace.parent / "bsae.jsonl"
        exit_code, _, err = run_cli(capsys, ["trace", "replay", str(missing)])
        assert exit_code == 2
        assert "did you mean" in err
        assert str(recorded_trace) in err

    def test_fuzz_clean_batch_exits_0(self, capsys):
        exit_code, out, _ = run_cli(
            capsys, ["trace", "fuzz", "--count", "3", *self.FUZZ_ARGS, "--quiet"]
        )
        assert exit_code == 0
        assert "all invariants hold" in out

    def test_fuzz_json_mode(self, capsys):
        exit_code, out, _ = run_cli(
            capsys,
            ["trace", "fuzz", "--count", "2", *self.FUZZ_ARGS, "--quiet", "--json"],
        )
        assert exit_code == 0
        document = json.loads(out)
        assert document["ok"] is True
        assert len(document["results"]) == 2


class TestDottedSetOverrides:
    """--set routes dotted adversary keys; everything else exits 2 loudly."""

    BASE = ["run", "--scenario", "tiny_test", "--scale", "0.1", "--quiet"]

    def test_adversary_fields_and_knobs_apply(self, capsys):
        exit_code, out, _ = run_cli(
            capsys,
            [*self.BASE, "--adversary", "sybil_swarm",
             "--set", "adversary.count=2",
             "--set", "adversary.interval=75",
             "--set", "adversary.options.waves=2",
             "--json"],
        )
        assert exit_code == 0
        adversary = json.loads(out)["request"]["adversary"]
        assert adversary["count"] == 2
        assert adversary["interval"] == 75.0
        assert adversary["options"]["waves"] == 2.0

    def test_non_adversary_dotted_root_exits_2(self, capsys):
        exit_code, _, err = run_cli(
            capsys, [*self.BASE, "--set", "lending.intro_amount=0.2"]
        )
        assert exit_code == 2
        assert "dotted keys address the adversary spec only" in err

    def test_dotted_adversary_without_adversary_exits_2(self, capsys):
        exit_code, _, err = run_cli(capsys, [*self.BASE, "--set", "adversary.count=2"])
        assert exit_code == 2
        assert "pass --adversary NAME" in err

    def test_unknown_adversary_field_exits_2(self, capsys):
        exit_code, _, err = run_cli(
            capsys,
            [*self.BASE, "--adversary", "sybil_swarm", "--set", "adversary.bogus=1"],
        )
        assert exit_code == 2
        assert "unknown adversary field" in err

    def test_unparsable_value_exits_2(self, capsys):
        exit_code, _, err = run_cli(
            capsys,
            [*self.BASE, "--adversary", "sybil_swarm", "--set", "adversary.count=abc"],
        )
        assert exit_code == 2
        assert "adversary.count" in err

    def test_unknown_knob_exits_2(self, capsys):
        exit_code, _, err = run_cli(
            capsys,
            [*self.BASE, "--adversary", "sybil_swarm",
             "--set", "adversary.options.bogus=1"],
        )
        assert exit_code == 2
        assert "bogus" in err


class TestExperimentSubcommand:
    def test_tiny_run_produces_report_and_store(self, tmp_path, capsys):
        exit_code, out, _ = run_cli(
            capsys,
            ["experiment", "--scale", "0.01", "--repeats", "1",
             "--only", "table1", "--out", str(tmp_path)],
        )
        assert exit_code == 0
        assert "Reproduction report" in out
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "table1.json").exists()


class TestLegacyShims:
    """The deprecated entry points delegate with byte-identical stdout."""

    RUNNER_ARGS = ["--scale", "0.01", "--repeats", "1", "--only", "table1"]

    def test_runner_shim_stdout_identical_for_tiny_run(self, capsys):
        legacy_exit = runner.main(self.RUNNER_ARGS)
        legacy = capsys.readouterr()
        new_exit = cli.main(["experiment", *self.RUNNER_ARGS])
        new = capsys.readouterr()
        assert legacy_exit == new_exit == 0
        assert legacy.out == new.out
        assert "deprecated" in legacy.err

    @pytest.mark.parametrize(
        "flag,section",
        [("--list-scenarios", "scenarios"), ("--list-adversaries", "adversaries")],
    )
    def test_runner_listing_flags_map_to_catalogue(self, capsys, flag, section):
        legacy_exit = runner.main([flag])
        legacy = capsys.readouterr()
        new_exit = cli.main(["catalogue", section])
        new = capsys.readouterr()
        assert legacy_exit == new_exit == 0
        assert legacy.out == new.out

    def test_bench_shim_stdout_identical(self, tmp_path, capsys, monkeypatch):
        # Patch the suite itself so the comparison is instant; the shim and
        # the CLI must then print the same report lines.
        import repro.bench.hotpath as hotpath_module

        def fake_run(config):
            return {
                "end_to_end": [],
                "micro": {
                    "ring_ops": [],
                    "assignment_lookup": {
                        "cold_us_per_lookup": 1.0,
                        "cached_us_per_lookup": 1.0,
                        "cache_speedup": 1.0,
                        "targeted_eviction": {
                            "evicted_by_one_join": 0,
                            "cached_subjects": 0,
                        },
                    },
                },
                "all_bit_identical": True,
            }

        monkeypatch.setattr(hotpath_module, "run_hotpath_benchmarks", fake_run)
        legacy_exit = bench_main(
            ["--quick", "--out", str(tmp_path / "legacy.json")]
        )
        legacy = capsys.readouterr()
        new_exit = cli.main(
            ["bench", "--quick", "--out", str(tmp_path / "new.json")]
        )
        new = capsys.readouterr()
        assert legacy_exit == new_exit == 0
        assert "deprecated" in legacy.err
        # Same stdout modulo the differing --out path on the last line.
        strip = lambda text: [  # noqa: E731 - tiny local helper
            line for line in text.splitlines()
            if not line.startswith("report written to")
        ]
        assert strip(legacy.out) == strip(new.out)
        assert (tmp_path / "legacy.json").exists()
        assert (tmp_path / "new.json").exists()
