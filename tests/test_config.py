"""Tests for repro.config (Table 1 parameters and validation)."""

from __future__ import annotations

import pytest

from repro.config import (
    PAPER_DEFAULTS,
    AdversarySpec,
    BootstrapMode,
    SimulationParameters,
    Topology,
)
from repro.errors import ConfigurationError


class TestTable1Defaults:
    def test_defaults_match_table1(self):
        params = SimulationParameters()
        assert params.num_initial_peers == 500
        assert params.num_transactions == 500_000
        assert params.num_score_managers == 6
        assert params.arrival_rate == pytest.approx(0.01)
        assert params.fraction_uncooperative == pytest.approx(0.25)
        assert params.fraction_naive == pytest.approx(0.3)
        assert params.selective_error_rate == pytest.approx(0.10)
        assert params.topology == Topology.SCALE_FREE
        assert params.waiting_period == pytest.approx(1000.0)
        assert params.audit_transactions == 20
        assert params.intro_amount == pytest.approx(0.1)
        assert params.reward_amount == pytest.approx(0.02)

    def test_paper_defaults_constant_is_default_constructed(self):
        assert PAPER_DEFAULTS == SimulationParameters()

    def test_default_bootstrap_mode_is_lending(self):
        assert SimulationParameters().bootstrap_mode == BootstrapMode.LENDING


class TestDerivedQuantities:
    def test_expected_arrivals(self):
        params = SimulationParameters(arrival_rate=0.01, num_transactions=500_000)
        assert params.expected_arrivals() == pytest.approx(5000.0)

    def test_arrival_rate_split(self):
        params = SimulationParameters(arrival_rate=0.02, fraction_uncooperative=0.25)
        assert params.cooperative_arrival_rate() == pytest.approx(0.015)
        assert params.uncooperative_arrival_rate() == pytest.approx(0.005)
        total = params.cooperative_arrival_rate() + params.uncooperative_arrival_rate()
        assert total == pytest.approx(params.arrival_rate)

    def test_min_intro_reputation_default_rule(self):
        params = SimulationParameters(intro_amount=0.1)
        assert params.effective_min_intro_reputation() == pytest.approx(0.2)
        params = SimulationParameters(intro_amount=0.02)
        assert params.effective_min_intro_reputation() == pytest.approx(0.07)

    def test_min_intro_reputation_explicit_override(self):
        params = SimulationParameters(intro_amount=0.1, min_intro_reputation=0.5)
        assert params.effective_min_intro_reputation() == pytest.approx(0.5)

    def test_min_intro_reputation_always_at_least_intro_amount(self):
        for amount in (0.05, 0.1, 0.25, 0.45, 0.9):
            params = SimulationParameters(intro_amount=amount)
            assert params.effective_min_intro_reputation() >= amount


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_initial_peers", 0),
            ("num_transactions", -1),
            ("num_score_managers", 0),
            ("arrival_rate", -0.1),
            ("fraction_uncooperative", 1.5),
            ("fraction_naive", -0.2),
            ("selective_error_rate", 2.0),
            ("intro_amount", 0.0),
            ("intro_amount", 1.5),
            ("reward_amount", -0.1),
            ("waiting_period", -1.0),
            ("audit_transactions", 0),
            ("sample_interval", 0.0),
            ("repeats", 0),
            ("scale_free_attachment", 0),
        ],
    )
    def test_out_of_range_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SimulationParameters(**{field: value})

    def test_min_intro_below_intro_amount_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(intro_amount=0.3, min_intro_reputation=0.1)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(topology="hypercube")

    def test_unknown_bootstrap_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(bootstrap_mode="anarchy")


class TestParsingAndOverrides:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("random", Topology.RANDOM),
            ("uniform", Topology.RANDOM),
            ("Powerlaw", Topology.SCALE_FREE),
            ("scale-free", Topology.SCALE_FREE),
            ("SCALE_FREE", Topology.SCALE_FREE),
        ],
    )
    def test_topology_aliases(self, alias, expected):
        assert Topology.parse(alias) == expected

    def test_bootstrap_mode_parse_accepts_enum_and_string(self):
        assert BootstrapMode.parse(BootstrapMode.OPEN) == BootstrapMode.OPEN
        assert BootstrapMode.parse("fixed-credit") == BootstrapMode.FIXED_CREDIT

    def test_with_overrides_returns_new_validated_instance(self):
        params = SimulationParameters()
        modified = params.with_overrides(arrival_rate=0.05)
        assert modified.arrival_rate == pytest.approx(0.05)
        assert params.arrival_rate == pytest.approx(0.01)
        with pytest.raises(ConfigurationError):
            params.with_overrides(arrival_rate=-1.0)

    def test_scaled_shrinks_horizon_but_not_rates(self):
        params = SimulationParameters()
        scaled = params.scaled(0.1)
        assert scaled.num_transactions == 50_000
        assert scaled.sample_interval == pytest.approx(500.0)
        assert scaled.arrival_rate == params.arrival_rate
        assert scaled.num_initial_peers == params.num_initial_peers

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters().scaled(0.0)


class TestSerialisation:
    def test_round_trip_via_dict(self):
        params = SimulationParameters(
            arrival_rate=0.05, topology="random", bootstrap_mode="open"
        )
        rebuilt = SimulationParameters.from_dict(params.to_dict())
        assert rebuilt == params

    def test_round_trip_via_json(self):
        params = SimulationParameters(intro_amount=0.25, reward_amount=0.05)
        rebuilt = SimulationParameters.from_json(params.to_json())
        assert rebuilt == params

    def test_from_dict_ignores_unknown_keys(self):
        data = SimulationParameters().to_dict()
        data["not_a_real_parameter"] = 42
        rebuilt = SimulationParameters.from_dict(data)
        assert rebuilt == SimulationParameters()

    def test_to_dict_uses_plain_enum_values(self):
        data = SimulationParameters().to_dict()
        assert data["topology"] == "scale_free"
        assert data["bootstrap_mode"] == "lending"

    def test_adversary_defaults_to_none_and_serialises_as_null(self):
        params = SimulationParameters()
        assert params.adversary is None
        assert params.to_dict()["adversary"] is None
        assert SimulationParameters.from_dict(params.to_dict()) == params

    def test_adversary_accepts_a_bare_strategy_name(self):
        params = SimulationParameters(adversary="slander")
        assert isinstance(params.adversary, AdversarySpec)
        assert params.adversary.name == "slander"

    def test_adversary_round_trips_via_dict(self):
        params = SimulationParameters(
            adversary=AdversarySpec(
                name="whitewash_waves", count=2, options={"burn_threshold": 0.25}
            )
        )
        data = params.to_dict()
        assert data["adversary"]["name"] == "whitewash_waves"
        assert data["adversary"]["options"] == {"burn_threshold": 0.25}
        assert SimulationParameters.from_dict(data) == params

    def test_invalid_adversary_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(adversary="route_hijack")
        with pytest.raises(ConfigurationError):
            SimulationParameters(
                adversary=AdversarySpec(name="slander", count=0)
            )
