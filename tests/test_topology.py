"""Tests for the interaction topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationParameters, Topology
from repro.topology.factory import make_topology
from repro.topology.random_topology import RandomTopology
from repro.topology.scale_free import ScaleFreeTopology


class TestRandomTopology:
    def test_sampling_from_empty_returns_none(self, rng):
        assert RandomTopology().sample_member(rng) is None

    def test_single_member_excluded_returns_none(self, rng):
        topology = RandomTopology()
        topology.add_member(1)
        assert topology.sample_member(rng, exclude=1) is None
        assert topology.sample_member(rng) == 1

    def test_add_and_remove_members(self, rng):
        topology = RandomTopology()
        for peer_id in range(5):
            topology.add_member(peer_id)
        assert len(topology) == 5
        topology.remove_member(2)
        assert 2 not in topology
        assert len(topology) == 4
        samples = {topology.sample_member(rng) for _ in range(200)}
        assert 2 not in samples

    def test_add_is_idempotent(self):
        topology = RandomTopology()
        topology.add_member(1)
        topology.add_member(1)
        assert len(topology) == 1

    def test_remove_unknown_is_noop(self):
        topology = RandomTopology()
        topology.remove_member(42)
        assert len(topology) == 0

    def test_sampling_is_roughly_uniform(self, rng):
        topology = RandomTopology()
        for peer_id in range(10):
            topology.add_member(peer_id)
        counts = np.zeros(10)
        for _ in range(5000):
            counts[topology.sample_member(rng)] += 1
        frequencies = counts / counts.sum()
        assert frequencies.max() < 0.2
        assert frequencies.min() > 0.04

    def test_exclusion_respected(self, rng):
        topology = RandomTopology()
        for peer_id in range(4):
            topology.add_member(peer_id)
        for _ in range(100):
            assert topology.sample_member(rng, exclude=0) != 0


class TestScaleFreeTopology:
    def _grown(self, members: int = 60) -> ScaleFreeTopology:
        topology = ScaleFreeTopology(attachment=2, rng=np.random.default_rng(3))
        for peer_id in range(members):
            topology.add_member(peer_id)
        return topology

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            ScaleFreeTopology(attachment=0)
        with pytest.raises(ValueError):
            ScaleFreeTopology(exponent=-1.0)

    def test_membership_tracking(self, rng):
        topology = self._grown(20)
        assert len(topology) == 20
        assert 3 in topology
        topology.remove_member(3)
        assert 3 not in topology

    def test_every_member_has_positive_degree(self):
        topology = self._grown(50)
        for peer_id in range(50):
            assert topology.degree(peer_id) >= 1

    def test_sampling_prefers_high_degree_nodes(self, rng):
        topology = self._grown(80)
        degrees = {peer_id: topology.degree(peer_id) for peer_id in range(80)}
        counts = {peer_id: 0 for peer_id in range(80)}
        for _ in range(20000):
            counts[topology.sample_member(rng)] += 1
        top_degree = sorted(degrees, key=degrees.get, reverse=True)[:8]
        bottom_degree = sorted(degrees, key=degrees.get)[:8]
        top_rate = sum(counts[p] for p in top_degree)
        bottom_rate = sum(counts[p] for p in bottom_degree)
        assert top_rate > 2 * bottom_rate

    def test_degree_distribution_is_heavy_tailed(self):
        topology = self._grown(300)
        degrees = np.array([topology.degree(p) for p in range(300)])
        # A handful of hubs should have degree far above the median.
        assert degrees.max() >= 4 * np.median(degrees)

    def test_exclusion_respected(self, rng):
        topology = self._grown(10)
        for _ in range(100):
            assert topology.sample_member(rng, exclude=0) != 0

    def test_removal_excludes_from_sampling(self, rng):
        topology = self._grown(30)
        for peer_id in range(10):
            topology.remove_member(peer_id)
        samples = {topology.sample_member(rng) for _ in range(500)}
        assert samples.isdisjoint(set(range(10)))

    def test_networkx_export_matches_membership(self):
        networkx = pytest.importorskip("networkx")
        topology = self._grown(40)
        graph = topology.as_networkx()
        assert isinstance(graph, networkx.Graph)
        assert set(graph.nodes) == set(range(40))
        assert graph.number_of_edges() > 0

    def test_edges_only_between_members(self):
        topology = self._grown(30)
        topology.remove_member(5)
        for u, v in topology.edges():
            assert u in topology and v in topology

    def test_deterministic_given_rng(self, rng):
        def build():
            topology = ScaleFreeTopology(attachment=2, rng=np.random.default_rng(42))
            for peer_id in range(30):
                topology.add_member(peer_id)
            return [topology.degree(p) for p in range(30)]

        assert build() == build()


class TestTopologyFactory:
    def test_random_topology_from_params(self):
        params = SimulationParameters(topology=Topology.RANDOM)
        assert isinstance(make_topology(params), RandomTopology)

    def test_scale_free_topology_from_params(self):
        params = SimulationParameters(topology=Topology.SCALE_FREE)
        topology = make_topology(params)
        assert isinstance(topology, ScaleFreeTopology)
        assert topology.attachment == params.scale_free_attachment

    def test_sample_helpers_delegate(self, rng):
        params = SimulationParameters(topology=Topology.RANDOM)
        topology = make_topology(params)
        topology.add_member(1)
        topology.add_member(2)
        assert topology.sample_respondent(rng, requester=1) == 2
        assert topology.sample_introducer(rng, applicant=1) == 2
