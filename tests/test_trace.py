"""Tests for the trace engine: record, replay, diff/bisect, and the API facet.

The contracts pinned here:

* recording is a pure observer — a recorded run's summary digest equals the
  plain run's digest, bit for bit;
* a trace round-trips through its JSONL file losslessly;
* replaying a trace under the same configuration reproduces the recorded
  digest exactly (with and without an adversary), on every executor backend;
* replaying under a different scheme runs to completion and diverges — the
  exact A/B the trace engine exists for;
* the divergence bisector pinpoints an injected single-event perturbation
  to its exact record index;
* ``RunRequest.trace`` validates up front, participates in the fingerprint,
  round-trips through JSON, and bypasses the run cache.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunRequest, SimulationService, UnknownNameError, summary_digest
from repro.config import AdversarySpec, SimulationParameters
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation, run_simulation
from repro.trace import (
    TraceFormatError,
    TraceLog,
    TraceTruncatedError,
    TraceRecorder,
    TraceSpec,
    diff_traces,
    engine_state_digest,
    first_divergence,
    load_trace_header,
    record_simulation,
    replay_simulation,
)

#: A fast operating point with enough churn to exercise arrivals, waiting
#: queues and lending audits within a couple hundred transactions.
SMALL = dict(
    num_initial_peers=15,
    num_transactions=250,
    arrival_rate=0.08,
    waiting_period=20.0,
    sample_interval=50.0,
    num_score_managers=3,
)


def small_params(**overrides) -> SimulationParameters:
    merged = {**SMALL, **overrides}
    return SimulationParameters(**merged)


@pytest.fixture(scope="module")
def recorded():
    """One recorded run shared by the read-only tests: (summary, log)."""
    return record_simulation(small_params(), seed=9)


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory, recorded):
    path = tmp_path_factory.mktemp("traces") / "base.jsonl"
    recorded[1].save(path)
    return path


class TestRecorder:
    def test_recording_is_a_pure_observer(self, recorded):
        summary, _ = recorded
        plain = run_simulation(small_params(), seed=9)
        assert summary_digest(summary) == summary_digest(plain)

    def test_trace_shape(self, recorded):
        _, log = recorded
        assert log.records[0].kind == "setup"
        assert [record.index for record in log.records] == list(range(len(log.records)))
        assert log.final_state_digest
        assert log.summary_digest
        arrivals = log.arrival_records()
        assert arrivals, "the small workload admits arrivals"
        for record in arrivals:
            assert len(record.payload["new_peers"]) == 1

    def test_digest_every_thins_digests_not_payloads(self):
        _, log = record_simulation(small_params(), seed=9, digest_every=10)
        for record in log.records:
            if record.index % 10 == 0:
                assert record.state_digest
            else:
                assert not record.state_digest
            assert record.payload is not None


class TestRoundTrip:
    def test_save_load_is_lossless(self, recorded, trace_file):
        _, log = recorded
        loaded = TraceLog.load(trace_file)
        assert loaded.seed == log.seed
        assert loaded.params == log.params
        assert loaded.digest_every == log.digest_every
        assert loaded.records == log.records
        assert loaded.final_state_digest == log.final_state_digest
        assert loaded.summary_digest == log.summary_digest

    def test_header_loads_without_reading_records(self, recorded, trace_file):
        _, log = recorded
        header = load_trace_header(trace_file)
        assert header.seed == log.seed
        assert header.parameters() == small_params()

    def test_truncated_trace_is_rejected(self, tmp_path, recorded, trace_file):
        truncated = tmp_path / "truncated.jsonl"
        lines = trace_file.read_text().splitlines()
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceFormatError):
            TraceLog.load(truncated)

    def test_truncation_reported_distinctly_from_version_errors(
        self, tmp_path, recorded, trace_file
    ):
        """A footer-less file raises TraceTruncatedError ("the recording run
        did not finish"); a newer format version stays a plain
        TraceFormatError — callers can tell the two apart."""
        lines = trace_file.read_text().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceTruncatedError, match="truncated trace"):
            TraceLog.load(truncated)
        header = json.loads(lines[0])
        header["version"] = 99
        newer = tmp_path / "newer.jsonl"
        newer.write_text(json.dumps(header) + "\n" + "\n".join(lines[1:]) + "\n")
        with pytest.raises(TraceFormatError, match="version") as excinfo:
            TraceLog.load(newer)
        assert not isinstance(excinfo.value, TraceTruncatedError)

    def test_save_is_atomic(self, tmp_path, recorded):
        """A save that dies mid-write leaves the previous file intact and no
        temp litter; readers never observe a footer-less trace."""
        _, log = recorded
        target = tmp_path / "atomic.jsonl"
        log.save(target)
        before = target.read_bytes()

        class Unserialisable:
            pass

        broken = TraceLog(
            seed=log.seed,
            params={"poison": Unserialisable()},
            records=list(log.records),
        )
        with pytest.raises(TypeError):
            broken.save(target)
        assert target.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir() if ".tmp-" in p.name] == []


class TestReplay:
    def test_same_scheme_replay_is_bit_identical(self, recorded):
        summary, log = recorded
        replayed, _ = replay_simulation(log)
        assert summary_digest(replayed) == summary_digest(summary)

    def test_replay_with_adversary_is_bit_identical(self):
        params = small_params(
            adversary=AdversarySpec(
                name="whitewash_waves", count=2, start_time=50.0, interval=60.0
            )
        )
        summary, log = record_simulation(params, seed=9)
        replayed, _ = replay_simulation(log)
        assert summary_digest(replayed) == summary_digest(summary)

    def test_rerecorded_replay_trace_matches_original(self, recorded):
        _, log = recorded
        _, new_log = replay_simulation(log, record=True)
        assert new_log is not None
        assert new_log.pinned_streams == ("arrivals", "behaviour")
        assert first_divergence(log, new_log) is None

    def test_cross_scheme_replay_diverges(self, recorded):
        summary, log = recorded
        params = small_params(reputation_scheme="beta")
        replayed, new_log = replay_simulation(log, params=params, record=True)
        assert summary_digest(replayed) != summary_digest(summary)
        divergence = first_divergence(log, new_log)
        assert divergence is not None
        assert divergence.field == "state_digest"


class _PerturbAt:
    """A tracer that corrupts one reputation score at record index ``at``."""

    def __init__(self, at: int) -> None:
        self.at = at
        self._count = 0

    def on_setup(self, sim) -> None:
        self._count = 1  # setup is record 0; the next record is index 1

    def on_event(self, sim, event) -> None:
        self._tick(sim)

    def on_transaction(self, sim, now, outcome) -> None:
        self._tick(sim)

    def on_finalize(self, sim) -> None:
        pass

    def _tick(self, sim) -> None:
        if self._count == self.at:
            sim.store.set_reputation(0, 0.123456, sim.clock.now)
        self._count += 1


class TestBisector:
    PERTURB_AT = 57

    def test_single_event_perturbation_is_pinpointed(self, recorded):
        _, baseline = recorded
        sim = Simulation(small_params(), seed=9)
        # The perturber runs before the recorder at each hook, so the
        # corruption lands inside the digest of exactly one record.
        sim.attach_tracer(_PerturbAt(self.PERTURB_AT))
        recorder = TraceRecorder()
        sim.attach_tracer(recorder)
        sim.run()
        divergence = first_divergence(baseline, recorder.log)
        assert divergence is not None
        assert divergence.index == self.PERTURB_AT
        assert divergence.field == "state_digest"

    def test_identical_traces_have_no_divergence(self, recorded):
        _, log = recorded
        _, again = record_simulation(small_params(), seed=9)
        assert diff_traces(log, again) == []


class TestTraceSpec:
    def test_shorthands(self):
        spec = TraceSpec.parse({"record": "t.jsonl"})
        assert (spec.mode, spec.path) == ("record", "t.jsonl")
        spec = TraceSpec.parse({"replay": "t.jsonl"})
        assert (spec.mode, spec.path) == ("replay", "t.jsonl")

    def test_round_trip(self):
        spec = TraceSpec(
            mode="replay", path="a.jsonl", record_to="b.jsonl", digest_every=5
        )
        assert TraceSpec.parse(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            {"record": "a", "replay": "b"},
            {"record": "a", "mode": "record"},
            {"mode": "record"},
            {"record": "a", "bogus": 1},
            {"mode": "record", "path": "a", "record_to": "b"},
            {"mode": "replay", "path": "a", "digest_every": 0},
        ],
    )
    def test_invalid_specs_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            TraceSpec.parse(bad)


class TestTraceRequests:
    def test_recording_requires_single_repeat(self, tmp_path):
        with pytest.raises(ConfigurationError, match="repeats"):
            RunRequest(
                overrides=SMALL,
                repeats=2,
                trace={"record": str(tmp_path / "t.jsonl")},
            )

    def test_replay_rejects_scenario(self, trace_file):
        with pytest.raises(ConfigurationError, match="scenario"):
            RunRequest(scenario="tiny_test", trace={"replay": str(trace_file)})

    def test_missing_trace_gets_did_you_mean(self, trace_file):
        missing = trace_file.parent / "bsae.jsonl"
        with pytest.raises(UnknownNameError) as excinfo:
            RunRequest(trace={"replay": str(missing)})
        assert str(trace_file) in str(excinfo.value)

    def test_requests_round_trip_through_json(self, trace_file):
        request = RunRequest(scheme="beta", trace={"replay": str(trace_file)})
        restored = RunRequest.from_json(request.to_json())
        assert restored == request
        assert restored.fingerprint() == request.fingerprint()

    def test_trace_facet_changes_the_fingerprint(self, tmp_path):
        plain = RunRequest(overrides=SMALL, seed=9)
        recording = RunRequest(
            overrides=SMALL, seed=9, trace={"record": str(tmp_path / "t.jsonl")}
        )
        assert plain.fingerprint() != recording.fingerprint()

    def test_replay_resolves_parameters_and_seed_from_the_trace(self, trace_file):
        request = RunRequest(trace={"replay": str(trace_file)})
        assert request.resolve() == small_params()
        assert request.seeds() == (9,)


class TestTraceService:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_replay_reproduces_recording_on_every_backend(
        self, backend, recorded, trace_file
    ):
        request = RunRequest(trace={"replay": str(trace_file)})
        jobs = 1 if backend == "serial" else 2
        with SimulationService(jobs=jobs, backend=backend) as service:
            result = service.run(request)
        assert summary_digest(result.summary) == recorded[1].summary_digest

    def test_record_requests_bypass_the_run_cache(self, tmp_path):
        path = tmp_path / "t.jsonl"
        request = RunRequest(overrides=SMALL, seed=3, trace={"record": str(path)})
        with SimulationService(cache=tmp_path / "cache") as service:
            service.run(request)
            path.unlink()
            # A cache-served rerun would never rewrite the trace file.
            service.run(request)
        assert path.exists()

    def test_replay_with_record_to_produces_a_diffable_trace(
        self, tmp_path, recorded, trace_file
    ):
        replay_to = tmp_path / "beta.jsonl"
        request = RunRequest(
            scheme="beta",
            trace={
                "mode": "replay",
                "path": str(trace_file),
                "record_to": str(replay_to),
            },
        )
        with SimulationService() as service:
            service.run(request)
        divergences = diff_traces(recorded[1], TraceLog.load(replay_to), limit=1)
        assert divergences and divergences[0].field == "state_digest"


class TestStateDigest:
    def test_deterministic_across_runs(self):
        digests = []
        for _ in range(2):
            sim = Simulation(small_params(), seed=4)
            sim.run()
            digests.append(engine_state_digest(sim))
        assert digests[0] == digests[1]

    def test_sensitive_to_seed(self):
        digests = []
        for seed in (4, 5):
            sim = Simulation(small_params(), seed=seed)
            sim.run()
            digests.append(engine_state_digest(sim))
        assert digests[0] != digests[1]

    def test_sensitive_to_scheme(self):
        digests = []
        for scheme in ("rocq", "beta"):
            sim = Simulation(small_params(reputation_scheme=scheme), seed=4)
            sim.run()
            digests.append(engine_state_digest(sim))
        assert digests[0] != digests[1]
