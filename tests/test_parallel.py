"""Tests for the parallel execution subsystem (executors, cache, determinism)."""

from __future__ import annotations

import json
import random

import pytest

from repro.config import (
    ADVERSARY_STRATEGIES,
    REPUTATION_SCHEMES,
    AdversarySpec,
    SimulationParameters,
)
from repro.experiments import run_all
from repro.metrics.summary import RunSummary
from repro.parallel import (
    CACHE_VERSION,
    ProcessExecutor,
    RunCache,
    RunSpec,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    execute_spec,
    params_fingerprint,
    run_specs,
)
from repro.workloads.sweep import ParameterSweep, SweepPoint

#: A minuscule configuration so each simulation takes ~50 ms.
TINY = SimulationParameters(
    num_initial_peers=40,
    num_transactions=800,
    arrival_rate=0.02,
    waiting_period=100.0,
    sample_interval=200.0,
    audit_transactions=3,
    seed=11,
)


def tiny_sweep(name: str = "tiny", repeats: int = 1) -> ParameterSweep:
    points = [
        SweepPoint(label=f"rate-{rate:g}", x=rate, overrides={"arrival_rate": rate})
        for rate in (0.01, 0.03)
    ]
    return ParameterSweep(name=name, base=TINY, points=points, repeats=repeats)


def canonical(summary) -> str:
    """NaN-safe comparable form of a RunSummary (JSON keeps NaN == NaN)."""
    document = summary.to_dict()
    document.pop("elapsed_seconds")  # wall clock differs per backend
    return json.dumps(document, sort_keys=True)


def summary_dicts(result) -> list[str]:
    """Comparable forms of a SweepResult's summaries, in point order."""
    return [
        canonical(summary)
        for point in result.points
        for summary in result.summaries_at(point.label)
    ]


class TestCreateExecutor:
    def test_default_is_serial_for_one_job(self):
        assert isinstance(create_executor(None, 1), SerialExecutor)

    def test_default_is_process_for_many_jobs(self):
        executor = create_executor(None, 3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.jobs == 3

    def test_explicit_backends(self):
        assert create_executor("serial", 4).backend == "serial"
        assert create_executor("thread", 4).backend == "thread"
        assert create_executor("process", 4).backend == "process"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            create_executor("gpu", 4)


class TestRunSpec:
    def test_fingerprint_depends_on_params_not_identity(self):
        a = SimulationParameters(seed=1)
        b = SimulationParameters(seed=1)
        c = SimulationParameters(seed=1, arrival_rate=0.5)
        assert params_fingerprint(a) == params_fingerprint(b)
        assert params_fingerprint(a) != params_fingerprint(c)

    def test_cache_key_varies_with_seed_and_version(self):
        assert RunCache.key_for(TINY, 1) != RunCache.key_for(TINY, 2)
        assert f"v{CACHE_VERSION}" in RunCache.key_for(TINY, 1)

    def test_fingerprint_changes_when_the_schema_gains_a_field(self):
        """Guard against silent cache reuse across schema changes.

        The fingerprint is computed over the full serialised parameter set,
        so *adding* a field to ``SimulationParameters`` — even one left at
        its default — must produce a different fingerprint; otherwise runs
        cached before the schema change would be served for configurations
        the old engine could not even express.
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ExtendedParameters(SimulationParameters):
            hypothetical_new_knob: float = 0.0

        base = SimulationParameters(seed=1)
        extended = ExtendedParameters(seed=1)
        assert params_fingerprint(base) != params_fingerprint(extended)
        assert RunCache.key_for(base, 1) != RunCache.key_for(extended, 1)

    def test_reputation_scheme_participates_in_the_fingerprint(self):
        """Runs of different backends must never collide in the cache."""
        rocq = SimulationParameters(seed=1)
        beta = SimulationParameters(seed=1, reputation_scheme="beta")
        assert params_fingerprint(rocq) != params_fingerprint(beta)
        assert RunCache.key_for(rocq, 1) != RunCache.key_for(beta, 1)

    def test_describe_mentions_point_and_repeat(self):
        spec = RunSpec(
            params=TINY, seed=1, sweep="s", label="p", repeat=1, total_repeats=4
        )
        assert "[s]" in spec.describe()
        assert "point=p" in spec.describe()
        assert "repeat=2/4" in spec.describe()


class TestBackendDeterminism:
    def test_thread_and_process_match_serial(self):
        sweep = tiny_sweep(repeats=2)
        serial = sweep.run()
        threaded = sweep.run(executor=ThreadExecutor(2))
        processed = sweep.run(executor=ProcessExecutor(2))
        assert summary_dicts(serial) == summary_dicts(threaded)
        assert summary_dicts(serial) == summary_dicts(processed)

    def test_run_all_jobs_match_serial(self):
        serial = run_all(
            scale=1.0, repeats=1, seed=11, only=["figure1"], base_params=TINY, jobs=1
        )
        parallel = run_all(
            scale=1.0, repeats=1, seed=11, only=["figure1"], base_params=TINY, jobs=4
        )
        assert json.dumps(serial["figure1"].to_dict(), sort_keys=True) == json.dumps(
            parallel["figure1"].to_dict(), sort_keys=True
        )


class TestAdversaryDeterminismAcrossBackends:
    """Randomized property: any (adversary, scheme) cell is backend-invariant.

    Samples random cells of the scheme x attack grid — with randomized
    attack knobs — and asserts the serial, thread and process executors
    produce bit-identical summaries at ``--jobs 4``.  This extends the
    parallel subsystem's determinism guarantee to the adversary subsystem:
    adversary randomness must come only from the seed-derived ``adversary``
    stream, never from process-local state.
    """

    #: Seeded sampler: the test is random but reproducible run to run.
    SAMPLES = 4

    @staticmethod
    def _random_cells() -> list[tuple[str, str, AdversarySpec]]:
        sampler = random.Random(20260729)
        cells = []
        for _ in range(TestAdversaryDeterminismAcrossBackends.SAMPLES):
            attack = sampler.choice(ADVERSARY_STRATEGIES)
            scheme = sampler.choice(REPUTATION_SCHEMES)
            spec = AdversarySpec(
                name=attack,
                count=sampler.randint(1, 4),
                start_time=float(sampler.randint(50, 200)),
                interval=float(sampler.randint(50, 200)),
            )
            cells.append((attack, scheme, spec))
        return cells

    def test_sampled_cells_are_bit_identical_across_executors(self):
        points = [
            SweepPoint(
                label=f"{scheme}|{attack}-{index}",
                x=float(index),
                overrides={"reputation_scheme": scheme, "adversary": spec},
            )
            for index, (attack, scheme, spec) in enumerate(self._random_cells())
        ]
        sweep = ParameterSweep(
            name="adversary-property", base=TINY, points=points, repeats=1
        )
        serial = sweep.run()
        threaded = sweep.run(executor=ThreadExecutor(4))
        processed = sweep.run(executor=ProcessExecutor(4))
        assert summary_dicts(serial) == summary_dicts(threaded)
        assert summary_dicts(serial) == summary_dicts(processed)


class TestRunCache:
    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = tiny_sweep().build_specs()[0]
        summary = execute_spec(spec)
        cache.put(spec.params, spec.seed, summary)
        restored = cache.get(spec.params, spec.seed)
        assert restored is not None
        assert canonical(restored) == canonical(summary)

    def test_get_counts_hits_and_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get(TINY, seed=5) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_corrupt_document_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        path = cache.store.path_for(cache.key_for(TINY, 5))
        path.write_text('{"params": {}}', encoding="utf-8")
        assert cache.get(TINY, seed=5) is None

    def test_sweep_second_run_is_all_hits(self, tmp_path):
        sweep = tiny_sweep(repeats=2)
        first_cache = RunCache(tmp_path)
        first = sweep.run(cache=first_cache)
        assert first_cache.hits == 0
        assert first_cache.misses == len(sweep.build_specs())
        second_cache = RunCache(tmp_path)
        second = sweep.run(cache=second_cache)
        assert second_cache.misses == 0
        assert second_cache.hits == len(sweep.build_specs())
        assert summary_dicts(first) == summary_dicts(second)

    def test_run_specs_mixes_cached_and_fresh(self, tmp_path):
        specs = tiny_sweep(repeats=2).build_specs()
        cache = RunCache(tmp_path)
        warm = run_specs(specs[:2], cache=cache)
        full = run_specs(specs, cache=cache)
        assert [canonical(s) for s in full[:2]] == [canonical(s) for s in warm]
        assert cache.hits == 2


class TestRunAllOrderingAndSharing:
    def test_figure5_reuses_figure4_when_requested_after(self):
        results = run_all(
            scale=1.0,
            repeats=1,
            seed=11,
            only=["figure5", "figure4"],
            base_params=TINY,
        )
        assert list(results) == ["figure5", "figure4"]
        assert any("reused" in note for note in results["figure5"].notes)

    def test_figure5_hits_figure4_cache_across_invocations(self, tmp_path):
        run_all(
            scale=1.0,
            repeats=1,
            seed=11,
            only=["figure4"],
            base_params=TINY,
            cache=RunCache(tmp_path),
        )
        cache = RunCache(tmp_path)
        run_all(
            scale=1.0,
            repeats=1,
            seed=11,
            only=["figure5"],
            base_params=TINY,
            cache=cache,
        )
        assert cache.misses == 0
        assert cache.hits > 0

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(only=["figure99"], base_params=TINY)


class TestRunSummarySerialisation:
    def test_from_dict_roundtrip(self):
        spec = tiny_sweep().build_specs()[0]
        summary = execute_spec(spec)
        restored = RunSummary.from_dict(summary.to_dict())
        assert canonical(restored) == canonical(summary)

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(KeyError):
            RunSummary.from_dict({"seed": 1})
