"""Tests for peer behaviours, the Peer entity and the population registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnknownPeerError
from repro.peers.behavior import (
    BehaviorKind,
    ColluderBehavior,
    CooperativeBehavior,
    FreeriderBehavior,
    MaliciousProviderBehavior,
    WhitewasherBehavior,
    make_behavior,
)
from repro.peers.peer import Peer, PeerStatus
from repro.peers.population import Population


class TestBehaviors:
    def test_cooperative_is_cooperative(self):
        assert CooperativeBehavior().is_cooperative
        assert CooperativeBehavior().honest_reporting

    @pytest.mark.parametrize(
        "behavior",
        [FreeriderBehavior(), MaliciousProviderBehavior(), WhitewasherBehavior()],
    )
    def test_uncooperative_kinds_are_not_cooperative(self, behavior):
        assert not behavior.is_cooperative

    def test_service_quality_controls_outcomes(self, rng):
        good = CooperativeBehavior(service_quality=1.0)
        bad = FreeriderBehavior(service_quality=0.0)
        assert all(good.provides_good_service(rng) for _ in range(20))
        assert not any(bad.provides_good_service(rng) for _ in range(20))

    def test_statistical_service_quality(self, rng):
        behavior = CooperativeBehavior(service_quality=0.9)
        outcomes = [behavior.provides_good_service(rng) for _ in range(2000)]
        assert 0.85 < np.mean(outcomes) < 0.95

    def test_honest_reporting(self):
        behavior = CooperativeBehavior()
        assert behavior.report_value(True) == 1.0
        assert behavior.report_value(False) == 0.0

    def test_uncooperative_always_reports_zero(self):
        behavior = FreeriderBehavior()
        assert behavior.report_value(True) == 0.0
        assert behavior.report_value(False) == 0.0

    def test_colluder_inflates_ring_members(self):
        behavior = ColluderBehavior(ring={7, 8})
        assert behavior.report_value_about(7, satisfied=False) == 1.0
        assert behavior.report_value_about(9, satisfied=False) == 0.0
        assert behavior.report_value_about(9, satisfied=True) == 1.0

    def test_malicious_provider_never_serves_well(self, rng):
        behavior = MaliciousProviderBehavior()
        assert not any(behavior.provides_good_service(rng) for _ in range(10))

    def test_factory_builds_each_kind(self):
        for kind in BehaviorKind:
            behavior = make_behavior(kind)
            assert behavior.kind == kind

    def test_factory_accepts_strings_and_quality_overrides(self):
        behavior = make_behavior("cooperative", cooperative_quality=0.7)
        assert behavior.service_quality == pytest.approx(0.7)
        behavior = make_behavior("freerider", uncooperative_quality=0.2)
        assert behavior.service_quality == pytest.approx(0.2)

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_behavior("saboteur")

    def test_clone_is_independent(self):
        original = CooperativeBehavior()
        copy = original.clone()
        copy.service_quality = 0.1
        assert original.service_quality != copy.service_quality


class TestPeer:
    def test_new_peer_starts_waiting(self):
        peer = Peer(peer_id=1, behavior=CooperativeBehavior())
        assert peer.status == PeerStatus.WAITING
        assert peer.is_waiting
        assert not peer.is_active

    def test_admit_sets_fields(self):
        peer = Peer(peer_id=1, behavior=CooperativeBehavior())
        peer.admit(time=5.0, introduced_by=9)
        assert peer.is_active
        assert peer.admitted_at == pytest.approx(5.0)
        assert peer.introduced_by == 9

    def test_reject_and_depart_are_terminal(self):
        rejected = Peer(peer_id=1, behavior=CooperativeBehavior())
        rejected.reject()
        assert rejected.status == PeerStatus.REJECTED
        departed = Peer(peer_id=2, behavior=CooperativeBehavior())
        departed.admit(0.0)
        departed.depart()
        assert departed.status == PeerStatus.DEPARTED

    def test_transaction_counters(self):
        peer = Peer(peer_id=1, behavior=CooperativeBehavior())
        peer.note_transaction_served(satisfied=True)
        peer.note_transaction_served(satisfied=False)
        assert peer.transactions_completed == 2
        assert peer.requests_served == 1

    def test_cannot_introduce_without_policy_or_activation(self):
        peer = Peer(peer_id=1, behavior=CooperativeBehavior())
        assert not peer.can_introduce
        peer.admit(0.0)
        assert not peer.can_introduce  # still no policy

    def test_opinion_book_belongs_to_peer(self):
        peer = Peer(peer_id=7, behavior=CooperativeBehavior())
        assert peer.opinions.owner == 7


class TestPopulation:
    def test_create_peer_registers_waiting(self):
        population = Population()
        peer = population.create_peer(CooperativeBehavior())
        assert peer.peer_id in population
        assert peer in population.waiting_peers()
        assert population.count_active() == 0

    def test_admit_moves_peer_to_active(self):
        population = Population()
        peer = population.create_peer(CooperativeBehavior())
        population.admit(peer.peer_id, time=1.0)
        assert population.count_active() == 1
        assert peer.peer_id in population.active_ids

    def test_admit_is_idempotent(self):
        population = Population()
        peer = population.create_peer(CooperativeBehavior())
        population.admit(peer.peer_id, time=1.0)
        population.admit(peer.peer_id, time=2.0)
        assert population.active_ids.count(peer.peer_id) == 1

    def test_reject_removes_from_waiting(self):
        population = Population()
        peer = population.create_peer(FreeriderBehavior())
        population.reject(peer.peer_id)
        assert peer.status == PeerStatus.REJECTED
        assert peer not in population.waiting_peers()

    def test_depart_removes_from_active(self, population_with_members):
        victim = population_with_members.active_ids[0]
        population_with_members.depart(victim)
        assert victim not in population_with_members.active_ids
        assert population_with_members.get(victim).status == PeerStatus.DEPARTED

    def test_counts_by_cooperativeness(self, population_with_members):
        assert population_with_members.count_active() == 6
        assert population_with_members.count_active(cooperative=True) == 5
        assert population_with_members.count_active(cooperative=False) == 1
        assert len(population_with_members.active_cooperative()) == 5
        assert len(population_with_members.active_uncooperative()) == 1

    def test_founders_listing(self, population_with_members):
        assert len(population_with_members.founders()) == 5

    def test_unknown_peer_raises(self):
        with pytest.raises(UnknownPeerError):
            Population().get(404)

    def test_iteration_and_len(self, population_with_members):
        assert len(population_with_members) == 6
        assert len(list(population_with_members)) == 6

    def test_active_list_swap_removal_keeps_integrity(self):
        population = Population()
        peers = [population.create_peer(CooperativeBehavior()) for _ in range(10)]
        for peer in peers:
            population.admit(peer.peer_id, time=0.0)
        # Remove every other peer and check the index stays consistent.
        for peer in peers[::2]:
            population.depart(peer.peer_id)
        remaining = {p.peer_id for p in peers[1::2]}
        assert set(population.active_ids) == remaining
        for peer_id in remaining:
            assert population.get(peer_id).is_active
