"""Hot-path round 2 regression tests.

Three safety nets around the profile-guided optimisation pass:

* **Queue equivalence** — the bucketed :class:`CalendarEventQueue` must
  produce exactly the heapq :class:`EventQueue`'s pop order for any
  schedule/pop interleaving, including raising on past-time scheduling at
  the same points.
* **Golden digests** — every optimised layer (incremental EigenTrust,
  batched/inlined ROCQ aggregation, slotted events + calendar queue) must
  reproduce the summary digests recorded on the pre-optimisation engine.
* **Trace replay** — a trace recorded before the optimisation round must
  replay bit-identically on the optimised engine.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.metrics.summary import summary_digest
from repro.reputation.eigentrust import EigenTrust
from repro.sim.engine import Simulation
from repro.sim.event_queue import CalendarEventQueue, EventQueue
from repro.sim.events import EventKind
from repro.trace import TraceLog, replay_simulation
from repro.workloads.scenarios import paper_default

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Digest of ``preopt_tiny.jsonl``'s recorded run, captured on the
#: pre-optimisation engine.
PREOPT_TRACE_DIGEST = (
    "5a0b9ba8236e8ce849ce76e77043fa582b783b0a057f09c1f9287f5a0350ad9b"
)


def _golden_digests() -> dict[str, str]:
    return json.loads((DATA_DIR / "preopt_digests.json").read_text(encoding="utf-8"))


def _params_for(name):
    if name == "figure1_growth_1500_rocq":
        return (
            paper_default(seed=1).scaled(1500 / 500_000).with_overrides(
                arrival_rate=0.01
            )
        )
    scheme = name.replace("growth_stress_1500_", "")
    return (
        paper_default(seed=1)
        .scaled(1500 / 500_000)
        .with_overrides(arrival_rate=0.2, reputation_scheme=scheme)
    )


# --------------------------------------------------------------------- #
# Calendar queue == heapq reference                                       #
# --------------------------------------------------------------------- #
class TestCalendarQueueEquivalence:
    def _random_driver(self, seed: int, steps: int = 400):
        """Drive both queues through one randomized schedule/pop script.

        Yields after each step so assertions can interleave; operations are
        drawn so that both in-order scheduling, duplicate times, same-time
        ties (ordered by insertion sequence) and past-time errors occur.
        """
        rng = np.random.default_rng(seed)
        reference = EventQueue()
        calendar = CalendarEventQueue(
            bucket_width=float(rng.choice([0.25, 1.0, 3.0]))
        )
        kinds = list(EventKind)
        clock = 0.0
        for _ in range(steps):
            op = rng.random()
            if op < 0.55:
                # Mostly near-future times; occasionally far ahead, and
                # occasionally exactly "now" (ties with popped history).
                time = clock + float(rng.choice([0.0, rng.random() * 4, 40.0]))
                kind = kinds[int(rng.integers(len(kinds)))]
                assert (
                    reference.schedule(time, kind).time
                    == calendar.schedule(time, kind).time
                )
            elif op < 0.8 and reference:
                popped_ref = reference.pop()
                popped_cal = calendar.pop()
                assert (popped_ref.time, popped_ref.sequence) == (
                    popped_cal.time,
                    popped_cal.sequence,
                )
                clock = popped_ref.time
            else:
                horizon = clock + float(rng.random() * 3)
                drained_ref = [(e.time, e.sequence) for e in reference.pop_due(horizon)]
                drained_cal = [(e.time, e.sequence) for e in calendar.pop_due(horizon)]
                assert drained_ref == drained_cal
                if drained_ref:
                    clock = drained_ref[-1][0]
            assert len(reference) == len(calendar)
            assert reference.next_time() == calendar.next_time()
        return reference, calendar

    @pytest.mark.parametrize("seed", range(8))
    def test_identical_pop_order_over_random_schedules(self, seed):
        reference, calendar = self._random_driver(seed)
        remaining_ref = [(e.time, e.sequence) for e in reference.pop_due(float("inf"))]
        remaining_cal = [(e.time, e.sequence) for e in calendar.pop_due(float("inf"))]
        assert remaining_ref == remaining_cal
        assert not reference and not calendar

    @pytest.mark.parametrize("queue_cls", [EventQueue, CalendarEventQueue])
    def test_past_time_scheduling_raises(self, queue_cls):
        queue = queue_cls()
        queue.schedule(5.0, EventKind.SAMPLE)
        assert queue.pop().time == 5.0
        with pytest.raises(SimulationError):
            queue.schedule(4.999, EventKind.SAMPLE)
        # Exactly the last popped time is legal (the engine schedules
        # follow-ups at the current instant).
        queue.schedule(5.0, EventKind.SAMPLE)

    @pytest.mark.parametrize("queue_cls", [EventQueue, CalendarEventQueue])
    def test_pop_empty_raises(self, queue_cls):
        with pytest.raises(SimulationError):
            queue_cls().pop()

    def test_same_time_events_pop_in_insertion_order(self):
        for queue in (EventQueue(), CalendarEventQueue()):
            for _ in range(5):
                queue.schedule(1.0, EventKind.SAMPLE)
            sequences = [event.sequence for event in queue.pop_due(1.0)]
            assert sequences == sorted(sequences)

    def test_calendar_spanning_many_buckets(self):
        queue = CalendarEventQueue(bucket_width=1.0)
        times = [977.5, 3.25, 0.0, 512.0, 3.75, 512.0]
        for time in times:
            queue.schedule(time, EventKind.SAMPLE)
        popped = [event.time for event in queue.pop_due(float("inf"))]
        assert popped == sorted(times)


# --------------------------------------------------------------------- #
# Golden digests per optimisation layer                                   #
# --------------------------------------------------------------------- #
class TestGoldenDigests:
    """The optimised engine must be bit-identical to the pre-opt engine.

    Each scheme exercises a different optimised layer: ``eigentrust`` the
    incremental fixpoint, ``rocq`` the inlined manager aggregation and
    opinion pooling, and every run the slotted events + calendar queue +
    slimmed dispatch loop.
    """

    @pytest.mark.parametrize(
        "name", sorted(_golden_digests())
    )
    def test_reproduces_preopt_digest(self, name):
        params = _params_for(name)
        digest = summary_digest(Simulation(params).run())
        assert digest == _golden_digests()[name], (
            f"{name}: optimised engine diverged from the pre-optimisation "
            f"golden digest"
        )


# --------------------------------------------------------------------- #
# Incremental EigenTrust == from-scratch                                  #
# --------------------------------------------------------------------- #
class TestIncrementalEigenTrust:
    def _random_feed(self, system: EigenTrust, seed: int, steps: int) -> None:
        rng = np.random.default_rng(seed)
        for step in range(steps):
            rater, subject = rng.integers(0, 30, size=2)
            if rater != subject:
                system.record_interaction(
                    int(rater), int(subject), bool(rng.random() < 0.7)
                )
            if step % 9 == 0:
                system.score_table()

    def test_incremental_matrix_equals_from_scratch(self):
        system = EigenTrust(pre_trusted={0, 1}, full_recompute_every=10_000)
        self._random_feed(system, seed=11, steps=500)
        system.score_table()
        peers = sorted(system.log.peers)
        assert np.array_equal(system._matrix, system._local_trust_matrix(peers))
        assert system.incremental_refreshes > 0

    def test_incremental_scores_equal_always_rebuild_replay(self):
        """Same feed, same refresh schedule: dirty-row updates vs rebuilds."""
        incremental = EigenTrust(full_recompute_every=10_000)
        rebuild = EigenTrust(full_recompute_every=1)
        self._random_feed(incremental, seed=23, steps=400)
        self._random_feed(rebuild, seed=23, steps=400)
        assert incremental.score_table() == rebuild.score_table()
        assert incremental.incremental_refreshes > 0
        assert rebuild.full_rebuilds > incremental.full_rebuilds

    def test_safety_valve_forces_periodic_rebuild(self):
        system = EigenTrust(full_recompute_every=3)
        system.record_interaction(1, 2, True)
        system.score_table()  # first build
        rebuilds_after_first = system.full_rebuilds
        for _ in range(7):
            system.record_interaction(1, 2, True)
            system.score_table()
        assert system.full_rebuilds > rebuilds_after_first

    def test_peer_set_change_forces_rebuild(self):
        system = EigenTrust(full_recompute_every=10_000)
        system.record_interaction(1, 2, True)
        system.score_table()
        before = system.full_rebuilds
        system.record_interaction(3, 1, False)  # new peer joins the log
        system.score_table()
        assert system.full_rebuilds == before + 1

    def test_rejects_nonpositive_valve(self):
        with pytest.raises(ValueError):
            EigenTrust(full_recompute_every=0)


# --------------------------------------------------------------------- #
# Pre-optimisation trace replays bit-identically                          #
# --------------------------------------------------------------------- #
class TestPreoptTraceReplay:
    def test_preopt_trace_replays_bit_identically(self):
        log = TraceLog.load(DATA_DIR / "preopt_tiny.jsonl")
        replayed, _ = replay_simulation(log)
        assert summary_digest(replayed) == PREOPT_TRACE_DIGEST
