"""Attack-scenario tests: collusion and whitewashing against the mechanism.

These exercise the behaviours the paper's discussion worries about — a
colluding ring inflating each other's reputations, and a freerider
discarding its identity to re-enter — inside the full simulation engine.
Since the adversary subsystem landed, the attacks are configured through
``SimulationParameters.adversary`` and the strategy registry in
:mod:`repro.adversary` instead of hand-rolled ``add_member`` choreography;
the first tests prove the registry strategies reproduce the historical
hand-rolled setups **bit for bit**, and the rest assert the same
scheme-by-scheme outcomes the paper's taxonomy predicts.
"""

from __future__ import annotations

import json

import pytest

from repro.config import AdversarySpec, SimulationParameters
from repro.core.policies import NaivePolicy
from repro.peers.behavior import (
    ColluderBehavior,
    FreeriderBehavior,
    SlandererBehavior,
)
from repro.sim.engine import Simulation
from repro.workloads.registry import get_scenario

PARAMS = SimulationParameters(
    num_initial_peers=60,
    num_transactions=4_000,
    arrival_rate=0.0,
    sample_interval=1_000.0,
    audit_transactions=10,
    seed=31,
)

#: A collusion spec matching the historical hand-rolled ring exactly: one
#: freeriding accomplice at 0.5, three always-praising colluders at 1.0, and
#: no service oscillation (the hand-rolled ring never oscillated).
STEADY_RING = AdversarySpec(
    name="collusion_ring",
    count=4,
    start_time=1_000.0,
    interval=1_000.0,
    options={"oscillate": 0.0},
)


def canonical(summary) -> str:
    """Comparable form of a RunSummary: parameters and wall clock excluded.

    ``params`` legitimately differ between the two arms (one carries the
    adversary spec), and ``elapsed_seconds`` is wall-clock time; every
    simulated quantity must match exactly.  Ground-truth detection labels
    (``adversary_identities``/``detection``) exist only on the registry
    arm for the same reason ``params`` differ — labelling is gated on the
    spec — and they are derived *from* the simulated state rather than
    part of it, so they are excluded too (``summary_digest`` strips them
    for the same reason).
    """
    document = summary.to_dict()
    document.pop("elapsed_seconds")
    document.pop("params")
    document.pop("adversary_identities", None)
    document.pop("detection", None)
    return json.dumps(document, sort_keys=True)


class TestRegistryReproducesHandRolledAttacks:
    """The subsystem must replay the historical inline setups bit for bit."""

    def test_collusion_ring_matches_hand_rolled_setup(self):
        hand_rolled = Simulation(PARAMS, seed=100)
        hand_rolled.setup()
        accomplice = hand_rolled.add_member(
            FreeriderBehavior(), initial_reputation=0.5
        )
        ring_ids = {accomplice.peer_id}
        colluders = []
        for _ in range(3):
            colluder = hand_rolled.add_member(
                ColluderBehavior(ring=set(ring_ids)),
                introducer_policy=NaivePolicy(),
                initial_reputation=1.0,
            )
            ring_ids.add(colluder.peer_id)
            colluders.append(colluder)
        for colluder in colluders:
            colluder.behavior.ring = frozenset(ring_ids)

        registry = Simulation(
            PARAMS.with_overrides(adversary=STEADY_RING), seed=100
        )
        assert canonical(hand_rolled.run()) == canonical(registry.run())

    def test_slander_matches_hand_rolled_setup(self):
        hand_rolled = Simulation(PARAMS, seed=7)
        hand_rolled.setup()
        for _ in range(3):
            hand_rolled.add_member(
                SlandererBehavior(service_quality=0.95), initial_reputation=1.0
            )

        spec = AdversarySpec(
            name="slander", count=3, start_time=1_000.0, interval=1_000.0
        )
        registry = Simulation(PARAMS.with_overrides(adversary=spec), seed=7)
        assert canonical(hand_rolled.run()) == canonical(registry.run())


def _collusion_sim(scheme_params: SimulationParameters, seed: int, ring_size: int):
    """A run with a collusion ring of ``ring_size`` (1 = lone accomplice)."""
    spec = AdversarySpec(
        name="collusion_ring",
        count=ring_size,
        start_time=1_000.0,
        interval=1_000.0,
        options={"oscillate": 0.0},
    )
    simulation = Simulation(scheme_params.with_overrides(adversary=spec), seed=seed)
    simulation.setup()
    simulation.step(4_000)
    return simulation


class TestCollusionRing:
    def test_colluders_inflate_ring_member_reputation(self):
        """A colluder's false praise props up its freeriding accomplice."""
        # Control: a lone freerider (a ring of one) in an honest community.
        control = _collusion_sim(PARAMS, seed=100, ring_size=1)
        control_reputation = control.store.global_reputation(
            control.adversary.accomplice_id
        )

        # Attack: the same freerider backed by three colluders.
        attacked = _collusion_sim(PARAMS, seed=100, ring_size=4)
        attacked_reputation = attacked.store.global_reputation(
            attacked.adversary.accomplice_id
        )

        # Collusion measurably helps the accomplice...
        assert attacked_reputation > control_reputation
        # ...but honest feedback from the rest of the community still keeps it
        # well below the standing of a cooperative peer.
        assert attacked_reputation < 0.8

    def test_colluders_keep_their_own_reputation_high(self):
        simulation = _collusion_sim(PARAMS, seed=7, ring_size=2)
        (colluder_id,) = simulation.adversary.colluder_ids
        # Colluders provide genuinely good service, so their reputation holds.
        assert simulation.store.global_reputation(colluder_id) > 0.7

    def test_oscillating_ring_degrades_service_during_milking_phases(self):
        """With ``oscillate`` on, colluders alternate build-up and milking."""
        spec = AdversarySpec(
            name="collusion_ring", count=3, start_time=500.0, interval=500.0
        )
        simulation = Simulation(PARAMS.with_overrides(adversary=spec), seed=9)
        simulation.setup()
        simulation.step(600)  # past the first toggle: milking phase
        qualities = {
            simulation.population.get(pid).behavior.service_quality
            for pid in simulation.adversary.colluder_ids
        }
        assert qualities == {0.05}
        simulation.step(500)  # past the second toggle: back to model citizens
        qualities = {
            simulation.population.get(pid).behavior.service_quality
            for pid in simulation.adversary.colluder_ids
        }
        assert qualities == {0.95}


def _whitewash_sim(
    base: SimulationParameters, seed: int, threshold: float = 0.3
) -> Simulation:
    spec = AdversarySpec(
        name="whitewash_waves",
        count=1,
        start_time=2_500.0,
        interval=500.0,
        options={"burn_threshold": threshold},
    )
    simulation = Simulation(base.with_overrides(adversary=spec), seed=seed)
    simulation.setup()
    simulation.step(4_000)
    return simulation


class TestWhitewashing:
    def test_whitewashing_does_not_restore_standing_under_lending(self):
        """Re-entering with a fresh identity means starting from zero again."""
        simulation = _whitewash_sim(PARAMS, seed=11)
        rebirths = simulation.adversary.rebirths
        assert rebirths, "the whitewasher never burned its identity"
        first = rebirths[0]
        assert first.burned_reputation < 0.3  # freeriding destroyed the identity
        # The fresh identity re-entered through the admission pipeline as a
        # complete stranger: zero reputation, and not a member until (unless)
        # someone vouches for it.
        assert first.fresh_reputation == pytest.approx(0.0)
        assert first.identities_used == 2
        fresh_peer = simulation.population.get(first.fresh)
        assert fresh_peer.arrived_at == first.time

    def test_departed_whitewasher_leaves_overlay_and_topology(self):
        simulation = _whitewash_sim(PARAMS, seed=13)
        rebirths = simulation.adversary.rebirths
        assert rebirths
        burned_id = rebirths[0].burned
        assert burned_id not in simulation.ring
        assert burned_id not in simulation.topology


def _attack_params(scheme: str, seed: int = 31) -> SimulationParameters:
    """The attack operating point on a registry scenario, backend swapped."""
    return get_scenario("tiny_test", seed=seed).with_overrides(
        reputation_scheme=scheme,
        arrival_rate=0.0,
        num_transactions=4_000,
        num_initial_peers=60,
        sample_interval=1_000.0,
        audit_transactions=10,
    )


class TestAttacksUnderBaselineBackends:
    """Whitewashers and colluders against the non-ROCQ backends."""

    def test_whitewashing_restores_standing_under_complaints_based_trust(self):
        """Complaints-based trust fully trusts strangers — whitewashing wins.

        This is the §1 failure mode the lending mechanism exists to close:
        the burned identity is worthless, but a fresh one starts at 1.0.
        """
        simulation = _whitewash_sim(
            _attack_params("complaints"), seed=11, threshold=0.2
        )
        rebirths = simulation.adversary.rebirths
        assert rebirths
        first = rebirths[0]
        assert first.burned_reputation < 0.2  # complaints piled up
        assert first.fresh_reputation == pytest.approx(1.0)
        assert first.fresh_reputation > first.burned_reputation

    def test_whitewashing_is_pointless_under_positive_only_reputation(self):
        """Positive-only freezes strangers at the bottom — nothing to gain.

        Positive-only scores never decay, so the pinned 0.5 standing is never
        "burned" in the rocq sense; the attacker discards the identity anyway
        (threshold above its standing) hoping a fresh start beats a mediocre
        one — and gets strictly less.
        """
        simulation = _whitewash_sim(
            _attack_params("positive_only"), seed=11, threshold=0.6
        )
        rebirths = simulation.adversary.rebirths
        assert rebirths
        first = rebirths[0]
        assert first.fresh_reputation == pytest.approx(0.0)
        # A fresh identity is never better than the burned one.
        assert first.fresh_reputation <= first.burned_reputation

    def test_colluders_inflate_an_accomplice_under_beta_reputation(self):
        control = _collusion_sim(_attack_params("beta"), seed=100, ring_size=1)
        attacked = _collusion_sim(_attack_params("beta"), seed=100, ring_size=4)
        control_rep = control.store.global_reputation(
            control.adversary.accomplice_id
        )
        attacked_rep = attacked.store.global_reputation(
            attacked.adversary.accomplice_id
        )
        # False praise counts as positive evidence in the Beta posterior...
        assert attacked_rep > control_rep
        # ...but the honest majority's negatives keep the freerider low.
        assert attacked_rep < 0.5
