"""Attack-scenario tests: collusion and whitewashing against the mechanism.

These exercise the behaviours the paper's discussion worries about — a
colluding ring inflating each other's reputations, and a freerider discarding
its identity to re-enter — inside the full simulation engine, using the
``Simulation.add_member`` scenario hook.

The second half replays the same attacks with the baseline reputation
backends swapped in through the scenario registry and
``reputation_scheme``, checking each scheme fails (or resists) exactly the
way the paper's taxonomy predicts.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationParameters
from repro.core.policies import NaivePolicy
from repro.peers.behavior import (
    ColluderBehavior,
    FreeriderBehavior,
    WhitewasherBehavior,
)
from repro.sim.engine import Simulation
from repro.workloads.registry import get_scenario

PARAMS = SimulationParameters(
    num_initial_peers=60,
    num_transactions=4_000,
    arrival_rate=0.0,
    sample_interval=1_000.0,
    audit_transactions=10,
    seed=31,
)


class TestCollusionRing:
    def test_colluders_inflate_ring_member_reputation(self):
        """A colluder's false praise props up its freeriding accomplice."""
        # Control: a lone freerider in an honest community.
        control = Simulation(PARAMS, seed=100)
        control.setup()
        lone_freerider = control.add_member(FreeriderBehavior(), initial_reputation=0.5)
        control.step(4_000)
        control_reputation = control.store.global_reputation(lone_freerider.peer_id)

        # Attack: the freeriding accomplice is backed by three colluders that
        # always report full satisfaction about ring members.
        attacked = Simulation(PARAMS, seed=100)
        attacked.setup()
        accomplice = attacked.add_member(FreeriderBehavior(), initial_reputation=0.5)
        ring_ids = {accomplice.peer_id}
        colluders = []
        for _ in range(3):
            colluder = attacked.add_member(
                ColluderBehavior(ring=set(ring_ids)), introducer_policy=NaivePolicy(),
                initial_reputation=1.0,
            )
            ring_ids.add(colluder.peer_id)
            colluders.append(colluder)
        for colluder in colluders:
            colluder.behavior.ring = frozenset(ring_ids)
        attacked.step(4_000)
        attacked_reputation = attacked.store.global_reputation(accomplice.peer_id)

        # Collusion measurably helps the accomplice...
        assert attacked_reputation > control_reputation
        # ...but honest feedback from the rest of the community still keeps it
        # well below the standing of a cooperative peer.
        assert attacked_reputation < 0.8

    def test_colluders_keep_their_own_reputation_high(self):
        simulation = Simulation(PARAMS, seed=7)
        simulation.setup()
        colluder = simulation.add_member(
            ColluderBehavior(ring=frozenset()), initial_reputation=1.0
        )
        simulation.step(2_000)
        # Colluders provide genuinely good service, so their reputation holds.
        assert simulation.store.global_reputation(colluder.peer_id) > 0.7


class TestWhitewashing:
    def test_whitewashing_does_not_restore_standing_under_lending(self):
        """Re-entering with a fresh identity means starting from zero again."""
        simulation = Simulation(PARAMS, seed=11)
        simulation.setup()
        whitewasher = simulation.add_member(
            WhitewasherBehavior(), initial_reputation=0.5
        )
        simulation.step(2_500)
        burned_reputation = simulation.store.global_reputation(whitewasher.peer_id)
        assert burned_reputation < 0.3  # freeriding destroyed the identity

        # The peer discards the identity and returns as a stranger.  Under the
        # lending bootstrap the new identity has zero reputation and is not a
        # member until someone vouches for it.
        simulation.schedule_departure(whitewasher.peer_id, time=simulation.clock.now + 1)
        simulation.step(10)
        fresh = simulation.population.create_peer(
            behavior=WhitewasherBehavior(), arrived_at=simulation.clock.now
        )
        assert simulation.store.global_reputation(fresh.peer_id) == pytest.approx(0.0)
        assert fresh.peer_id not in simulation.population.active_ids

    def test_departed_whitewasher_leaves_overlay_and_topology(self):
        simulation = Simulation(PARAMS, seed=13)
        simulation.setup()
        whitewasher = simulation.add_member(WhitewasherBehavior(), initial_reputation=0.5)
        simulation.schedule_departure(whitewasher.peer_id, time=simulation.clock.now + 1)
        simulation.step(5)
        assert whitewasher.peer_id not in simulation.ring
        assert whitewasher.peer_id not in simulation.topology


def _attack_params(scheme: str, seed: int = 31) -> SimulationParameters:
    """The attack operating point on a registry scenario, backend swapped."""
    return get_scenario("tiny_test", seed=seed).with_overrides(
        reputation_scheme=scheme,
        arrival_rate=0.0,
        num_transactions=4_000,
        num_initial_peers=60,
        sample_interval=1_000.0,
        audit_transactions=10,
    )


class TestAttacksUnderBaselineBackends:
    """Whitewashers and colluders against the non-ROCQ backends."""

    def test_whitewashing_restores_standing_under_complaints_based_trust(self):
        """Complaints-based trust fully trusts strangers — whitewashing wins.

        This is the §1 failure mode the lending mechanism exists to close:
        the burned identity is worthless, but a fresh one starts at 1.0.
        """
        simulation = Simulation(_attack_params("complaints"), seed=11)
        simulation.setup()
        whitewasher = simulation.add_member(
            WhitewasherBehavior(), initial_reputation=0.5
        )
        simulation.step(2_500)
        burned = simulation.store.global_reputation(whitewasher.peer_id)
        assert burned < 0.2  # complaints piled up against the identity
        fresh = simulation.population.create_peer(
            behavior=WhitewasherBehavior(), arrived_at=simulation.clock.now
        )
        fresh_reputation = simulation.store.global_reputation(fresh.peer_id)
        assert fresh_reputation == pytest.approx(1.0)
        assert fresh_reputation > burned

    def test_whitewashing_is_pointless_under_positive_only_reputation(self):
        """Positive-only freezes strangers at the bottom — nothing to gain."""
        simulation = Simulation(_attack_params("positive_only"), seed=11)
        simulation.setup()
        whitewasher = simulation.add_member(
            WhitewasherBehavior(), initial_reputation=0.5
        )
        simulation.step(2_500)
        burned = simulation.store.global_reputation(whitewasher.peer_id)
        fresh = simulation.population.create_peer(
            behavior=WhitewasherBehavior(), arrived_at=simulation.clock.now
        )
        fresh_reputation = simulation.store.global_reputation(fresh.peer_id)
        assert fresh_reputation == pytest.approx(0.0)
        assert fresh_reputation <= burned  # a fresh identity is never better

    @staticmethod
    def _beta_accomplice_reputation(with_ring: bool) -> float:
        simulation = Simulation(_attack_params("beta"), seed=100)
        simulation.setup()
        accomplice = simulation.add_member(
            FreeriderBehavior(), initial_reputation=0.5
        )
        if with_ring:
            ring_ids = {accomplice.peer_id}
            colluders = []
            for _ in range(3):
                colluder = simulation.add_member(
                    ColluderBehavior(ring=set(ring_ids)),
                    introducer_policy=NaivePolicy(),
                    initial_reputation=1.0,
                )
                ring_ids.add(colluder.peer_id)
                colluders.append(colluder)
            for colluder in colluders:
                colluder.behavior.ring = frozenset(ring_ids)
        simulation.step(4_000)
        return simulation.store.global_reputation(accomplice.peer_id)

    def test_colluders_inflate_an_accomplice_under_beta_reputation(self):
        control = self._beta_accomplice_reputation(with_ring=False)
        attacked = self._beta_accomplice_reputation(with_ring=True)
        # False praise counts as positive evidence in the Beta posterior...
        assert attacked > control
        # ...but the honest majority's negatives keep the freerider low.
        assert attacked < 0.5
