"""Tests for the admission controller and the bootstrap strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BootstrapMode, SimulationParameters
from repro.core.admission import AdmissionController
from repro.core.bootstrap import (
    FixedCreditBootstrap,
    LendingBootstrap,
    OpenBootstrap,
    make_bootstrap_strategy,
)
from repro.core.introduction import RefusalReason
from repro.core.lending import LendingManager
from repro.core.policies import NaivePolicy, SelectivePolicy
from repro.overlay.assignment import ScoreManagerAssignment
from repro.overlay.ring import ChordRing
from repro.peers.behavior import CooperativeBehavior, FreeriderBehavior
from repro.peers.peer import Peer
from repro.rocq.store import ReputationStore
from repro.topology.random_topology import RandomTopology


def build_controller(params: SimulationParameters):
    """Wire a minimal admission stack with three active members (ids 0-2)."""
    ring = ChordRing()
    topology = RandomTopology()
    members = []
    for peer_id in range(3):
        ring.join(peer_id)
        topology.add_member(peer_id)
        peer = Peer(peer_id=peer_id, behavior=CooperativeBehavior(),
                    introducer_policy=NaivePolicy())
        peer.admit(0.0)
        members.append(peer)
    assignment = ScoreManagerAssignment(ring=ring, num_score_managers=3)
    store = ReputationStore(assignment=assignment)
    for peer_id in range(3):
        store.set_reputation(peer_id, 1.0)
    lending = LendingManager(store=store, params=params)
    controller = AdmissionController(
        params=params,
        topology=topology,
        store=store,
        lending=lending,
        rng=np.random.default_rng(7),
    )
    return controller, store, lending, members


def make_applicant(peer_id: int = 100, cooperative: bool = True) -> Peer:
    behavior = CooperativeBehavior() if cooperative else FreeriderBehavior()
    return Peer(peer_id=peer_id, behavior=behavior)


class TestBootstrapStrategies:
    def test_factory_maps_modes(self):
        assert isinstance(
            make_bootstrap_strategy(SimulationParameters()), LendingBootstrap
        )
        assert isinstance(
            make_bootstrap_strategy(
                SimulationParameters(bootstrap_mode=BootstrapMode.OPEN)
            ),
            OpenBootstrap,
        )
        assert isinstance(
            make_bootstrap_strategy(
                SimulationParameters(bootstrap_mode=BootstrapMode.FIXED_CREDIT)
            ),
            FixedCreditBootstrap,
        )

    def test_factory_rejects_closed_mode(self):
        with pytest.raises(ValueError):
            make_bootstrap_strategy(
                SimulationParameters(bootstrap_mode=BootstrapMode.CLOSED)
            )

    def test_open_bootstrap_sets_neutral_reputation(self, store_with_ring):
        OpenBootstrap(initial_reputation=0.5).grant_initial_standing(
            store_with_ring, entrant=4, time=1.0
        )
        assert store_with_ring.global_reputation(4) == pytest.approx(0.5)

    def test_fixed_credit_bootstrap_applies_adjustment(self, store_with_ring):
        FixedCreditBootstrap(credit=0.3).grant_initial_standing(
            store_with_ring, entrant=4, time=1.0
        )
        assert store_with_ring.global_reputation(4) == pytest.approx(0.3)
        assert store_with_ring.adjustments_delivered > 0

    def test_lending_bootstrap_is_noop(self, store_with_ring):
        LendingBootstrap().grant_initial_standing(store_with_ring, entrant=4, time=1.0)
        assert store_with_ring.global_reputation(4) == pytest.approx(0.0)


class TestAdmissionLendingMode:
    def _params(self, **overrides):
        defaults = dict(waiting_period=50.0, intro_amount=0.1, seed=3)
        defaults.update(overrides)
        return SimulationParameters(**defaults)

    def test_accepted_flow_admits_and_lends(self):
        params = self._params()
        controller, store, lending, members = build_controller(params)
        applicant = make_applicant(cooperative=True)
        request = controller.request_admission(applicant, members[0], time=10.0)
        assert request.accepted
        assert request.respond_at == pytest.approx(60.0)
        result = controller.resolve(request, time=60.0)
        assert result.admitted
        assert result.introducer == members[0].peer_id
        assert result.contract is not None
        assert store.global_reputation(applicant.peer_id) == pytest.approx(0.1)
        assert store.global_reputation(members[0].peer_id) == pytest.approx(0.9)

    def test_no_introducer_refusal(self):
        params = self._params()
        controller, _, _, _ = build_controller(params)
        applicant = make_applicant()
        request = controller.request_admission(applicant, None, time=0.0)
        assert not request.accepted
        result = controller.resolve(request, time=params.waiting_period)
        assert not result.admitted
        assert result.refusal_reason == RefusalReason.NO_INTRODUCER

    def test_insufficient_reputation_refusal(self):
        params = self._params()
        controller, store, _, members = build_controller(params)
        store.set_reputation(members[1].peer_id, 0.05)
        applicant = make_applicant()
        request = controller.request_admission(applicant, members[1], time=0.0)
        assert not request.accepted
        assert request.decision.reason == RefusalReason.INSUFFICIENT_REPUTATION

    def test_selective_refusal_of_freerider(self):
        params = self._params(selective_error_rate=0.0)
        controller, _, _, members = build_controller(params)
        members[2].introducer_policy = SelectivePolicy(error_rate=0.0)
        applicant = make_applicant(cooperative=False)
        request = controller.request_admission(applicant, members[2], time=0.0)
        assert not request.accepted
        assert request.decision.reason == RefusalReason.SELECTIVE_REFUSAL

    def test_reputation_rechecked_at_response_time(self):
        params = self._params()
        controller, store, _, members = build_controller(params)
        applicant = make_applicant()
        request = controller.request_admission(applicant, members[0], time=0.0)
        assert request.accepted
        # The introducer loses its reputation while the applicant waits.
        store.set_reputation(members[0].peer_id, 0.01)
        result = controller.resolve(request, time=params.waiting_period)
        assert not result.admitted
        assert result.refusal_reason == RefusalReason.INSUFFICIENT_REPUTATION

    def test_duplicate_introduction_sanctioned(self):
        params = self._params(waiting_period=10.0)
        controller, store, lending, members = build_controller(params)
        applicant = make_applicant()
        first = controller.request_admission(applicant, members[0], time=0.0)
        controller.resolve(first, time=10.0)
        second = controller.request_admission(applicant, members[1], time=20.0)
        result = controller.resolve(second, time=30.0)
        assert not result.admitted
        assert result.refusal_reason == RefusalReason.DUPLICATE_REQUEST
        assert lending.stats.sanctions_applied == 1
        assert store.global_reputation(applicant.peer_id) == pytest.approx(0.0)

    def test_introducer_without_policy_refuses(self):
        params = self._params()
        controller, _, _, members = build_controller(params)
        members[0].introducer_policy = None
        applicant = make_applicant()
        request = controller.request_admission(applicant, members[0], time=0.0)
        assert not request.accepted
        assert request.decision.reason == RefusalReason.SELECTIVE_REFUSAL


class TestAdmissionBaselineModes:
    def test_open_mode_admits_immediately(self):
        params = SimulationParameters(bootstrap_mode=BootstrapMode.OPEN)
        controller, store, _, _ = build_controller(params)
        applicant = make_applicant()
        request = controller.request_admission(applicant, None, time=5.0)
        assert request.respond_at == pytest.approx(5.0)
        result = controller.resolve(request, time=5.0)
        assert result.admitted
        controller.grant_initial_standing(applicant.peer_id, time=5.0)
        assert store.global_reputation(applicant.peer_id) == pytest.approx(
            params.open_initial_reputation
        )

    def test_fixed_credit_mode_grants_credit(self):
        params = SimulationParameters(
            bootstrap_mode=BootstrapMode.FIXED_CREDIT, fixed_initial_credit=0.25
        )
        controller, store, _, _ = build_controller(params)
        applicant = make_applicant()
        request = controller.request_admission(applicant, None, time=0.0)
        result = controller.resolve(request, time=0.0)
        assert result.admitted
        controller.grant_initial_standing(applicant.peer_id, time=0.0)
        assert store.global_reputation(applicant.peer_id) == pytest.approx(0.25)

    def test_closed_mode_rejects_everyone(self):
        params = SimulationParameters(bootstrap_mode=BootstrapMode.CLOSED)
        controller, _, _, members = build_controller(params)
        applicant = make_applicant()
        request = controller.request_admission(applicant, members[0], time=0.0)
        result = controller.resolve(request, time=0.0)
        assert not result.admitted
        assert result.refusal_reason == RefusalReason.ADMISSION_CLOSED
