"""Tests for the pluggable adversary subsystem.

Covers the spec (validation, serialisation, fingerprint participation,
scaling), the strategy registry (config/registry sync, knob validation),
each built-in strategy's observable effects inside the engine, the attack
scenario presets, and — critically — a golden-digest regression proving the
default ``adversary=None`` path is byte-identical to the seed engine.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.adversary import (
    adversary_knobs,
    available_adversaries,
    default_adversary_spec,
    make_adversary,
)
from repro.config import (
    ADVERSARY_STRATEGIES,
    AdversarySpec,
    ConfigurationError,
    SimulationParameters,
)
from repro.parallel.specs import params_fingerprint
from repro.sim.engine import Simulation, run_simulation
from repro.workloads.registry import available_scenarios, get_scenario
from repro.workloads.scenarios import paper_default, tiny_test

TINY = tiny_test(seed=5)


def tiny_attack(name: str, **spec_overrides) -> SimulationParameters:
    defaults = dict(name=name, count=3, start_time=300.0, interval=300.0)
    defaults.update(spec_overrides)
    return TINY.with_overrides(adversary=AdversarySpec(**defaults))


class TestAdversarySpec:
    def test_config_and_registry_agree_on_strategy_names(self):
        assert set(available_adversaries()) == set(ADVERSARY_STRATEGIES)

    def test_every_strategy_has_a_description(self):
        for name, description in available_adversaries().items():
            assert description, f"{name} needs a description"

    def test_names_are_normalised_and_aliased(self):
        assert AdversarySpec(name="Whitewashing").name == "whitewash_waves"
        assert AdversarySpec(name="Sybil").name == "sybil_swarm"
        assert AdversarySpec(name="collusion-ring").name == "collusion_ring"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            AdversarySpec(name="fifty_one_percent")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"count": 0},
            {"start_time": -1.0},
            {"interval": 0.0},
            {"options": (("", 1.0),)},
            {"options": (("waves", 1.0), ("waves", 2.0))},
        ],
    )
    def test_invalid_fields_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            AdversarySpec(name="sybil_swarm", **overrides)

    def test_options_accept_mappings_and_canonicalise(self):
        spec = AdversarySpec(
            name="sybil_swarm", options={"waves": 2, "service_quality": 0.1}
        )
        assert spec.options == (("service_quality", 0.1), ("waves", 2.0))
        assert spec.option("waves", 99.0) == 2.0
        assert spec.option("missing", 7.0) == 7.0

    def test_with_options_merges(self):
        spec = AdversarySpec(name="sybil_swarm", options={"waves": 2})
        updated = spec.with_options(waves=5, service_quality=0.2)
        assert updated.option("waves", 0.0) == 5.0
        assert updated.option("service_quality", 0.0) == 0.2
        assert spec.option("waves", 0.0) == 2.0  # original untouched

    def test_parse_accepts_name_mapping_and_none(self):
        assert AdversarySpec.parse(None) is None
        assert AdversarySpec.parse("slander").name == "slander"
        spec = AdversarySpec(name="churn_storm", count=7)
        assert AdversarySpec.parse(spec) is spec
        rebuilt = AdversarySpec.parse(spec.to_dict())
        assert rebuilt == spec
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            AdversarySpec.parse(3.14)

    def test_parse_rejects_unknown_mapping_fields(self):
        """A knob at the top level must not silently weaken the attack."""
        with pytest.raises(ConfigurationError, match="burn_threshold"):
            AdversarySpec.parse(
                {"name": "whitewash_waves", "burn_threshold": 0.2}
            )

    def test_non_numeric_option_values_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="numeric"):
            AdversarySpec(name="collusion_ring", options={"oscillate": "off"})

    def test_spec_round_trips_through_parameter_json(self):
        params = tiny_attack("whitewash_waves", options={"burn_threshold": 0.2})
        restored = SimulationParameters.from_json(params.to_json())
        assert restored.adversary == params.adversary
        assert restored == params

    def test_parameters_remain_hashable_with_adversary(self):
        assert isinstance(hash(tiny_attack("sybil_swarm")), int)

    def test_adversary_participates_in_the_cache_fingerprint(self):
        baseline = TINY
        attacked = tiny_attack("sybil_swarm")
        other_attack = tiny_attack("slander")
        tweaked = tiny_attack("sybil_swarm", options={"waves": 9})
        fingerprints = {
            params_fingerprint(p)
            for p in (baseline, attacked, other_attack, tweaked)
        }
        assert len(fingerprints) == 4

    def test_scaled_rescales_the_attack_schedule(self):
        params = paper_default().with_overrides(
            adversary=AdversarySpec(
                name="churn_storm", start_time=50_000.0, interval=10_000.0
            )
        )
        scaled = params.scaled(0.01)
        assert scaled.adversary.start_time == pytest.approx(500.0)
        assert scaled.adversary.interval == pytest.approx(100.0)
        assert scaled.adversary.name == "churn_storm"

    def test_default_spec_sizes_the_schedule_to_the_horizon(self):
        spec = default_adversary_spec("slander", 4_000)
        assert spec.name == "slander"
        assert spec.start_time == spec.interval == pytest.approx(500.0)


class TestRegistry:
    @pytest.mark.parametrize("name", ADVERSARY_STRATEGIES)
    def test_every_strategy_builds(self, name):
        strategy = make_adversary(AdversarySpec(name=name))
        assert strategy.spec.name == name
        assert strategy.attacker_ids == []

    def test_unknown_knobs_rejected_at_build_time(self):
        spec = AdversarySpec(name="slander", options={"stealth": 1.0})
        with pytest.raises(ConfigurationError, match="stealth"):
            make_adversary(spec)

    def test_declared_knobs_are_accepted(self):
        for name in ADVERSARY_STRATEGIES:
            knobs = adversary_knobs(name)
            assert knobs, f"{name} should declare its knobs"
            spec = AdversarySpec(
                name=name, options={knobs[0]: 0.5}
            )
            make_adversary(spec)  # must not raise


class TestGoldenDigest:
    def test_no_adversary_path_is_byte_identical_to_the_seed_engine(self):
        """The adversary hooks must not perturb the default path at all.

        Same digest as ``test_reputation_backend.TestDefaultPathDeterminism``:
        captured from the pre-refactor seed engine at the Table 1 operating
        point, 2,000-transaction horizon.  ``params`` (which legitimately
        gained the ``adversary`` field) and wall-clock time are excluded.
        """
        params = paper_default(seed=1).scaled(0.004)
        assert params.adversary is None
        summary = run_simulation(params)
        document = summary.to_dict()
        document.pop("elapsed_seconds")
        document.pop("params")
        digest = hashlib.sha256(
            json.dumps(document, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert digest == (
            "c88bbfe213e26fe449ad56b8d12a353e599fdc5194aaceadd1322142d7ffc10c"
        )

    def test_no_adversary_means_no_adversary_machinery(self):
        simulation = Simulation(TINY)
        simulation.setup()
        assert simulation.adversary is None
        assert "adversary" not in simulation.streams.names()


class TestStrategiesInsideTheEngine:
    def test_sybil_swarm_floods_the_admission_pipeline(self):
        params = tiny_attack("sybil_swarm", options={"waves": 2})
        simulation = Simulation(params)
        summary = simulation.run()
        swarm = simulation.adversary
        assert swarm.waves_sent == 2
        assert len(swarm.attacker_ids) == 2 * 3
        # Sybils arrive through the front door: they are counted as arrivals
        # and must face the admission decision like everyone else.
        assert summary.arrivals_uncooperative >= 6

    def test_sybil_swarm_respects_the_wave_budget(self):
        params = tiny_attack(
            "sybil_swarm", start_time=100.0, interval=100.0, options={"waves": 1}
        )
        simulation = Simulation(params)
        simulation.run()
        assert simulation.adversary.waves_sent == 1

    def test_whitewash_waves_burn_and_reenter(self):
        params = tiny_attack(
            "whitewash_waves",
            count=2,
            start_time=1_000.0,
            interval=250.0,
        )
        simulation = Simulation(params)
        simulation.run()
        rebirths = simulation.adversary.rebirths
        assert rebirths
        for rebirth in rebirths:
            assert rebirth.fresh != rebirth.burned
            assert rebirth.identities_used >= 2
        # Identity counters increase monotonically along each chain.
        chained = [r for r in rebirths if r.identities_used > 2]
        for rebirth in chained:
            previous = next(r for r in rebirths if r.fresh == rebirth.burned)
            assert rebirth.identities_used == previous.identities_used + 1

    def test_churn_storm_departs_and_joins_in_bursts(self):
        params = tiny_attack("churn_storm", count=4)
        simulation = Simulation(params)
        summary = simulation.run()
        storm = simulation.adversary
        assert storm.joins_injected > 0
        # Departure bursts match the join bursts (duplicate picks redraw),
        # so the storm churns rather than net-growing the community.
        assert storm.departures_requested == storm.joins_injected
        assert "adversary" in simulation.streams.names()
        # The overlay stayed consistent under the storm: every active peer is
        # still on the ring, and the run completed with a live community.
        for peer in simulation.population.active_peers():
            assert peer.peer_id in simulation.ring
        assert summary.final_total > 0

    def test_slander_draws_honest_reputations_down(self):
        clean = run_simulation(TINY)
        slandered_sim = Simulation(
            tiny_attack("slander", count=6, options={"initial_reputation": 1.0})
        )
        slandered = slandered_sim.run()
        assert (
            slandered.mean_cooperative_reputation
            < clean.mean_cooperative_reputation
        )

    def test_strategies_are_deterministic_per_seed(self):
        params = tiny_attack("churn_storm")
        first = run_simulation(params, seed=3).to_dict()
        second = run_simulation(params, seed=3).to_dict()
        first.pop("elapsed_seconds")
        second.pop("elapsed_seconds")
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


class TestAttackScenarioPresets:
    def test_one_preset_per_registered_strategy(self):
        catalogue = available_scenarios()
        for name in ADVERSARY_STRATEGIES:
            preset = f"{name}_attack"
            assert preset in catalogue
            assert "adversary preset" in catalogue[preset]

    @pytest.mark.parametrize("name", ADVERSARY_STRATEGIES)
    def test_presets_carry_a_matching_spec(self, name):
        params = get_scenario(f"{name}_attack", seed=17)
        assert params.adversary is not None
        assert params.adversary.name == name
        assert params.seed == 17
        # The schedule is sized to the horizon, so scaling the preset keeps
        # the attack's shape.
        assert params.adversary.interval == pytest.approx(
            params.num_transactions / 8.0
        )
