"""Tests for the lending manager and the audit logic."""

from __future__ import annotations

import pytest

from repro.config import SimulationParameters
from repro.core.audit import AuditOutcome, evaluate_audit
from repro.core.lending import LendingManager
from repro.rocq.protocol import FeedbackReport


@pytest.fixture
def lending_setup(store_with_ring):
    """A lending manager over the shared 10-peer store with fast audits."""
    params = SimulationParameters(
        intro_amount=0.1,
        reward_amount=0.02,
        audit_transactions=3,
        audit_pass_threshold=0.5,
    )
    manager = LendingManager(store=store_with_ring, params=params)
    return store_with_ring, params, manager


class TestEvaluateAudit:
    def test_pass_at_or_above_threshold(self):
        assert evaluate_audit(0.5, 0.5) == AuditOutcome.PASSED
        assert evaluate_audit(0.9, 0.5) == AuditOutcome.PASSED

    def test_fail_below_threshold(self):
        assert evaluate_audit(0.49, 0.5) == AuditOutcome.FAILED
        assert evaluate_audit(0.0, 0.5) == AuditOutcome.FAILED


class TestCanLend:
    def test_requires_min_intro_reputation(self, lending_setup):
        store, params, manager = lending_setup
        introducer = 0
        store.set_reputation(introducer, params.effective_min_intro_reputation() - 0.01)
        assert not manager.can_lend(introducer)
        store.set_reputation(introducer, params.effective_min_intro_reputation())
        assert manager.can_lend(introducer)

    def test_new_peer_cannot_lend(self, lending_setup):
        _, _, manager = lending_setup
        assert not manager.can_lend(999)  # reputation defaults to 0


class TestLend:
    def test_lend_debits_introducer_and_credits_entrant(self, lending_setup):
        store, params, manager = lending_setup
        store.set_reputation(0, 1.0)
        contract = manager.lend(introducer=0, entrant=5, time=10.0)
        assert store.global_reputation(0) == pytest.approx(1.0 - params.intro_amount)
        assert store.global_reputation(5) == pytest.approx(params.intro_amount)
        assert contract.amount == pytest.approx(params.intro_amount)
        assert contract.transactions_until_audit == params.audit_transactions
        assert manager.contract_for(5) is contract
        assert manager.stats.introductions_granted == 1
        assert manager.stats.total_reputation_lent == pytest.approx(params.intro_amount)

    def test_outstanding_contracts_listing(self, lending_setup):
        store, _, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=1.0)
        manager.lend(0, 6, time=2.0)
        assert len(manager.outstanding_contracts()) == 2


class TestAuditSettlement:
    def test_audit_triggers_after_configured_transactions(self, lending_setup):
        store, params, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=0.0)
        store.set_reputation(5, 0.9)  # entrant behaved well
        assert manager.note_transaction(5, time=1.0) is None
        assert manager.note_transaction(5, time=2.0) is None
        result = manager.note_transaction(5, time=3.0)
        assert result is not None
        assert result.passed
        assert manager.stats.audits_passed == 1

    def test_successful_audit_returns_stake_plus_reward(self, lending_setup):
        store, params, manager = lending_setup
        store.set_reputation(0, 0.5)
        manager.lend(0, 5, time=0.0)
        assert store.global_reputation(0) == pytest.approx(0.4)
        store.set_reputation(5, 0.9)
        result = manager.settle(5, time=5.0)
        assert result is not None and result.passed
        expected = 0.4 + params.intro_amount + params.reward_amount
        assert store.global_reputation(0) == pytest.approx(expected)
        assert manager.stats.total_rewards_paid == pytest.approx(params.reward_amount)

    def test_return_clamped_at_one(self, lending_setup):
        store, params, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=0.0)
        # The introducer independently regained reputation before the audit.
        store.set_reputation(0, 1.0)
        store.set_reputation(5, 0.9)
        result = manager.settle(5, time=5.0)
        assert result is not None
        assert store.global_reputation(0) == pytest.approx(1.0)
        assert result.returned_to_introducer == pytest.approx(0.0)

    def test_failed_audit_strips_entrant_and_keeps_stake_lost(self, lending_setup):
        store, params, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=0.0)
        # The entrant freerode: its reputation decayed close to zero.
        store.set_reputation(5, 0.05)
        result = manager.settle(5, time=5.0)
        assert result is not None and not result.passed
        assert store.global_reputation(0) == pytest.approx(0.9)  # stake not returned
        assert store.global_reputation(5) == pytest.approx(0.0)  # floored at zero
        assert manager.stats.audits_failed == 1
        assert manager.stats.total_stakes_lost == pytest.approx(params.intro_amount)

    def test_settle_is_idempotent(self, lending_setup):
        store, _, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=0.0)
        store.set_reputation(5, 0.9)
        first = manager.settle(5, time=5.0)
        second = manager.settle(5, time=6.0)
        assert first is not None
        assert second is None
        assert manager.stats.audits_settled == 1

    def test_note_transaction_for_unknown_entrant_is_noop(self, lending_setup):
        _, _, manager = lending_setup
        assert manager.note_transaction(42, time=1.0) is None

    def test_settle_all_settles_every_outstanding_contract(self, lending_setup):
        store, _, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=0.0)
        manager.lend(0, 6, time=0.0)
        store.set_reputation(5, 0.9)
        store.set_reputation(6, 0.1)
        results = manager.settle_all(time=10.0)
        assert len(results) == 2
        assert manager.stats.audits_passed == 1
        assert manager.stats.audits_failed == 1
        assert manager.audit_history() == results


class TestSanction:
    def test_sanction_zeroes_reputation(self, lending_setup):
        store, _, manager = lending_setup
        store.set_reputation(3, 0.8)
        manager.sanction(3, time=1.0)
        assert store.global_reputation(3) == pytest.approx(0.0)
        assert manager.stats.sanctions_applied == 1


class TestInteractionWithFeedback:
    def test_cooperative_entrant_passes_audit_through_feedback(self, lending_setup):
        """End-to-end: lend, accumulate honest positive feedback, pass audit."""
        store, params, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=0.0)
        for time in range(1, 40):
            store.submit_report(
                FeedbackReport(reporter=1, subject=5, value=1.0, quality=0.8,
                               time=float(time))
            )
        assert store.global_reputation(5) > params.audit_pass_threshold
        result = manager.settle(5, time=50.0)
        assert result is not None and result.passed

    def test_freeriding_entrant_fails_audit_through_feedback(self, lending_setup):
        store, params, manager = lending_setup
        store.set_reputation(0, 1.0)
        manager.lend(0, 5, time=0.0)
        for time in range(1, 40):
            store.submit_report(
                FeedbackReport(reporter=1, subject=5, value=0.0, quality=0.8,
                               time=float(time))
            )
        assert store.global_reputation(5) < params.audit_pass_threshold
        result = manager.settle(5, time=50.0)
        assert result is not None and not result.passed
