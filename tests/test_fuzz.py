"""Tests for the seeded scenario fuzzer and its property-based invariants.

The contracts pinned here:

* every registered generator dimension shows up in the unified catalogue;
* scenario generation is deterministic in (seed, index) and always produces
  valid :class:`SimulationParameters` (construction *is* the validation);
* the invariants hold over a batch of >= 25 seeded scenarios;
* the invariant checker actually detects violations when state is corrupted
  (it is a real oracle, not a rubber stamp).
"""

from __future__ import annotations

import pytest

from repro.api import catalogue
from repro.config import SimulationParameters
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation
from repro.workloads.fuzz import (
    FuzzConfig,
    available_fuzz_generators,
    check_invariants,
    fuzz_scenario,
    run_fuzz_batch,
    run_fuzz_scenario,
)

#: Small caps keep a >=25-scenario batch fast while spanning the space.
FAST = dict(max_transactions=400, max_initial_peers=20)


class TestGeneratorRegistry:
    def test_expected_dimensions_are_registered(self):
        assert set(available_fuzz_generators()) == {
            "horizon",
            "topology",
            "arrivals",
            "behaviour",
            "bootstrap",
            "scheme",
            "adversary",
        }

    def test_catalogue_exposes_the_generators(self):
        assert catalogue()["fuzz-generators"] == available_fuzz_generators()

    def test_descriptions_are_non_empty(self):
        for name, description in available_fuzz_generators().items():
            assert description, name


class TestScenarioGeneration:
    CONFIG = FuzzConfig(seed=5, count=30, **FAST)

    def test_scenarios_are_valid_and_deterministic(self):
        for index in range(self.CONFIG.count):
            first = fuzz_scenario(self.CONFIG, index)
            second = fuzz_scenario(self.CONFIG, index)
            assert isinstance(first.params, SimulationParameters)
            assert first.params == second.params
            assert first.seed == second.seed

    def test_scenarios_differ_across_indices(self):
        fingerprints = {
            fuzz_scenario(self.CONFIG, index).params for index in range(10)
        }
        assert len(fingerprints) > 1

    def test_seed_changes_the_scenarios(self):
        other = FuzzConfig(seed=6, count=30, **FAST)
        assert fuzz_scenario(self.CONFIG, 0).params != fuzz_scenario(other, 0).params

    def test_scheme_pin_applies_to_every_scenario(self):
        pinned = FuzzConfig(seed=5, count=5, scheme="beta", **FAST)
        for index in range(pinned.count):
            assert fuzz_scenario(pinned, index).params.reputation_scheme == "beta"

    @pytest.mark.parametrize(
        "bad",
        [dict(count=0), dict(max_transactions=10), dict(max_initial_peers=2)],
    )
    def test_config_validation(self, bad):
        with pytest.raises(ConfigurationError):
            FuzzConfig(**bad)


class TestInvariants:
    def test_invariants_hold_over_a_seeded_batch(self):
        config = FuzzConfig(seed=1, count=25, **FAST)
        report = run_fuzz_batch(config)
        assert len(report.results) == 25
        assert report.ok, [
            violation.describe()
            for result in report.results
            for violation in result.violations
        ]
        assert report.violation_count == 0

    def test_results_are_reproducible(self):
        config = FuzzConfig(seed=3, count=1, **FAST)
        first = run_fuzz_scenario(fuzz_scenario(config, 0))
        second = run_fuzz_scenario(fuzz_scenario(config, 0))
        assert first.digest == second.digest

    def test_report_serialises(self):
        config = FuzzConfig(seed=3, count=2, **FAST)
        document = run_fuzz_batch(config).to_dict()
        assert document["ok"] is True
        assert len(document["results"]) == 2
        for entry in document["results"]:
            assert entry["digest"]
            assert entry["violations"] == []


class TestInvariantOracle:
    """Corrupt a finished run and verify the checker notices."""

    @pytest.fixture()
    def finished(self):
        scenario = fuzz_scenario(FuzzConfig(seed=2, count=1, **FAST), 0)
        sim = Simulation(scenario.params, seed=scenario.seed)
        summary = sim.run()
        assert check_invariants(sim, summary) == []
        return sim, summary

    def test_detects_broken_lending_conservation(self, finished):
        sim, summary = finished
        sim.lending.stats.total_reputation_lent += 5.0
        violations = check_invariants(sim, summary)
        assert any(v.invariant == "lending_conservation" for v in violations)

    def test_detects_unclamped_scores(self, finished, monkeypatch):
        sim, summary = finished
        # Backends clamp on write, so fake the read path: whatever scheme the
        # scenario drew, an out-of-range score must be flagged.
        monkeypatch.setattr(sim.store, "global_reputation", lambda subject: 1.5)
        violations = check_invariants(sim, summary)
        assert any(v.invariant == "score_clamping" for v in violations)

    def test_detects_horizon_shortfall(self, finished):
        sim, summary = finished
        sim.clock.now -= 1.0
        violations = check_invariants(sim, summary)
        assert any(v.invariant == "horizon" for v in violations)
