"""Dedicated tests for the Chord finger-table lookup path.

The ring now rewires incrementally on churn, so routing correctness after
joins/leaves — with fingers fresh, stale, or absent — gets its own coverage
here, together with the O(log N) hop bound the finger tables exist for.
"""

from __future__ import annotations

import math
import random

from repro.ids import KEY_SPACE_SIZE, peer_key, replica_key
from repro.overlay.ring import ChordRing
from repro.overlay.routing import lookup


def build_ring(size: int, fingers: bool = True) -> ChordRing:
    ring = ChordRing()
    for peer_id in range(size):
        ring.join(peer_id)
    if fingers:
        for peer_id in range(size):
            ring.build_fingers(peer_id)
    return ring


def reference_responsible(ring: ChordRing, key: int) -> int:
    """Responsibility derived from sorted keys only (no pointers/fingers)."""
    keys = sorted(ring._nodes_by_key)
    for ring_key in keys:
        if ring_key >= key % KEY_SPACE_SIZE:
            return ring._nodes_by_key[ring_key].peer_id
    return ring._nodes_by_key[keys[0]].peer_id


class TestLookupCorrectness:
    def test_every_origin_resolves_every_target(self):
        ring = build_ring(32)
        for origin in range(0, 32, 5):
            for target in range(32):
                result = lookup(ring, origin_peer=origin, key=peer_key(target))
                assert result.responsible_peer == target

    def test_arbitrary_keys_resolve_to_clockwise_successor(self):
        ring = build_ring(24)
        rng = random.Random(7)
        for _ in range(200):
            key = rng.randrange(KEY_SPACE_SIZE)
            result = lookup(ring, origin_peer=rng.randrange(24), key=key)
            assert result.responsible_peer == reference_responsible(ring, key)

    def test_replica_keys_resolve_like_score_manager_assignment(self):
        ring = build_ring(20)
        for subject in range(20):
            for replica in range(4):
                key = replica_key(subject, replica)
                result = lookup(ring, origin_peer=subject, key=key)
                assert result.responsible_peer == ring.responsible_peer(key)


class TestLookupAfterChurn:
    def test_correct_after_incremental_joins_without_finger_rebuild(self):
        """Stale fingers may lengthen paths but never break correctness."""
        ring = build_ring(16)
        for newcomer in range(100, 140):
            ring.join(newcomer)
        rng = random.Random(21)
        members = ring.peers()
        for _ in range(100):
            target = rng.choice(members)
            result = lookup(ring, origin_peer=rng.choice(members),
                            key=peer_key(target))
            assert result.responsible_peer == ring.responsible_peer(
                peer_key(target)
            )

    def test_correct_after_leaves_without_finger_rebuild(self):
        ring = build_ring(40)
        for victim in range(0, 40, 3):
            ring.leave(victim)
        members = ring.peers()
        for origin in members[::4]:
            for target in members[::5]:
                result = lookup(ring, origin_peer=origin, key=peer_key(target))
                assert result.responsible_peer == target

    def test_correct_and_tight_after_churn_with_rebuilt_fingers(self):
        ring = build_ring(64)
        for victim in range(0, 64, 4):
            ring.leave(victim)
        for newcomer in range(200, 216):
            ring.join(newcomer)
        members = ring.peers()
        for peer_id in members:
            ring.build_fingers(peer_id)
        bound = 2 * math.log2(len(members)) + 4
        for target in members[::3]:
            result = lookup(ring, origin_peer=members[0], key=peer_key(target))
            assert result.responsible_peer == target
            assert result.hops <= bound


class TestHopBound:
    def test_hops_scale_logarithmically_with_ring_size(self):
        """Worst observed hop count stays within O(log N) at growing sizes."""
        for size in (32, 128, 512):
            ring = build_ring(size)
            rng = random.Random(size)
            worst = 0
            for _ in range(60):
                origin = rng.randrange(size)
                key = rng.randrange(KEY_SPACE_SIZE)
                result = lookup(ring, origin_peer=origin, key=key)
                assert result.responsible_peer == reference_responsible(ring, key)
                worst = max(worst, result.hops)
            # Chord's bound is log2(N) expected; allow a 2x + slack envelope
            # for the iterative walk and unlucky key placement.
            assert worst <= 2 * math.log2(size) + 4, (
                f"worst hop count {worst} exceeds O(log N) envelope at n={size}"
            )

    def test_mean_hops_grow_sublinearly(self):
        means = []
        for size in (64, 256):
            ring = build_ring(size)
            rng = random.Random(size * 3)
            hops = []
            for _ in range(80):
                key = rng.randrange(KEY_SPACE_SIZE)
                hops.append(lookup(ring, origin_peer=0, key=key).hops)
            means.append(sum(hops) / len(hops))
        # Quadrupling the ring must not quadruple the mean path length.
        assert means[1] < means[0] * 2.5
