"""The ``python -m repro serve`` HTTP service, exercised over real sockets.

Each test boots a :class:`ReputationServer` on an ephemeral port inside a
thread running its own asyncio loop — the same code path as the CLI, minus
the subprocess (the CI service-smoke job covers the real-process SIGTERM
flavour).
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.api.server import ReputationServer

TINY_BODY = {
    "seed": 11,
    "label": "srv",
    "overrides": {
        "num_initial_peers": 20,
        "num_transactions": 300,
        "arrival_rate": 0.05,
        "waiting_period": 20.0,
        "sample_interval": 100.0,
        "audit_transactions": 5,
    },
}


@contextmanager
def running_server(store_url: str, **kwargs):
    server = ReputationServer(store_url, port=0, **kwargs)
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever()), daemon=True
    )
    thread.start()
    assert server.started.wait(timeout=10), "server did not bind in time"
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "server did not shut down cleanly"


def request(server, method, path, body=None, timeout=30):
    """One HTTP exchange; returns (status, parsed JSON document)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_done(server, run_id, timeout=60):
    """Stream /events until the run leaves the running state; return lines."""
    url = f"http://127.0.0.1:{server.port}/runs/{run_id}/events"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return [json.loads(line) for line in response]


class TestEndpoints:
    def test_health_catalogue_and_state(self, tmp_path):
        with running_server(str(tmp_path / "s.db")) as server:
            status, health = request(server, "GET", "/health")
            assert status == 200 and health["status"] == "ok"
            status, catalogue = request(server, "GET", "/catalogue")
            assert status == 200 and "rocq" in catalogue["schemes"]
            assert request(server, "GET", "/state")[1] == {"keys": []}

    def test_submit_stream_query_lifecycle(self, tmp_path):
        with running_server(str(tmp_path / "s.db")) as server:
            status, submitted = request(server, "POST", "/runs", TINY_BODY)
            assert status == 202
            assert submitted["persisted"] is True
            run_id = submitted["run"]
            lines = wait_done(server, run_id)
            # One progress event per repeat, then the terminal status line.
            assert lines[0]["completed"] == 1 and lines[0]["total"] == 1
            assert lines[-1] == {"run": run_id, "status": "done"}
            status, run = request(server, "GET", f"/runs/{run_id}")
            assert status == 200 and run["status"] == "done"
            assert run["digest"]
            assert request(server, "GET", "/runs")[1]["runs"][0]["run"] == run_id
            # The finished run's backend state is queryable per peer.
            status, peers = request(server, "GET", "/reputation/rocq")
            assert status == 200 and peers["peers"]
            subject = peers["peers"][0]["subject"]
            status, peer = request(
                server, "GET", f"/reputation/rocq/{subject}"
            )
            assert status == 200
            assert 0.0 <= peer["score"] <= 1.0
            assert request(server, "GET", "/reputation")[1] == {
                "schemes": ["rocq"]
            }

    def test_error_mapping(self, tmp_path):
        with running_server(str(tmp_path / "s.db")) as server:
            status, document = request(
                server, "POST", "/runs", {"scenario": "not-a-scenario"}
            )
            assert status == 400 and "scenario" in document["error"]
            assert "known" in document  # did-you-mean material
            assert request(server, "POST", "/runs", {"persist": "x"})[0] == 400
            assert request(server, "GET", "/runs/r99")[0] == 404
            assert request(server, "GET", "/reputation/rocq/7")[0] == 404
            assert request(server, "GET", "/reputation/rocq/seven")[0] == 400
            assert request(server, "GET", "/no/such/route")[0] == 404
            status, _ = request(server, "POST", "/runs", None)
            assert status == 400  # missing body

    def test_ineligible_request_runs_without_persistence(self, tmp_path):
        body = dict(TINY_BODY, repeats=2)
        with running_server(str(tmp_path / "s.db")) as server:
            status, submitted = request(server, "POST", "/runs", body)
            assert status == 202 and submitted["persisted"] is False
            lines = wait_done(server, submitted["run"])
            assert lines[-1]["status"] == "done"
            assert request(server, "GET", "/state")[1] == {"keys": []}


class TestRestartSurvival:
    def test_reputation_and_registry_survive_restart(self, tmp_path):
        """Submit → complete → shutdown → new process-equivalent → same data."""
        db = str(tmp_path / "durable.db")
        with running_server(db) as server:
            run_id = request(server, "POST", "/runs", TINY_BODY)[1]["run"]
            wait_done(server, run_id)
            _, peers = request(server, "GET", "/reputation/rocq")
            subject = peers["peers"][0]["subject"]
            _, before = request(server, "GET", f"/reputation/rocq/{subject}")
        # The context manager performed the graceful shutdown (drain +
        # registry checkpoint + store close).  Boot a fresh server on the
        # same database, as a restarted process would.
        with running_server(db) as server:
            _, runs = request(server, "GET", "/runs")
            assert [entry["run"] for entry in runs["runs"]] == [run_id]
            assert runs["runs"][0]["status"] == "done"
            _, after = request(server, "GET", f"/reputation/rocq/{subject}")
            assert after == before
            keys = request(server, "GET", "/state")[1]["keys"]
            assert f"run/{run_id}" in keys and "service/runs" in keys
            # Run ids keep counting instead of colliding with restored ones.
            next_id = request(server, "POST", "/runs", TINY_BODY)[1]["run"]
            assert next_id != run_id
            wait_done(server, next_id)

    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        server = ReputationServer(str(tmp_path / "s.db"), port=0)
        thread = threading.Thread(
            target=lambda: asyncio.run(server.serve_forever()), daemon=True
        )
        thread.start()
        assert server.started.wait(timeout=10)
        status, document = request(server, "POST", "/shutdown")
        assert status == 202 and document == {"status": "shutting down"}
        thread.join(timeout=30)
        assert not thread.is_alive()
        with pytest.raises(urllib.error.URLError):
            request(server, "GET", "/health", timeout=2)


class TestMemoryStoreServer:
    def test_memory_backed_server_shares_state_in_process(self, tmp_path):
        with running_server("memory://server-test") as server:
            run_id = request(server, "POST", "/runs", TINY_BODY)[1]["run"]
            lines = wait_done(server, run_id)
            assert lines[-1]["status"] == "done"
            _, peers = request(server, "GET", "/reputation/rocq")
            assert peers["peers"], (
                "the executor's checkpoint must land in the same in-process "
                "store the server queries"
            )
