"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs fail) can still do a legacy editable install::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
