"""The pluggable adversary layer: protocol, registry, default specs.

:class:`AdversaryStrategy` is what the simulation engine requires of an
attack workload.  A strategy is built from a validated
:class:`~repro.config.AdversarySpec` (carried inside
:class:`~repro.config.SimulationParameters`, and therefore part of every
run-cache fingerprint) and drives the engine exclusively through its public
scenario hooks:

* :meth:`~repro.sim.engine.Simulation.add_member` — inject an attacker
  identity directly into the community (insiders: colluders, slanderers,
  the burning phase of a whitewasher);
* :meth:`~repro.sim.engine.Simulation.inject_arrival` — send an attacker
  identity through the **real admission pipeline** (strangers: sybil
  swarms, the reborn identities of whitewashing waves), so each reputation
  scheme's own newcomer policy decides what the attacker gets;
* :meth:`~repro.sim.engine.Simulation.schedule_departure` — remove an
  identity (whitewashing, churn storms).

The engine calls :meth:`AdversaryStrategy.install` once at setup time and
:meth:`AdversaryStrategy.act` on every ``ADVERSARY`` event of the spec's
deterministic ``start_time``/``interval`` schedule.  Any randomness a
strategy needs must come from ``sim.streams.stream("adversary")`` — a
seed-derived stream that exists only when an adversary is configured — so
runs stay bit-identical across executor backends and job counts, and the
``adversary=None`` path stays byte-identical to the seed engine.

The module also hosts the **strategy registry**, a name → factory mapping
that mirrors :mod:`repro.reputation.backend` and
:mod:`repro.workloads.registry`.  Register additional strategies with
:func:`register_adversary`::

    from repro.adversary import register_adversary

    @register_adversary("eclipse", description="...", knobs=("spread",))
    class EclipseStrategy:
        ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from ..config import AdversarySpec
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from ..sim.engine import Simulation

__all__ = [
    "AdversaryStrategy",
    "AdversaryFactory",
    "register_adversary",
    "available_adversaries",
    "adversary_knobs",
    "make_adversary",
    "default_adversary_spec",
]


@runtime_checkable
class AdversaryStrategy(Protocol):
    """What the simulation engine requires of an adversary workload.

    Implementations additionally expose the ``spec`` they were built from
    and an ``attacker_ids`` list of every identity they control (kept out of
    the protocol so structural ``isinstance`` checks stay method-based).
    """

    def install(self, sim: "Simulation", time: float) -> None:
        """Inject the initial attacker identities (called once at setup)."""
        ...

    def act(self, sim: "Simulation", time: float) -> None:
        """Perform one scheduled adversary action at simulated ``time``."""
        ...


#: A factory builds a strategy instance from its validated spec.
AdversaryFactory = Callable[[AdversarySpec], "AdversaryStrategy"]

_FACTORIES: dict[str, AdversaryFactory] = {}
_DESCRIPTIONS: dict[str, str] = {}
_KNOBS: dict[str, tuple[str, ...]] = {}


def register_adversary(
    name: str, description: str = "", knobs: tuple[str, ...] = ()
) -> Callable[[AdversaryFactory], AdversaryFactory]:
    """Decorator registering ``factory`` under ``name``.

    ``knobs`` declares the option names the strategy understands;
    :func:`make_adversary` rejects specs carrying anything else, so typos in
    attack configurations fail loudly instead of silently running a weaker
    attack.
    """

    def decorator(factory: AdversaryFactory) -> AdversaryFactory:
        doc = (getattr(factory, "__doc__", "") or "").strip()
        _FACTORIES[name] = factory
        _DESCRIPTIONS[name] = description or (doc.splitlines()[0] if doc else name)
        _KNOBS[name] = tuple(knobs)
        return factory

    return decorator


def available_adversaries() -> dict[str, str]:
    """Name → one-line description for every registered strategy."""
    return dict(_DESCRIPTIONS)


def adversary_knobs(name: str) -> tuple[str, ...]:
    """The option names the strategy registered under ``name`` accepts."""
    return _KNOBS.get(name, ())


def make_adversary(spec: AdversarySpec) -> "AdversaryStrategy":
    """Build the strategy ``spec.name`` names, validating its knobs."""
    factory = _FACTORIES.get(spec.name)
    if factory is None:
        raise ConfigurationError(
            f"no adversary factory registered for {spec.name!r}; "
            f"known: {sorted(_FACTORIES)}"
        )
    allowed = set(_KNOBS.get(spec.name, ()))
    unknown = [key for key, _ in spec.options if key not in allowed]
    if unknown:
        raise ConfigurationError(
            f"unknown option(s) {unknown} for adversary {spec.name!r}; "
            f"accepted: {sorted(allowed)}"
        )
    return factory(spec)


def default_adversary_spec(name: str, horizon: float) -> AdversarySpec:
    """A sensibly tuned spec for ``name`` at a given simulation horizon.

    Wave-based strategies act roughly eight times over the run regardless of
    scale, so the same attack shape appears at test, laptop and paper
    horizons.  Used by the attack scenario presets and the robustness-matrix
    experiment.
    """
    interval = max(1.0, float(horizon) / 8.0)
    return AdversarySpec(name=name, start_time=interval, interval=interval)
