"""Pluggable adversary subsystem: reusable attack workloads.

See :mod:`repro.adversary.base` for the :class:`AdversaryStrategy` protocol
and the name → factory registry, and :mod:`repro.adversary.strategies` for
the built-in attacks (sybil swarm, collusion ring, slander, whitewashing
waves, churn storm).  Attacks are configured declaratively through
:class:`~repro.config.AdversarySpec` on the simulation parameters, which
puts every attack into the run-cache fingerprint automatically.
"""

from ..config import ADVERSARY_STRATEGIES, AdversarySpec
from .base import (
    AdversaryFactory,
    AdversaryStrategy,
    adversary_knobs,
    available_adversaries,
    default_adversary_spec,
    make_adversary,
    register_adversary,
)
from .strategies import (
    ChurnStormStrategy,
    CollusionRingStrategy,
    SlanderStrategy,
    SybilSwarmStrategy,
    WhitewashRebirth,
    WhitewashWavesStrategy,
)

__all__ = [
    "ADVERSARY_STRATEGIES",
    "AdversarySpec",
    "AdversaryStrategy",
    "AdversaryFactory",
    "register_adversary",
    "available_adversaries",
    "adversary_knobs",
    "make_adversary",
    "default_adversary_spec",
    "SybilSwarmStrategy",
    "CollusionRingStrategy",
    "SlanderStrategy",
    "WhitewashWavesStrategy",
    "ChurnStormStrategy",
    "WhitewashRebirth",
]

# Every strategy the configuration layer accepts must be buildable.
from .base import _FACTORIES as _registered_factories  # noqa: E402

assert set(ADVERSARY_STRATEGIES) == set(_registered_factories), (
    "config.ADVERSARY_STRATEGIES and the adversary registry drifted apart: "
    f"{sorted(ADVERSARY_STRATEGIES)} vs {sorted(_registered_factories)}"
)
