"""Built-in adversary strategies.

Each strategy drives the existing :mod:`repro.peers.behavior` primitives
(freeriders, colluders, slanderers, whitewashers) through the engine's
public scenario hooks on the spec's deterministic schedule.  The five
built-ins cover the attack taxonomy of the paper's discussion:

``sybil_swarm``
    One operator floods the **admission pipeline** with waves of freeriding
    identities.  Schemes that trust strangers admit them all at full
    standing; the lending mechanism makes each identity cost an introducer's
    stake.
``collusion_ring``
    A freeriding accomplice is propped up by colluders that always report
    full satisfaction about ring members.  With ``oscillate`` set (the
    default) the colluders additionally alternate between model-citizen and
    freeriding service each interval — building reputation, then milking it.
``slander``
    Well-serving insiders that file negative reports about every partner
    (bad-mouthing).  Credibility-weighted aggregation should discount them;
    raw complaint counting cannot.
``whitewash_waves``
    Insiders freeride until their reputation burns below a threshold, then
    coordinate: discard the identity and re-enter the admission pipeline as
    fresh strangers.  The attack the reputation-lending bootstrap exists to
    close.
``churn_storm``
    Bursts of simultaneous joins and departures.  Not a trust attack — a
    load attack on the overlay: every burst moves score-manager
    responsibility arcs and stresses the targeted assignment-invalidation
    path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import AdversarySpec
from ..core.policies import NaivePolicy
from ..ids import PeerId
from ..peers.behavior import (
    ColluderBehavior,
    CooperativeBehavior,
    FreeriderBehavior,
    SlandererBehavior,
    WhitewasherBehavior,
)
from ..peers.peer import PeerStatus
from .base import register_adversary

__all__ = [
    "SybilSwarmStrategy",
    "CollusionRingStrategy",
    "SlanderStrategy",
    "WhitewashWavesStrategy",
    "ChurnStormStrategy",
    "WhitewashRebirth",
]


class _StrategyBase:
    """Shared bookkeeping: the spec and every identity the adversary controls."""

    def __init__(self, spec: AdversarySpec) -> None:
        self.spec = spec
        self.attacker_ids: list[PeerId] = []

    def option(self, key: str, default: float) -> float:
        return self.spec.option(key, default)

    def install(self, sim, time: float) -> None:  # pragma: no cover - override
        pass

    def act(self, sim, time: float) -> None:  # pragma: no cover - override
        pass


@register_adversary(
    "sybil_swarm",
    description="waves of throwaway freerider identities flood admission",
    knobs=("service_quality", "waves"),
)
class SybilSwarmStrategy(_StrategyBase):
    """Sybil flood: many cheap identities, all through the real front door."""

    def __init__(self, spec: AdversarySpec) -> None:
        super().__init__(spec)
        self.waves_sent = 0

    def _send_wave(self, sim, time: float) -> None:
        quality = self.option("service_quality", 0.05)
        for _ in range(self.spec.count):
            sybil = sim.inject_arrival(FreeriderBehavior(service_quality=quality))
            self.attacker_ids.append(sybil.peer_id)
        self.waves_sent += 1

    def install(self, sim, time: float) -> None:
        self._send_wave(sim, time)

    def act(self, sim, time: float) -> None:
        if self.waves_sent < int(self.option("waves", 3)):
            self._send_wave(sim, time)


@register_adversary(
    "collusion_ring",
    description="colluders inflate a freeriding accomplice; oscillate service",
    knobs=(
        "accomplice_reputation",
        "colluder_reputation",
        "freerider_quality",
        "high_quality",
        "low_quality",
        "oscillate",
    ),
)
class CollusionRingStrategy(_StrategyBase):
    """Collusion ring: ``count - 1`` colluders prop up one freerider."""

    def __init__(self, spec: AdversarySpec) -> None:
        super().__init__(spec)
        self.accomplice_id: PeerId | None = None
        self.colluder_ids: list[PeerId] = []
        self._milking = False

    def install(self, sim, time: float) -> None:
        accomplice = sim.add_member(
            FreeriderBehavior(service_quality=self.option("freerider_quality", 0.05)),
            initial_reputation=self.option("accomplice_reputation", 0.5),
        )
        self.accomplice_id = accomplice.peer_id
        self.attacker_ids.append(accomplice.peer_id)
        ring_ids = {accomplice.peer_id}
        colluders = []
        for _ in range(self.spec.count - 1):
            colluder = sim.add_member(
                ColluderBehavior(ring=set(ring_ids)),
                introducer_policy=NaivePolicy(),
                initial_reputation=self.option("colluder_reputation", 1.0),
            )
            ring_ids.add(colluder.peer_id)
            colluders.append(colluder)
        for colluder in colluders:
            colluder.behavior.ring = frozenset(ring_ids)
        self.colluder_ids = [colluder.peer_id for colluder in colluders]
        self.attacker_ids.extend(self.colluder_ids)

    def act(self, sim, time: float) -> None:
        if not self.option("oscillate", 1.0):
            return
        self._milking = not self._milking
        quality = (
            self.option("low_quality", 0.05)
            if self._milking
            else self.option("high_quality", 0.95)
        )
        for colluder_id in self.colluder_ids:
            sim.population.get(colluder_id).behavior.service_quality = quality


@register_adversary(
    "slander",
    description="well-serving insiders bad-mouth every transaction partner",
    knobs=("service_quality", "initial_reputation"),
)
class SlanderStrategy(_StrategyBase):
    """Bad-mouthing: trusted insiders file only negative feedback."""

    def install(self, sim, time: float) -> None:
        quality = self.option("service_quality", 0.95)
        standing = self.option("initial_reputation", 1.0)
        for _ in range(self.spec.count):
            slanderer = sim.add_member(
                SlandererBehavior(service_quality=quality),
                initial_reputation=standing,
            )
            self.attacker_ids.append(slanderer.peer_id)


@dataclass(frozen=True)
class WhitewashRebirth:
    """One identity discard: who burned, what both identities were worth."""

    time: float
    burned: PeerId
    burned_reputation: float
    fresh: PeerId
    fresh_reputation: float
    identities_used: int = field(default=2)


@register_adversary(
    "whitewash_waves",
    description="burned identities depart and re-enter admission as strangers",
    knobs=("burn_threshold", "service_quality", "initial_reputation"),
)
class WhitewashWavesStrategy(_StrategyBase):
    """Coordinated whitewashing: freeride, burn, discard, re-enter."""

    def __init__(self, spec: AdversarySpec) -> None:
        super().__init__(spec)
        #: Identities currently carrying the attack (active, waiting or dead).
        self.current_ids: list[PeerId] = []
        self.rebirths: list[WhitewashRebirth] = []

    def _behavior(self) -> WhitewasherBehavior:
        return WhitewasherBehavior(
            service_quality=self.option("service_quality", 0.05)
        )

    def install(self, sim, time: float) -> None:
        standing = self.option("initial_reputation", 0.5)
        for _ in range(self.spec.count):
            washer = sim.add_member(self._behavior(), initial_reputation=standing)
            self.attacker_ids.append(washer.peer_id)
            self.current_ids.append(washer.peer_id)

    def _rebirth(self, sim, peer_id: PeerId, position: int, time: float) -> None:
        burned = sim.population.get(peer_id)
        burned_reputation = sim.store.global_reputation(peer_id)
        if burned.is_active:
            sim.schedule_departure(peer_id, time)
        behavior = self._behavior()
        behavior.identities_used = burned.behavior.identities_used + 1
        fresh = sim.inject_arrival(behavior)
        self.attacker_ids.append(fresh.peer_id)
        self.current_ids[position] = fresh.peer_id
        self.rebirths.append(
            WhitewashRebirth(
                time=time,
                burned=peer_id,
                burned_reputation=burned_reputation,
                fresh=fresh.peer_id,
                fresh_reputation=sim.store.global_reputation(fresh.peer_id),
                identities_used=behavior.identities_used,
            )
        )

    def act(self, sim, time: float) -> None:
        threshold = self.option("burn_threshold", 0.3)
        for position, peer_id in enumerate(list(self.current_ids)):
            peer = sim.population.get(peer_id)
            if peer.is_active:
                if sim.store.global_reputation(peer_id) < threshold:
                    self._rebirth(sim, peer_id, position, time)
            elif peer.status == PeerStatus.REJECTED:
                # The fresh identity was refused admission: discard it too and
                # try again — identities are free, that is the whole attack.
                self._rebirth(sim, peer_id, position, time)
            # WAITING identities sit out the waiting period; DEPARTED slots
            # were already replaced when their rebirth was recorded.


@register_adversary(
    "churn_storm",
    description="join/leave bursts stressing targeted overlay invalidation",
    knobs=("service_quality",),
)
class ChurnStormStrategy(_StrategyBase):
    """Membership-churn load: each act departs and injects ``count`` peers."""

    def __init__(self, spec: AdversarySpec) -> None:
        super().__init__(spec)
        self.departures_requested = 0
        self.joins_injected = 0

    def act(self, sim, time: float) -> None:
        rng = sim.streams.stream("adversary")
        active_ids = sim.population.active_ids
        # Departures match the join burst: redraw on duplicate picks (bounded
        # so a tiny community cannot loop forever).  Draws are deterministic,
        # so so is the redraw sequence.
        burst = min(self.spec.count, len(active_ids))
        chosen: list[PeerId] = []
        seen: set[PeerId] = set()
        attempts = 0
        while len(chosen) < burst and attempts < 8 * self.spec.count:
            attempts += 1
            candidate = active_ids[int(rng.integers(len(active_ids)))]
            if candidate not in seen:
                seen.add(candidate)
                chosen.append(candidate)
        for peer_id in chosen:
            sim.schedule_departure(peer_id, time)
            self.departures_requested += 1
        quality = self.option(
            "service_quality", sim.params.cooperative_service_quality
        )
        for _ in range(self.spec.count):
            joiner = sim.add_member(
                CooperativeBehavior(service_quality=quality),
                initial_reputation=sim.params.initial_member_reputation,
            )
            self.attacker_ids.append(joiner.peer_id)
            self.joins_injected += 1
