"""Pairwise tit-for-tat credit (the BitTorrent/Scrivener family).

No global reputation at all: every pair of peers keeps a bilateral balance of
favours.  A peer serves another only while the partner's debt stays within an
allowance — BitTorrent's unchoking and Scrivener's credit limits are both
instances.  Newcomers have a zero balance everywhere and depend entirely on
the altruistic allowance (BitTorrent's optimistic unchoke slot), which is the
"small amount of initial credit" the paper contrasts its mechanism with.
"""

from __future__ import annotations

from collections import defaultdict

from ..ids import PeerId
from .base import ReputationSystem

__all__ = ["TitForTatCredit"]


class TitForTatCredit(ReputationSystem):
    """Bilateral favour balances with a fixed newcomer allowance."""

    name = "tit_for_tat"

    def __init__(self, allowance: float = 2.0) -> None:
        """``allowance`` is how far into debt a partner may go and still be served."""
        super().__init__()
        if allowance < 0:
            raise ValueError("allowance must be non-negative")
        self.allowance = allowance
        #: balance[(a, b)] > 0 means b owes a (a served b more than b served a).
        self._balance: dict[tuple[PeerId, PeerId], float] = defaultdict(float)

    def record_interaction(
        self, rater: PeerId, subject: PeerId, satisfied: bool
    ) -> None:
        """A satisfied interaction means ``subject`` served ``rater`` well."""
        super().record_interaction(rater, subject, satisfied)
        if satisfied:
            # subject provided a favour to rater: rater now owes subject.
            self._balance[(subject, rater)] += 1.0
            self._balance[(rater, subject)] -= 1.0

    def balance(self, creditor: PeerId, debtor: PeerId) -> float:
        """How much ``debtor`` owes ``creditor`` (negative when it is owed)."""
        return self._balance[(creditor, debtor)]

    def would_serve(self, server: PeerId, requester: PeerId) -> bool:
        """BitTorrent-style decision: serve while the debt is within allowance."""
        return self.balance(server, requester) <= self.allowance

    def score_table(self) -> dict[PeerId, float]:
        """All scores from one pass over the observed balances.

        Unseen pairs have a zero balance (within any allowance), so only the
        recorded balances can push a debtor over the limit: counting those
        per debtor reproduces :meth:`score` in O(observed pairs) instead of
        O(peers²).
        """
        peers = self.log.peers
        if not peers:
            return {}
        over_limit: dict[PeerId, int] = {}
        for (creditor, debtor), balance in self._balance.items():
            if balance > self.allowance and creditor != debtor:
                if creditor in peers and debtor in peers:
                    over_limit[debtor] = over_limit.get(debtor, 0) + 1
        others = len(peers) - 1
        if others <= 0:
            return {peer: 1.0 for peer in peers}
        return {
            peer: (others - over_limit.get(peer, 0)) / others for peer in peers
        }

    def score(self, peer: PeerId) -> float:
        """Fraction of peers in the log that would currently serve ``peer``.

        Gives the bilateral scheme a comparable [0, 1] "service availability"
        number: a well-behaved regular approaches 1, an over-drawn freerider
        approaches 0, and a newcomer gets exactly the altruistic baseline
        (everyone serves it because its balances are all zero).
        """
        others = [other for other in self.log.peers if other != peer]
        if not others:
            return 1.0
        served_by = sum(1 for other in others if self.would_serve(other, peer))
        return served_by / len(others)
