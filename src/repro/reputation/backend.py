"""The pluggable reputation-backend layer.

:class:`ReputationBackend` is the protocol the simulation engine — and every
subsystem that used to talk to the ROCQ store directly (lending, admission,
transactions, metrics) — programs against.  It captures exactly the surface
the engine exercises:

* **queries** — ``global_reputation``, ``has_any_record``,
  ``newcomer_reputation``;
* **updates** — ``submit_report`` (feedback after a transaction),
  ``apply_adjustment`` (lending debits/credits, audit settlements,
  sanctions), ``set_reputation`` (bootstrap installs);
* **membership** — ``membership_changed`` (a structured
  :class:`~repro.overlay.membership.MembershipChange` describing the single
  join/leave and the ring arc that moved, enabling targeted cache
  invalidation), ``invalidate_assignments`` (the blanket fallback), plus the
  churn hooks of :class:`repro.overlay.churn.ReputationStoreProtocol` so
  replicated backends survive manager departures.  Engines should deliver
  changes through :func:`notify_membership_change`, which falls back to
  ``invalidate_assignments`` for backends that predate the structured hook.

The module also hosts the **scheme registry**: a name → factory mapping that
builds a backend from a :class:`~repro.config.SimulationParameters`.  The
orchestrator holds the scheme *name* (through ``params.reputation_scheme``)
rather than a concrete instance, so every run spec — and therefore the run
cache fingerprint — pins down which backend produced its results.

``rocq`` builds the paper's replicated score-manager store; the remaining
names wrap the baseline systems of this package in
:class:`~repro.reputation.adapters.LogReputationBackend` so EigenTrust,
beta reputation, tit-for-tat credit, complaints-based trust and
positive-only reputation all run inside the full discrete-event simulation
(churn, arrivals, lending, whitewashers, colluders) instead of only against
the synthetic offline trace of :mod:`repro.reputation.comparison`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Protocol, runtime_checkable

from ..config import REPUTATION_SCHEMES, SimulationParameters, parse_reputation_scheme
from ..errors import ConfigurationError
from ..ids import PeerId
from ..overlay.membership import MembershipChange
from ..rocq.protocol import FeedbackReport, ReputationAdjustment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from ..overlay.assignment import ScoreManagerAssignment

__all__ = [
    "ReputationBackend",
    "BackendFactory",
    "register_backend",
    "available_schemes",
    "scheme_catalogue",
    "make_reputation_backend",
    "notify_membership_change",
    "backend_state_digest",
]


@runtime_checkable
class ReputationBackend(Protocol):
    """What the simulation engine requires of a reputation system.

    Implementations additionally expose a ``scheme`` string naming the
    registry entry they belong to (kept out of the protocol so structural
    ``isinstance`` checks stay method-based).
    """

    # -- queries -------------------------------------------------------- #
    def global_reputation(self, subject: PeerId) -> float:
        """Current reputation of ``subject`` in [0, 1]."""
        ...

    def has_any_record(self, subject: PeerId) -> bool:
        """Whether the backend holds any evidence about ``subject``."""
        ...

    def newcomer_reputation(self) -> float:
        """Reputation of a peer the backend has never heard of."""
        ...

    # -- updates -------------------------------------------------------- #
    def submit_report(self, report: FeedbackReport) -> float:
        """Fold one feedback report in; return the subject's new reputation."""
        ...

    def apply_adjustment(self, adjustment: ReputationAdjustment) -> float:
        """Apply a direct adjustment; return the amount actually applied."""
        ...

    def set_reputation(self, subject: PeerId, value: float, time: float = 0.0) -> None:
        """Install an explicit reputation (founders, bootstrap grants)."""
        ...

    # -- membership / churn -------------------------------------------- #
    def membership_changed(self, change: MembershipChange | None) -> None:
        """React to one described overlay join/leave.

        ``change`` names the moved peer and the ring arc whose responsibility
        changed hands, so backends that cache per-subject state keyed by ring
        position can invalidate selectively.  Backends without such caches
        treat this as a no-op; a ``None`` change (no structured information)
        must degrade to :meth:`invalidate_assignments`.
        """
        ...

    def invalidate_assignments(self) -> None:
        """React to an unscoped overlay membership change (may be a no-op)."""
        ...

    def tracked_peers(self, manager_id: PeerId) -> Iterable[PeerId]:
        """Peers whose reputation ``manager_id`` currently stores."""
        ...

    def export_record(self, manager_id: PeerId, subject_id: PeerId) -> object | None:
        """Return the stored record (opaque to callers), or ``None``."""
        ...

    def install_record(
        self, manager_id: PeerId, subject_id: PeerId, record: object
    ) -> None:
        """Install a migrated record at a new manager."""
        ...

    def drop_manager(self, manager_id: PeerId) -> None:
        """Forget all records held by a departed manager."""
        ...


def notify_membership_change(
    backend: ReputationBackend, change: MembershipChange | None
) -> None:
    """Deliver one overlay membership change to ``backend``.

    The default path for every engine-side caller: backends implementing the
    structured ``membership_changed`` hook get the change object (and can
    invalidate selectively); anything else — including third-party backends
    written against the pre-hook protocol — falls back to the historical
    blanket ``invalidate_assignments()``, which is always safe.

    ``change=None`` means "the ring changed but nobody recorded how" and is
    delivered as a full invalidation either way.
    """
    handler = getattr(backend, "membership_changed", None)
    if handler is not None:
        handler(change)
    else:
        backend.invalidate_assignments()


def backend_state_digest(backend: ReputationBackend) -> str:
    """Digest of a backend's mutable state, for trace divergence bisection.

    Both built-in backends implement ``state_digest()``; like
    :func:`notify_membership_change`, this helper keeps the *protocol*
    untouched so third-party (and test-fake) backends written against it
    keep working — for those the digest degrades to the empty string,
    meaning "no backend state visibility", which the trace differ treats
    as always-equal.
    """
    method = getattr(backend, "state_digest", None)
    if method is None:
        return ""
    return str(method())


#: A factory builds a backend from resolved parameters plus the overlay's
#: score-manager assignment (``None`` for backends that do not replicate).
BackendFactory = Callable[
    [SimulationParameters, "ScoreManagerAssignment | None"], ReputationBackend
]

_FACTORIES: dict[str, BackendFactory] = {}


def register_backend(scheme: str) -> Callable[[BackendFactory], BackendFactory]:
    """Class/function decorator registering a factory under ``scheme``."""

    def decorator(factory: BackendFactory) -> BackendFactory:
        _FACTORIES[scheme] = factory
        return factory

    return decorator


#: One-line description per scheme, surfaced by the unified catalogue
#: (``python -m repro catalogue schemes``) alongside the scenario, adversary
#: and experiment registries.
_DESCRIPTIONS: dict[str, str] = {
    "rocq": "the paper's scheme: replicated score managers, credibility-weighted",
    "eigentrust": "EigenTrust global trust via power iteration over the report log",
    "beta": "beta reputation: two-sided Bayesian feedback counts",
    "tit_for_tat": "bilateral tit-for-tat credit balances (BitTorrent-style)",
    "complaints": "complaints-based trust: only negative feedback counts",
    "positive_only": "positive-only feedback totals (eBay-style)",
}


def available_schemes() -> tuple[str, ...]:
    """Every scheme name a backend factory is registered for."""
    return tuple(_FACTORIES)


def scheme_catalogue() -> dict[str, str]:
    """Name → one-line description for every registered backend factory."""
    return {name: _DESCRIPTIONS.get(name, name) for name in _FACTORIES}


def make_reputation_backend(
    params: SimulationParameters,
    assignment: "ScoreManagerAssignment | None" = None,
) -> ReputationBackend:
    """Build the backend ``params.reputation_scheme`` names.

    ``assignment`` is required by replicated backends (``rocq``); the
    log-based baselines ignore it.
    """
    scheme = parse_reputation_scheme(params.reputation_scheme)
    factory = _FACTORIES.get(scheme)
    if factory is None:  # pragma: no cover - config validation catches first
        raise ConfigurationError(
            f"no backend factory registered for scheme {scheme!r}; "
            f"known: {sorted(_FACTORIES)}"
        )
    return factory(params, assignment)


# --------------------------------------------------------------------- #
# Built-in factories                                                      #
# --------------------------------------------------------------------- #
@register_backend("rocq")
def _make_rocq(
    params: SimulationParameters, assignment: "ScoreManagerAssignment | None"
) -> ReputationBackend:
    from ..rocq.store import ReputationStore

    if assignment is None:
        raise ConfigurationError(
            "the rocq backend replicates records across score managers and "
            "needs the overlay's ScoreManagerAssignment"
        )
    return ReputationStore(
        assignment=assignment,
        initial_credibility=params.rocq_initial_credibility,
        credibility_gain=params.rocq_credibility_gain,
        opinion_smoothing=params.rocq_opinion_smoothing,
        use_credibility=params.rocq_use_credibility,
        use_quality=params.rocq_use_quality,
    )


@register_backend("eigentrust")
def _make_eigentrust(
    params: SimulationParameters, assignment: "ScoreManagerAssignment | None"
) -> ReputationBackend:
    from .adapters import LogReputationBackend
    from .eigentrust import EigenTrust

    # Power iteration is global work: recompute the score table every 50
    # reports (periodic recomputation is how deployed EigenTrust runs too).
    return LogReputationBackend(EigenTrust(), scheme="eigentrust", refresh_every=50)


@register_backend("beta")
def _make_beta(
    params: SimulationParameters, assignment: "ScoreManagerAssignment | None"
) -> ReputationBackend:
    from .adapters import LogReputationBackend
    from .beta import BetaReputation

    return LogReputationBackend(BetaReputation(), scheme="beta")


@register_backend("tit_for_tat")
def _make_tit_for_tat(
    params: SimulationParameters, assignment: "ScoreManagerAssignment | None"
) -> ReputationBackend:
    from .adapters import LogReputationBackend
    from .tit_for_tat import TitForTatCredit

    return LogReputationBackend(
        TitForTatCredit(), scheme="tit_for_tat", refresh_every=25
    )


@register_backend("complaints")
def _make_complaints(
    params: SimulationParameters, assignment: "ScoreManagerAssignment | None"
) -> ReputationBackend:
    from .adapters import LogReputationBackend
    from .complaints import ComplaintsBasedTrust

    return LogReputationBackend(ComplaintsBasedTrust(), scheme="complaints")


@register_backend("positive_only")
def _make_positive_only(
    params: SimulationParameters, assignment: "ScoreManagerAssignment | None"
) -> ReputationBackend:
    from .adapters import LogReputationBackend
    from .positive_only import PositiveOnlyReputation

    return LogReputationBackend(PositiveOnlyReputation(), scheme="positive_only")


# Every scheme the configuration layer accepts must be buildable.
assert set(REPUTATION_SCHEMES) == set(_FACTORIES), (
    "config.REPUTATION_SCHEMES and the backend registry drifted apart: "
    f"{sorted(REPUTATION_SCHEMES)} vs {sorted(_FACTORIES)}"
)
