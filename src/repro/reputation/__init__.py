"""Baseline reputation systems from the paper's related-work discussion.

The paper positions reputation lending against three families of systems
(§1, §5): complaints-based trust (only negative feedback, newcomers trusted
by default), positive-only feedback (newcomers start at the bottom), and
schemes counting both (newcomers start in the middle), plus credit/barter
mechanisms such as BitTorrent's tit-for-tat and EigenTrust's global trust
vector.  This package implements those baselines behind a single
:class:`~repro.reputation.base.ReputationSystem` interface so the newcomer
bootstrap problem can be studied side by side with the lending mechanism
(see :mod:`repro.reputation.comparison`).

The systems operate on explicit interaction logs; through the pluggable
backend layer (:mod:`repro.reputation.backend` and the adapters in
:mod:`repro.reputation.adapters`) every one of them can additionally be run
*inside* the full discrete-event simulation — churn, arrivals, lending,
whitewashers, colluders — by setting
``SimulationParameters.reputation_scheme``.
"""

from .base import InteractionLog, ReputationSystem
from .eigentrust import EigenTrust
from .complaints import ComplaintsBasedTrust
from .positive_only import PositiveOnlyReputation
from .beta import BetaReputation
from .tit_for_tat import TitForTatCredit
from .comparison import NewcomerReport, compare_newcomer_treatment
from .backend import (
    ReputationBackend,
    available_schemes,
    make_reputation_backend,
    register_backend,
)
from .adapters import LogReputationBackend

__all__ = [
    "InteractionLog",
    "ReputationSystem",
    "EigenTrust",
    "ComplaintsBasedTrust",
    "PositiveOnlyReputation",
    "BetaReputation",
    "TitForTatCredit",
    "NewcomerReport",
    "compare_newcomer_treatment",
    "ReputationBackend",
    "LogReputationBackend",
    "available_schemes",
    "make_reputation_backend",
    "register_backend",
]
