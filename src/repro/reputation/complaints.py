"""Complaints-based trust (Aberer & Despotovic, CIKM 2001).

Only *negative* feedback is recorded: a peer files a complaint when a
transaction went badly.  Trust is assessed from the product of complaints
received and complaints filed (an agent that complains about everyone is as
suspect as one everyone complains about); a peer with no complaints — in
particular every newcomer — is fully trusted.

This is the paper's example of the first newcomer policy ("give the benefit
of the doubt"), and the reason whitewashing works against such systems.
"""

from __future__ import annotations

from ..ids import PeerId
from .base import ReputationSystem

__all__ = ["ComplaintsBasedTrust"]


class ComplaintsBasedTrust(ReputationSystem):
    """Trust from complaint counts; newcomers are fully trusted."""

    name = "complaints"

    def __init__(self, distrust_threshold: float = 4.0) -> None:
        super().__init__()
        if distrust_threshold <= 0:
            raise ValueError("distrust_threshold must be positive")
        self.distrust_threshold = distrust_threshold

    def complaint_product(self, peer: PeerId) -> float:
        """cr(p) * cf(p): complaints received times complaints filed (plus one).

        The +1 terms keep the product meaningful when one of the counts is
        zero, following the decision rule used in the P-Grid work.
        """
        received = self.log.negatives_about(peer)
        filed = self.log.complaints_by(peer)
        return float((received + 1) * (filed + 1)) - 1.0

    def score(self, peer: PeerId) -> float:
        """Map the complaint product onto [0, 1]; no complaints means 1."""
        product = self.complaint_product(peer)
        return self.distrust_threshold / (self.distrust_threshold + product)

    def is_trustworthy(self, peer: PeerId) -> bool:
        """The binary decision the original system makes."""
        return self.complaint_product(peer) <= self.distrust_threshold
