"""Positive-only reputation.

Only satisfactory interactions earn credit; a newcomer starts at the very
bottom, indistinguishable from a peer that has misbehaved forever.  This is
the paper's second newcomer policy and the one that freezes new entrants out
of the community — the problem reputation lending solves.
"""

from __future__ import annotations

from ..ids import PeerId
from .base import ReputationSystem

__all__ = ["PositiveOnlyReputation"]


class PositiveOnlyReputation(ReputationSystem):
    """Score grows (saturating) with the number of positive reports."""

    name = "positive_only"

    def __init__(self, half_life: float = 10.0) -> None:
        """``half_life`` positive reports put a peer halfway to a score of 1."""
        super().__init__()
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life

    def score(self, peer: PeerId) -> float:
        positives = self.log.positives_about(peer)
        return positives / (positives + self.half_life)
