"""Adapters that run the log-based baseline systems inside the simulator.

The baseline :class:`~repro.reputation.base.ReputationSystem` implementations
consume a log of rated interactions and produce a score per peer — nothing
more.  The engine, however, speaks the richer
:class:`~repro.reputation.backend.ReputationBackend` protocol: it installs
founder reputations, applies lending debits/credits and sanctions, and asks
for reputations on every transaction.  :class:`LogReputationBackend` bridges
the two:

* feedback reports are folded into the wrapped system's interaction log
  (``value >= 0.5`` counts as a satisfied interaction, matching how the
  simulator's behaviours encode honesty and collusion in report values);
* direct adjustments — which the baseline schemes have no native notion of —
  are tracked as a per-peer **credit ledger** added on top of the scheme's
  own score, so reputation lending remains expressible against any backend;
* ``set_reputation`` pins the *current* total to the requested value by
  solving for the credit, after which the scheme's own dynamics move the
  reputation again;
* expensive schemes refresh their score table every ``refresh_every``
  reports instead of per query (EigenTrust's power iteration, tit-for-tat's
  pairwise scan), trading bounded staleness for per-transaction O(1) cost.

Churn hooks are no-ops: the baselines model a centralised log, so there are
no per-manager replicas to migrate.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from ..errors import PersistenceError
from ..ids import PeerId
from ..rocq.protocol import FeedbackReport, ReputationAdjustment
from .base import ReputationSystem

__all__ = ["LogReputationBackend", "native_newcomer_reputation"]


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


def native_newcomer_reputation(base, scheme: str) -> float:
    """What ``scheme`` itself would grant a complete stranger.

    Builds a throwaway backend for ``scheme`` from ``base`` (a
    :class:`~repro.config.SimulationParameters`) and asks it for its
    newcomer reputation.  Used by the cross-scheme experiments to run each
    baseline under open admission at *its own* bootstrap score, so the
    paper's §1 taxonomy is reproduced by the schemes rather than by
    construction.  Only meaningful for the log-based baselines: ``rocq``
    replicates across score managers and is rejected by its factory when no
    assignment is supplied.
    """
    from .backend import make_reputation_backend

    probe = base.with_overrides(reputation_scheme=scheme)
    return make_reputation_backend(probe, assignment=None).newcomer_reputation()


class LogReputationBackend:
    """A :class:`ReputationSystem` adapted to the ``ReputationBackend`` protocol.

    Parameters
    ----------
    system:
        The wrapped baseline reputation system.
    scheme:
        Registry name reported to callers (defaults to ``system.name``).
    refresh_every:
        Recompute the cached score table after this many reports.  ``1``
        selects the *live* path: scores are computed on demand straight from
        the system, which is the right choice for systems whose per-peer
        score is O(1).
    """

    def __init__(
        self,
        system: ReputationSystem,
        scheme: str | None = None,
        refresh_every: int = 1,
    ) -> None:
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        self.system = system
        self.scheme = scheme if scheme is not None else system.name
        self.refresh_every = refresh_every
        self._credit: dict[PeerId, float] = {}
        self._table: dict[PeerId, float] = {}
        self._reports_since_refresh = 0
        # The score of a peer absent from the log never depends on the log's
        # contents for any of the shipped systems, so it is computed once.
        self._newcomer = _clamp(system.newcomer_score())
        self.reports_delivered = 0
        self.adjustments_delivered = 0

    # ------------------------------------------------------------------ #
    # Scores                                                               #
    # ------------------------------------------------------------------ #
    def _base_score(self, subject: PeerId) -> float:
        """The wrapped system's own score for ``subject`` (possibly cached)."""
        if self.refresh_every == 1:
            if subject in self.system.log.peers:
                return self.system.score(subject)
            return self._newcomer
        if self._reports_since_refresh >= self.refresh_every:
            self._table = self.system.score_table()
            self._reports_since_refresh = 0
        return self._table.get(subject, self._newcomer)

    def global_reputation(self, subject: PeerId) -> float:
        """Scheme score plus the adjustment credit, clamped to [0, 1]."""
        return _clamp(self._base_score(subject) + self._credit.get(subject, 0.0))

    def newcomer_reputation(self) -> float:
        """The scheme's bootstrap score for a complete stranger."""
        return self._newcomer

    def has_any_record(self, subject: PeerId) -> bool:
        """Known from the log, or touched by an adjustment/bootstrap."""
        return subject in self.system.log.peers or subject in self._credit

    def replica_values(self, subject: PeerId) -> list[float]:
        """Single-replica view, mirroring the ROCQ store's divergence API."""
        if not self.has_any_record(subject):
            return []
        return [self.global_reputation(subject)]

    # ------------------------------------------------------------------ #
    # Updates                                                              #
    # ------------------------------------------------------------------ #
    def submit_report(self, report: FeedbackReport) -> float:
        """Fold the report into the wrapped system's interaction log."""
        self.system.record_interaction(
            report.reporter, report.subject, satisfied=report.value >= 0.5
        )
        self.reports_delivered += 1
        self._reports_since_refresh += 1
        return self.global_reputation(report.subject)

    def submit_report_batch(self, reports) -> None:
        """Deliver a batch of reports, in order.

        A centralised log has no per-manager fan-out to coalesce, and
        :meth:`submit_report` deliberately queries the subject's reputation
        afterwards — the query is what advances the ``refresh_every``
        staleness clock.  The batch hook therefore submits sequentially, so
        score-table refreshes land on exactly the same report as before.
        """
        for report in reports:
            self.submit_report(report)

    def apply_adjustment(self, adjustment: ReputationAdjustment) -> float:
        """Move the subject's credit; return the delta actually applied.

        Like the ROCQ store, the applied amount respects the [0, 1] range of
        the *total* reputation: a debit cannot push it below zero and a
        credit cannot push it above one.  The stored credit is re-solved
        against the current base score (not merely incremented), so no
        hidden surplus survives the clamp — immediately after the call the
        total equals the clamped target exactly.
        """
        base = self._base_score(adjustment.subject)
        before = _clamp(base + self._credit.get(adjustment.subject, 0.0))
        target = _clamp(before + adjustment.delta)
        self._credit[adjustment.subject] = target - base
        self.adjustments_delivered += 1
        return target - before

    def set_reputation(self, subject: PeerId, value: float, time: float = 0.0) -> None:
        """Pin the current total to ``value`` by solving for the credit."""
        self._credit[subject] = value - self._base_score(subject)

    # ------------------------------------------------------------------ #
    # Membership / churn protocol (no replicas to maintain)                #
    # ------------------------------------------------------------------ #
    def membership_changed(self, change: object | None = None) -> None:
        """A centralised log has no ring-keyed caches — nothing to evict."""
        return None

    def invalidate_assignments(self) -> None:
        return None

    def tracked_peers(self, manager_id: PeerId) -> Iterable[PeerId]:
        return ()

    def export_record(self, manager_id: PeerId, subject_id: PeerId) -> object | None:
        return None

    def install_record(
        self, manager_id: PeerId, subject_id: PeerId, record: object
    ) -> None:
        return None

    def drop_manager(self, manager_id: PeerId) -> None:
        return None

    # ------------------------------------------------------------------ #
    # State digest (trace divergence bisection)                            #
    # ------------------------------------------------------------------ #
    def state_digest(self) -> str:
        """Deterministic digest of the interaction log and credit ledger.

        Zero-count log entries (artefacts of :class:`defaultdict` reads)
        are skipped so the digest reflects recorded interactions only.
        """
        parts = hashlib.sha256()
        for subject in sorted(self._credit):
            parts.update(f"|k{subject}:{self._credit[subject]!r}".encode("ascii"))
        log = self.system.log
        for side, counters in (("p", log.positive), ("n", log.negative)):
            for key in sorted(counters):
                count = counters[key]
                if count:
                    parts.update(f"|{side}{key!r}:{count}".encode("ascii"))
        parts.update(
            f"|r{self.reports_delivered}a{self.adjustments_delivered}"
            f"s{self._reports_since_refresh}".encode("ascii")
        )
        return parts.hexdigest()

    # ------------------------------------------------------------------ #
    # Durable persistence (repro.storage)                                  #
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot covering everything :meth:`state_digest`
        hashes.

        JSON floats round-trip exactly (serialised via ``repr``, parsed via
        ``float``), so a save → load → :meth:`restore_state` cycle
        reproduces the digest bit-for-bit.  Zero-count log entries —
        :class:`~collections.defaultdict` read artefacts that the digest
        already skips — are dropped here too.
        """
        log = self.system.log
        positive = [
            [int(reporter), int(subject), int(count)]
            for (reporter, subject), count in sorted(log.positive.items())
            if count
        ]
        negative = [
            [int(reporter), int(subject), int(count)]
            for (reporter, subject), count in sorted(log.negative.items())
            if count
        ]
        return {
            "scheme": self.scheme,
            "positive": positive,
            "negative": negative,
            "peers": sorted(int(peer) for peer in log.peers),
            "credit": {str(peer): value for peer, value in self._credit.items()},
            "table": {str(peer): value for peer, value in self._table.items()},
            "reports_since_refresh": self._reports_since_refresh,
            "reports_delivered": self.reports_delivered,
            "adjustments_delivered": self.adjustments_delivered,
        }

    def restore_state(self, payload: dict[str, Any]) -> None:
        """Rebuild from an :meth:`export_state` payload.

        Must be called on a **freshly constructed** backend: the recorded
        interactions are replayed through the wrapped system's own
        :meth:`~repro.reputation.base.ReputationSystem.record_interaction`,
        which is the only way to rebuild scheme-specific derived state
        (EigenTrust's dirty-row tracking, for example) without baking each
        scheme's internals into the snapshot format.  Replay order —
        sorted positives then sorted negatives — is deterministic, and the
        pairwise counters it produces are order-independent, so the restored
        :meth:`state_digest` matches the exported one exactly.
        """
        if (
            self.system.log.peers
            or self._credit
            or self.reports_delivered
            or self.adjustments_delivered
        ):
            raise PersistenceError(
                f"cannot restore scheme {self.scheme!r} state into a backend "
                "that has already processed reports or adjustments"
            )
        for reporter, subject, count in payload.get("positive", ()):
            for _ in range(int(count)):
                self.system.record_interaction(
                    int(reporter), int(subject), satisfied=True
                )
        for reporter, subject, count in payload.get("negative", ()):
            for _ in range(int(count)):
                self.system.record_interaction(
                    int(reporter), int(subject), satisfied=False
                )
        # Peers can be known without appearing in any counter (e.g. every
        # report about them was later zeroed out) — re-add them explicitly.
        self.system.log.peers.update(int(peer) for peer in payload.get("peers", ()))
        self._credit = {
            int(peer): float(value)
            for peer, value in payload.get("credit", {}).items()
        }
        self._table = {
            int(peer): float(value)
            for peer, value in payload.get("table", {}).items()
        }
        self._reports_since_refresh = int(payload.get("reports_since_refresh", 0))
        self.reports_delivered = int(payload.get("reports_delivered", 0))
        self.adjustments_delivered = int(payload.get("adjustments_delivered", 0))
