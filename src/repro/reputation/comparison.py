"""Side-by-side comparison of how baseline systems treat newcomers.

This module operationalises the taxonomy of §1 of the paper: feed every
baseline the same synthetic interaction trace (honest regulars, freeriders,
and a brand-new peer that nobody has interacted with) and report where the
newcomer lands relative to the established peers.  The paper's argument is
that every baseline either over-trusts the newcomer (inviting whitewashing)
or freezes it out (the bootstrap problem); reputation lending threads the
needle by making an existing member stake reputation on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ids import PeerId
from .base import ReputationSystem
from .beta import BetaReputation
from .complaints import ComplaintsBasedTrust
from .eigentrust import EigenTrust
from .positive_only import PositiveOnlyReputation
from .tit_for_tat import TitForTatCredit

__all__ = ["NewcomerReport", "default_systems", "compare_newcomer_treatment"]


@dataclass(frozen=True)
class NewcomerReport:
    """How one reputation system scores the three archetypes."""

    system: str
    honest_score: float
    freerider_score: float
    newcomer_score: float

    @property
    def newcomer_like_honest(self) -> bool:
        """Is the stranger closer to an honest regular than to a freerider?"""
        return abs(self.newcomer_score - self.honest_score) <= abs(
            self.newcomer_score - self.freerider_score
        )

    @property
    def separates_honest_from_freerider(self) -> bool:
        """Does the system at least distinguish regulars from freeriders?"""
        return self.honest_score > self.freerider_score


def default_systems() -> list[ReputationSystem]:
    """The baseline systems compared by default."""
    return [
        ComplaintsBasedTrust(),
        PositiveOnlyReputation(),
        BetaReputation(),
        EigenTrust(pre_trusted={0}),
        TitForTatCredit(),
    ]


def _synthetic_trace(
    systems: list[ReputationSystem],
    honest: list[PeerId],
    freeriders: list[PeerId],
    interactions: int,
    seed: int,
) -> None:
    """Feed the same random trace of rated interactions to every system."""
    rng = np.random.default_rng(seed)
    members = honest + freeriders
    for _ in range(interactions):
        rater, subject = rng.choice(members, size=2, replace=False)
        rater, subject = int(rater), int(subject)
        good_service = rng.random() < (0.95 if subject in honest else 0.05)
        for system in systems:
            system.record_interaction(rater, subject, good_service)


def compare_newcomer_treatment(
    num_honest: int = 8,
    num_freeriders: int = 3,
    interactions: int = 600,
    seed: int = 7,
    systems: list[ReputationSystem] | None = None,
) -> list[NewcomerReport]:
    """Run the comparison and return one report per system.

    The newcomer is a peer id that never appears in the trace, so each system
    scores it with whatever its bootstrap rule is.
    """
    systems = systems if systems is not None else default_systems()
    honest = list(range(num_honest))
    freeriders = list(range(num_honest, num_honest + num_freeriders))
    newcomer = num_honest + num_freeriders  # never interacts
    _synthetic_trace(systems, honest, freeriders, interactions, seed)
    reports = []
    for system in systems:
        honest_scores = [system.score(peer) for peer in honest]
        freerider_scores = [system.score(peer) for peer in freeriders]
        reports.append(
            NewcomerReport(
                system=system.name,
                honest_score=float(np.mean(honest_scores)),
                freerider_score=float(np.mean(freerider_scores)),
                newcomer_score=float(system.score(newcomer)),
            )
        )
    return reports
