"""Beta reputation (Jøsang & Ismail, 2002) — both feedback polarities count.

The reputation of a peer is the expected value of a Beta(α, β) distribution
with α = positives + 1 and β = negatives + 1.  A newcomer sits exactly in the
middle (0.5): the paper's third newcomer policy, where a fresh identity is
"treated at par with a peer who behaves honestly and dishonestly roughly the
same proportion of time".
"""

from __future__ import annotations

from ..ids import PeerId
from .base import ReputationSystem

__all__ = ["BetaReputation"]


class BetaReputation(ReputationSystem):
    """Expected value of the Beta posterior over a peer's behaviour."""

    name = "beta"

    def __init__(self, forgetting: float = 1.0) -> None:
        """``forgetting`` < 1 discounts old evidence (1.0 keeps everything)."""
        super().__init__()
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be within (0, 1]")
        self.forgetting = forgetting

    def score(self, peer: PeerId) -> float:
        positives = self.log.positives_about(peer) * self.forgetting
        negatives = self.log.negatives_about(peer) * self.forgetting
        return (positives + 1.0) / (positives + negatives + 2.0)

    def uncertainty(self, peer: PeerId) -> float:
        """How uncertain the estimate still is (1 for a complete stranger)."""
        total = self.log.positives_about(peer) + self.log.negatives_about(peer)
        return 2.0 / (total + 2.0)
