"""Common interface for the baseline reputation systems."""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass, field

from ..ids import PeerId

__all__ = ["InteractionLog", "ReputationSystem"]


@dataclass
class InteractionLog:
    """A raw log of rated interactions, shared by all baseline systems.

    Each entry is "``rater`` interacted with ``subject`` and was (or was not)
    satisfied".  The log keeps pairwise satisfaction counters, which is all
    the baseline systems need.
    """

    positive: dict[tuple[PeerId, PeerId], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    negative: dict[tuple[PeerId, PeerId], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    peers: set[PeerId] = field(default_factory=set)

    def record(self, rater: PeerId, subject: PeerId, satisfied: bool) -> None:
        """Add one rated interaction to the log."""
        self.peers.add(rater)
        self.peers.add(subject)
        key = (rater, subject)
        if satisfied:
            self.positive[key] += 1
        else:
            self.negative[key] += 1

    def positives_about(self, subject: PeerId) -> int:
        """Total satisfied interactions reported about ``subject``."""
        return sum(count for (_, s), count in self.positive.items() if s == subject)

    def negatives_about(self, subject: PeerId) -> int:
        """Total unsatisfied interactions reported about ``subject``."""
        return sum(count for (_, s), count in self.negative.items() if s == subject)

    def complaints_by(self, rater: PeerId) -> int:
        """Complaints filed by ``rater`` (used by complaints-based trust)."""
        return sum(count for (r, _), count in self.negative.items() if r == rater)

    def pair_counts(self, rater: PeerId, subject: PeerId) -> tuple[int, int]:
        """(positive, negative) counts for a specific rater/subject pair."""
        return self.positive[(rater, subject)], self.negative[(rater, subject)]


class ReputationSystem(abc.ABC):
    """A reputation system consuming an interaction log.

    Concrete systems differ in how they fold the log into a per-peer score in
    ``[0, 1]`` and — crucially for the paper's problem statement — in the
    score they assign to a peer nobody has interacted with yet.
    """

    #: Human-readable name used in comparison tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.log = InteractionLog()

    def record_interaction(
        self, rater: PeerId, subject: PeerId, satisfied: bool
    ) -> None:
        """Feed one rated interaction into the system."""
        self.log.record(rater, subject, satisfied)

    @abc.abstractmethod
    def score(self, peer: PeerId) -> float:
        """Current reputation of ``peer`` in ``[0, 1]``."""

    def newcomer_score(self) -> float:
        """Score of a peer that has never interacted (the bootstrap problem)."""
        return self.score(-1)

    def scores(self) -> dict[PeerId, float]:
        """Scores of every peer seen in the log."""
        return {peer: self.score(peer) for peer in sorted(self.log.peers)}
