"""Common interface for the baseline reputation systems."""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass, field

from ..ids import PeerId

__all__ = ["InteractionLog", "ReputationSystem"]


@dataclass
class InteractionLog:
    """A raw log of rated interactions, shared by all baseline systems.

    Each entry is "``rater`` interacted with ``subject`` and was (or was not)
    satisfied".  The log keeps pairwise satisfaction counters, which is all
    the baseline systems need.
    """

    positive: dict[tuple[PeerId, PeerId], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    negative: dict[tuple[PeerId, PeerId], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    peers: set[PeerId] = field(default_factory=set)
    # Per-peer aggregates maintained incrementally so the totals below are
    # O(1) — required once these systems run inside the simulation engine,
    # where they are queried on every transaction.  Derived state: rebuilt
    # from the pairwise dicts in __post_init__, never passed in.
    _positives_received: dict[PeerId, int] = field(
        init=False, repr=False, compare=False,
        default_factory=lambda: defaultdict(int),
    )
    _negatives_received: dict[PeerId, int] = field(
        init=False, repr=False, compare=False,
        default_factory=lambda: defaultdict(int),
    )
    _complaints_filed: dict[PeerId, int] = field(
        init=False, repr=False, compare=False,
        default_factory=lambda: defaultdict(int),
    )

    def __post_init__(self) -> None:
        for (_, subject), count in self.positive.items():
            self._positives_received[subject] += count
        for (rater, subject), count in self.negative.items():
            self._negatives_received[subject] += count
            self._complaints_filed[rater] += count

    def record(self, rater: PeerId, subject: PeerId, satisfied: bool) -> None:
        """Add one rated interaction to the log."""
        self.peers.add(rater)
        self.peers.add(subject)
        key = (rater, subject)
        if satisfied:
            self.positive[key] += 1
            self._positives_received[subject] += 1
        else:
            self.negative[key] += 1
            self._negatives_received[subject] += 1
            self._complaints_filed[rater] += 1

    def positives_about(self, subject: PeerId) -> int:
        """Total satisfied interactions reported about ``subject``."""
        return self._positives_received[subject]

    def negatives_about(self, subject: PeerId) -> int:
        """Total unsatisfied interactions reported about ``subject``."""
        return self._negatives_received[subject]

    def complaints_by(self, rater: PeerId) -> int:
        """Complaints filed by ``rater`` (used by complaints-based trust)."""
        return self._complaints_filed[rater]

    def pair_counts(self, rater: PeerId, subject: PeerId) -> tuple[int, int]:
        """(positive, negative) counts for a specific rater/subject pair."""
        return self.positive[(rater, subject)], self.negative[(rater, subject)]


class ReputationSystem(abc.ABC):
    """A reputation system consuming an interaction log.

    Concrete systems differ in how they fold the log into a per-peer score in
    ``[0, 1]`` and — crucially for the paper's problem statement — in the
    score they assign to a peer nobody has interacted with yet.
    """

    #: Human-readable name used in comparison tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.log = InteractionLog()

    def record_interaction(
        self, rater: PeerId, subject: PeerId, satisfied: bool
    ) -> None:
        """Feed one rated interaction into the system."""
        self.log.record(rater, subject, satisfied)

    @abc.abstractmethod
    def score(self, peer: PeerId) -> float:
        """Current reputation of ``peer`` in ``[0, 1]``."""

    def newcomer_score(self) -> float:
        """Score of a peer that has never interacted (the bootstrap problem)."""
        return self.score(-1)

    def scores(self) -> dict[PeerId, float]:
        """Scores of every peer seen in the log."""
        return {peer: self.score(peer) for peer in sorted(self.log.peers)}

    def score_table(self) -> dict[PeerId, float]:
        """Scores of every known peer, computed as one batch.

        Semantically identical to :meth:`scores` but overridable by systems
        whose per-peer :meth:`score` repeats global work (EigenTrust's power
        iteration, tit-for-tat's pairwise scan); the simulation adapter in
        :mod:`repro.reputation.adapters` refreshes its cache through this
        hook.
        """
        return self.scores()
