"""EigenTrust (Kamvar, Schlosser, Garcia-Molina, WWW 2003).

Each peer i normalises its local trust values ``c_ij`` (satisfactory minus
unsatisfactory interactions, floored at zero) and the global trust vector is
the stationary distribution of the resulting matrix, computed by power
iteration with a damping factor towards a set of pre-trusted peers — exactly
the PageRank-style construction of the original paper.

Newcomers have no incoming local trust at all, so their global trust is the
damping mass spread over the pre-trusted set (zero unless they are
pre-trusted): EigenTrust is a "both feedback counts, newcomer near the
bottom" system in the taxonomy of §1.
"""

from __future__ import annotations

import numpy as np

from ..ids import PeerId
from .base import ReputationSystem

__all__ = ["EigenTrust"]


class EigenTrust(ReputationSystem):
    """Global trust via power iteration over normalised local trust."""

    name = "eigentrust"

    def __init__(
        self,
        pre_trusted: set[PeerId] | None = None,
        damping: float = 0.15,
        max_iterations: int = 100,
        tolerance: float = 1e-10,
        full_recompute_every: int = 64,
    ) -> None:
        super().__init__()
        if not 0.0 <= damping <= 1.0:
            raise ValueError("damping must be within [0, 1]")
        if full_recompute_every < 1:
            raise ValueError("full_recompute_every must be >= 1")
        self.pre_trusted = set(pre_trusted) if pre_trusted else set()
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        #: Safety valve: :meth:`score_table` refreshes the cached matrix
        #: incrementally (dirty rows only), but every this-many refreshes it
        #: rebuilds from the raw log so any drift — e.g. a caller mutating
        #: :attr:`pre_trusted` in place — is bounded.
        self.full_recompute_every = full_recompute_every
        #: Last converged trust vector, reused to warm-start :meth:`score_table`.
        self._warm_trust: dict[PeerId, float] = {}
        # --- incremental-matrix state -------------------------------------
        #: Cached row-normalised local-trust matrix (None until first build).
        self._matrix: np.ndarray | None = None
        #: Peer ordering the cached matrix/pretrust vector were built for.
        self._matrix_peers: list[PeerId] = []
        self._matrix_index: dict[PeerId, int] = {}
        self._pretrust_vector: np.ndarray | None = None
        #: Raters whose local-trust row changed since the last refresh.
        self._dirty_rows: set[PeerId] = set()
        #: Per-rater set of subjects they have ever rated, so one dirty row
        #: can be rebuilt without scanning every (rater, subject) pair.
        self._rated_subjects: dict[PeerId, set[PeerId]] = {}
        self._refreshes_since_rebuild = 0
        #: Counters exposed for tests/benchmarks: how often score_table took
        #: the incremental path vs rebuilt the matrix from scratch.
        self.incremental_refreshes = 0
        self.full_rebuilds = 0

    # ------------------------------------------------------------------ #
    # Log ingestion                                                         #
    # ------------------------------------------------------------------ #
    def record_interaction(
        self, rater: PeerId, subject: PeerId, satisfied: bool
    ) -> None:
        """Feed one rated interaction and mark the rater's matrix row dirty.

        Only row ``rater`` of the normalised local-trust matrix depends on
        this interaction (EigenTrust normalises per rater), so the next
        :meth:`score_table` refresh re-normalises just the dirty rows — a
        rank-1-per-report update instead of an O(peers²) rebuild.
        """
        super().record_interaction(rater, subject, satisfied)
        self._dirty_rows.add(rater)
        rated = self._rated_subjects.get(rater)
        if rated is None:
            rated = set()
            self._rated_subjects[rater] = rated
        rated.add(subject)

    # ------------------------------------------------------------------ #
    # Trust computation                                                     #
    # ------------------------------------------------------------------ #
    def _local_trust_matrix(self, peers: list[PeerId]) -> np.ndarray:
        """Row-normalised local trust matrix C with C[i][j] = c_ij."""
        index = {peer: position for position, peer in enumerate(peers)}
        matrix = np.zeros((len(peers), len(peers)))
        for (rater, subject), positives in self.log.positive.items():
            negatives = self.log.negative.get((rater, subject), 0)
            matrix[index[rater], index[subject]] = max(positives - negatives, 0)
        for (rater, subject), negatives in self.log.negative.items():
            if (rater, subject) not in self.log.positive:
                matrix[index[rater], index[subject]] = 0.0
        row_sums = matrix.sum(axis=1, keepdims=True)
        distribution = self._pretrust_distribution(peers)
        with np.errstate(invalid="ignore", divide="ignore"):
            normalised = np.where(row_sums > 0, matrix / row_sums, distribution)
        return normalised

    def _pretrust_distribution(self, peers: list[PeerId]) -> np.ndarray:
        """The pre-trust vector p (uniform over pre-trusted peers, or all)."""
        trusted = [peer for peer in peers if peer in self.pre_trusted]
        vector = np.zeros(len(peers))
        if trusted:
            for peer in trusted:
                vector[peers.index(peer)] = 1.0 / len(trusted)
        elif peers:
            vector[:] = 1.0 / len(peers)
        return vector

    def _rebuild_matrix(self, peers: list[PeerId]) -> None:
        """Rebuild the cached matrix and pretrust vector from the raw log."""
        self._matrix = self._local_trust_matrix(peers)
        self._matrix_peers = list(peers)
        self._matrix_index = {peer: position for position, peer in enumerate(peers)}
        self._pretrust_vector = self._pretrust_distribution(peers)
        self._dirty_rows.clear()
        self._refreshes_since_rebuild = 0
        self.full_rebuilds += 1

    def _refresh_matrix(self, peers: list[PeerId]) -> tuple[np.ndarray, np.ndarray]:
        """Return the row-normalised matrix and pretrust vector for ``peers``.

        Incremental path: when the peer set is unchanged, only the rows of
        raters with new reports are recomputed — each is a fresh count/
        normalise of that rater's pairwise entries, so the result is
        **bit-identical** to a from-scratch :meth:`_local_trust_matrix` (the
        counts are small integers, exactly representable, and the per-row
        sum and division are the same float operations numpy's full rebuild
        performs).  A peer-set change shifts matrix indices, so it triggers a
        full rebuild, as does the :attr:`full_recompute_every` safety valve.
        """
        if (
            self._matrix is None
            or peers != self._matrix_peers
            or self._refreshes_since_rebuild >= self.full_recompute_every
        ):
            self._rebuild_matrix(peers)
            return self._matrix, self._pretrust_vector
        self._refreshes_since_rebuild += 1
        self.incremental_refreshes += 1
        if self._dirty_rows:
            matrix = self._matrix
            index = self._matrix_index
            pretrust = self._pretrust_vector
            positive = self.log.positive
            negative = self.log.negative
            size = len(peers)
            for rater in self._dirty_rows:
                row = np.zeros(size)
                for subject in self._rated_subjects.get(rater, ()):
                    pair = (rater, subject)
                    value = positive.get(pair, 0) - negative.get(pair, 0)
                    if value > 0:
                        row[index[subject]] = value
                total = row.sum()
                if total > 0:
                    matrix[index[rater]] = row / total
                else:
                    matrix[index[rater]] = pretrust
            self._dirty_rows.clear()
        return self._matrix, self._pretrust_vector

    def global_trust(self) -> dict[PeerId, float]:
        """The converged global trust vector for every peer in the log."""
        peers = sorted(self.log.peers)
        if not peers:
            return {}
        matrix = self._local_trust_matrix(peers)
        pretrust = self._pretrust_distribution(peers)
        trust = pretrust.copy()
        for _ in range(self.max_iterations):
            updated = (1.0 - self.damping) * matrix.T @ trust + self.damping * pretrust
            if np.abs(updated - trust).sum() < self.tolerance:
                trust = updated
                break
            trust = updated
        return {peer: float(value) for peer, value in zip(peers, trust)}

    def score(self, peer: PeerId) -> float:
        """Global trust normalised by the maximum so scores live in [0, 1]."""
        trust = self.global_trust()
        if peer not in trust:
            return 0.0
        maximum = max(trust.values()) if trust else 0.0
        if maximum <= 0.0:
            return 0.0
        return trust[peer] / maximum

    def score_table(self) -> dict[PeerId, float]:
        """All scores from a single power iteration, warm-started.

        Computing :meth:`score` per peer would repeat the whole power
        iteration once per peer; this batch path runs it once and, unlike
        :meth:`global_trust`, starts from the previously converged vector so
        successive refreshes (the common case inside the simulation adapter)
        converge in a handful of iterations.  The local-trust matrix itself
        is maintained incrementally across calls (see :meth:`_refresh_matrix`):
        only rows dirtied by new reports are re-normalised, with a periodic
        full recompute as a safety valve.
        """
        peers = sorted(self.log.peers)
        if not peers:
            return {}
        matrix, pretrust = self._refresh_matrix(peers)
        trust = np.array([self._warm_trust.get(peer, 0.0) for peer in peers])
        total = trust.sum()
        trust = trust / total if total > 0 else pretrust.copy()
        for _ in range(self.max_iterations):
            updated = (1.0 - self.damping) * matrix.T @ trust + self.damping * pretrust
            if np.abs(updated - trust).sum() < self.tolerance:
                trust = updated
                break
            trust = updated
        self._warm_trust = {peer: float(value) for peer, value in zip(peers, trust)}
        maximum = float(trust.max())
        if maximum <= 0.0:
            return {peer: 0.0 for peer in peers}
        return {peer: float(value) / maximum for peer, value in zip(peers, trust)}
