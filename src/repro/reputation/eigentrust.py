"""EigenTrust (Kamvar, Schlosser, Garcia-Molina, WWW 2003).

Each peer i normalises its local trust values ``c_ij`` (satisfactory minus
unsatisfactory interactions, floored at zero) and the global trust vector is
the stationary distribution of the resulting matrix, computed by power
iteration with a damping factor towards a set of pre-trusted peers — exactly
the PageRank-style construction of the original paper.

Newcomers have no incoming local trust at all, so their global trust is the
damping mass spread over the pre-trusted set (zero unless they are
pre-trusted): EigenTrust is a "both feedback counts, newcomer near the
bottom" system in the taxonomy of §1.
"""

from __future__ import annotations

import numpy as np

from ..ids import PeerId
from .base import ReputationSystem

__all__ = ["EigenTrust"]


class EigenTrust(ReputationSystem):
    """Global trust via power iteration over normalised local trust."""

    name = "eigentrust"

    def __init__(
        self,
        pre_trusted: set[PeerId] | None = None,
        damping: float = 0.15,
        max_iterations: int = 100,
        tolerance: float = 1e-10,
    ) -> None:
        super().__init__()
        if not 0.0 <= damping <= 1.0:
            raise ValueError("damping must be within [0, 1]")
        self.pre_trusted = set(pre_trusted) if pre_trusted else set()
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        #: Last converged trust vector, reused to warm-start :meth:`score_table`.
        self._warm_trust: dict[PeerId, float] = {}

    # ------------------------------------------------------------------ #
    # Trust computation                                                     #
    # ------------------------------------------------------------------ #
    def _local_trust_matrix(self, peers: list[PeerId]) -> np.ndarray:
        """Row-normalised local trust matrix C with C[i][j] = c_ij."""
        index = {peer: position for position, peer in enumerate(peers)}
        matrix = np.zeros((len(peers), len(peers)))
        for (rater, subject), positives in self.log.positive.items():
            negatives = self.log.negative.get((rater, subject), 0)
            matrix[index[rater], index[subject]] = max(positives - negatives, 0)
        for (rater, subject), negatives in self.log.negative.items():
            if (rater, subject) not in self.log.positive:
                matrix[index[rater], index[subject]] = 0.0
        row_sums = matrix.sum(axis=1, keepdims=True)
        distribution = self._pretrust_distribution(peers)
        with np.errstate(invalid="ignore", divide="ignore"):
            normalised = np.where(row_sums > 0, matrix / row_sums, distribution)
        return normalised

    def _pretrust_distribution(self, peers: list[PeerId]) -> np.ndarray:
        """The pre-trust vector p (uniform over pre-trusted peers, or all)."""
        trusted = [peer for peer in peers if peer in self.pre_trusted]
        vector = np.zeros(len(peers))
        if trusted:
            for peer in trusted:
                vector[peers.index(peer)] = 1.0 / len(trusted)
        elif peers:
            vector[:] = 1.0 / len(peers)
        return vector

    def global_trust(self) -> dict[PeerId, float]:
        """The converged global trust vector for every peer in the log."""
        peers = sorted(self.log.peers)
        if not peers:
            return {}
        matrix = self._local_trust_matrix(peers)
        pretrust = self._pretrust_distribution(peers)
        trust = pretrust.copy()
        for _ in range(self.max_iterations):
            updated = (1.0 - self.damping) * matrix.T @ trust + self.damping * pretrust
            if np.abs(updated - trust).sum() < self.tolerance:
                trust = updated
                break
            trust = updated
        return {peer: float(value) for peer, value in zip(peers, trust)}

    def score(self, peer: PeerId) -> float:
        """Global trust normalised by the maximum so scores live in [0, 1]."""
        trust = self.global_trust()
        if peer not in trust:
            return 0.0
        maximum = max(trust.values()) if trust else 0.0
        if maximum <= 0.0:
            return 0.0
        return trust[peer] / maximum

    def score_table(self) -> dict[PeerId, float]:
        """All scores from a single power iteration, warm-started.

        Computing :meth:`score` per peer would repeat the whole power
        iteration once per peer; this batch path runs it once and, unlike
        :meth:`global_trust`, starts from the previously converged vector so
        successive refreshes (the common case inside the simulation adapter)
        converge in a handful of iterations.
        """
        peers = sorted(self.log.peers)
        if not peers:
            return {}
        matrix = self._local_trust_matrix(peers)
        pretrust = self._pretrust_distribution(peers)
        trust = np.array([self._warm_trust.get(peer, 0.0) for peer in peers])
        total = trust.sum()
        trust = trust / total if total > 0 else pretrust.copy()
        for _ in range(self.max_iterations):
            updated = (1.0 - self.damping) * matrix.T @ trust + self.damping * pretrust
            if np.abs(updated - trust).sum() < self.tolerance:
                trust = updated
                break
            trust = updated
        self._warm_trust = {peer: float(value) for peer, value in zip(peers, trust)}
        maximum = float(trust.max())
        if maximum <= 0.0:
            return {peer: 0.0 for peer in peers}
        return {peer: float(value) / maximum for peer, value in zip(peers, trust)}
