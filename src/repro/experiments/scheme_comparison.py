"""Cross-scheme comparison under real dynamics.

The paper's central claim is comparative: reputation lending admits
cooperative newcomers *without* opening the door to whitewashers, while the
baseline newcomer policies (§1) do one or the other.  The offline trace in
:mod:`repro.reputation.comparison` only scores three archetypes; this
experiment runs **every registered reputation backend inside the full
discrete-event simulation** — churn, Poisson arrivals, an attack-heavy
freerider mix, lending audits for the paper's scheme — and tabulates, per
scheme:

* the cooperative and uncooperative **admission rates** (who gets in);
* the **final uncooperative population** (how much whitewashing pressure
  actually converts into freeriders living inside the community);
* the time-averaged **cooperative reputation** (what honest members are left
  with under each scheme).

The paper's scheme runs with its native lending bootstrap.  Each baseline
runs with open admission at its *own* newcomer score (complaints-based
trust admits strangers fully trusted, positive-only freezes them at zero,
beta starts them in the middle, …), so the table reproduces the taxonomy of
§1 under real dynamics rather than by construction.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck
from ..config import REPUTATION_SCHEMES, BootstrapMode
from ..metrics.summary import RunSummary
from ..reputation.adapters import native_newcomer_reputation
from ..workloads.sweep import ParameterSweep, SweepPoint
from .base import Experiment, ExperimentResult

__all__ = [
    "SchemeComparison",
    "MAX_COMPARISON_TRANSACTIONS",
    "capped_comparison_scale",
    "scheme_overrides",
]

#: Horizon cap for the comparison sweep.  The expensive backends (EigenTrust
#: power iteration) make paper-scale horizons pointless for a qualitative
#: admit/exclude table; 20k transactions gives hundreds of admission
#: decisions per scheme and keeps the whole sweep interactive.
MAX_COMPARISON_TRANSACTIONS = 20_000

#: Minimum arrivals of a kind before a comparative check is meaningful.
_MIN_ARRIVALS = 5.0


def _rate(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else float("nan")


def capped_comparison_scale(scale: float, base_params) -> float:
    """``scale``, additionally capped at the cross-scheme horizon limit.

    Shared by every experiment that sweeps all reputation backends (the
    scheme comparison and the robustness matrix), so the two always run at
    the same horizon rule.
    """
    horizon = base_params.num_transactions * scale
    if horizon <= MAX_COMPARISON_TRANSACTIONS:
        return scale
    return scale * (MAX_COMPARISON_TRANSACTIONS / horizon)


def scheme_overrides(base_params, scheme: str) -> dict[str, object]:
    """Parameter overrides that put ``scheme`` on a fair comparative footing.

    The paper's scheme keeps its native lending bootstrap; every baseline
    judges newcomers itself — open admission with the scheme's own newcomer
    score installed, so the §1 taxonomy is reproduced by the schemes rather
    than by construction.  Shared by the cross-scheme experiments.
    """
    overrides: dict[str, object] = {"reputation_scheme": scheme}
    if scheme != "rocq":
        overrides["bootstrap_mode"] = BootstrapMode.OPEN
        overrides["open_initial_reputation"] = native_newcomer_reputation(
            base_params, scheme
        )
    return overrides


class SchemeComparison(Experiment):
    """One row per reputation backend: newcomers admitted vs whitewashing."""

    experiment_id = "scheme_comparison"
    title = "Cross-scheme comparison — newcomer admission vs whitewashing"
    x_label = "scheme"
    y_label = "rate / count"

    def __init__(
        self, *args, schemes: Sequence[str] = REPUTATION_SCHEMES, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.schemes = tuple(schemes)

    # ------------------------------------------------------------------ #
    # Sweep construction                                                   #
    # ------------------------------------------------------------------ #
    def _effective_scale(self) -> float:
        """The experiment's scale, additionally capped at the horizon limit."""
        return capped_comparison_scale(self.scale, self.base_params)

    def _points(self) -> list[SweepPoint]:
        attack_fraction = max(self.base_params.fraction_uncooperative, 0.4)
        points = []
        for index, scheme in enumerate(self.schemes):
            overrides = scheme_overrides(self.base_params, scheme)
            overrides["fraction_uncooperative"] = attack_fraction
            points.append(SweepPoint(label=scheme, x=float(index), overrides=overrides))
        return points

    # ------------------------------------------------------------------ #
    # Run                                                                  #
    # ------------------------------------------------------------------ #
    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        effective_scale = self._effective_scale()
        if effective_scale != self.scale:
            # Record what actually ran, not the uncapped request (the generic
            # scale note from _new_result would otherwise claim the uncapped
            # horizon).
            result.params = self.base_params.scaled(effective_scale)
            result.notes.clear()
            result.notes.append(
                f"run at scale={effective_scale:g} of the base horizon "
                f"({result.params.num_transactions:,} transactions) with "
                f"{self.repeats} repeat(s)"
            )
            result.notes.append(
                f"horizon capped at {MAX_COMPARISON_TRANSACTIONS:,} transactions "
                f"(effective scale {effective_scale:g}) — the comparison is "
                "qualitative and the EigenTrust backend recomputes global trust"
            )
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=self.base_params,
            points=self._points(),
            repeats=self.repeats,
            scale=effective_scale,
        )
        outcome = self._run_sweep(sweep, progress=progress)

        def series_of(getter: Callable[[RunSummary], float]) -> list[tuple[float, float]]:
            return [(x, mean) for x, mean, _ in outcome.series(getter)]

        result.series["Cooperative admission rate"] = series_of(
            lambda s: _rate(s.admitted_cooperative, s.arrivals_cooperative)
        )
        result.series["Uncooperative admission rate"] = series_of(
            lambda s: _rate(s.admitted_uncooperative, s.arrivals_uncooperative)
        )
        result.series["Final uncooperative peers"] = series_of(
            lambda s: float(s.final_uncooperative)
        )
        result.series["Mean cooperative reputation"] = series_of(
            lambda s: s.mean_cooperative_reputation
        )
        result.x_ticks = {
            float(index): scheme for index, scheme in enumerate(self.schemes)
        }
        first = outcome.summaries_at(self.schemes[0])[0]
        result.scalars["schemes compared"] = float(len(self.schemes))
        result.scalars["cooperative arrivals per run"] = float(
            first.arrivals_cooperative
        )
        result.scalars["uncooperative arrivals per run"] = float(
            first.arrivals_uncooperative
        )
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def checks(self) -> Sequence[ShapeCheck]:
        def complete_table(result: ExperimentResult) -> tuple[bool, str]:
            lengths = {name: len(points) for name, points in result.series.items()}
            expected = len(self.schemes)
            complete = all(length == expected for length in lengths.values())
            return complete, f"{len(lengths)} metric(s) x {expected} scheme(s)"

        def rates_are_probabilities(result: ExperimentResult) -> tuple[bool, str]:
            for name in ("Cooperative admission rate", "Uncooperative admission rate"):
                for _, value in result.series[name]:
                    if value == value and not 0.0 <= value <= 1.0:
                        return False, f"{name} left [0, 1]: {value}"
            return True, "all admission rates within [0, 1] (or n/a)"

        def lending_admits_yet_excludes(result: ExperimentResult) -> tuple[bool, str]:
            if "rocq" not in self.schemes:
                return True, "lending scheme not part of this comparison"
            if result.scalars.get("uncooperative arrivals per run", 0.0) < _MIN_ARRIVALS:
                return True, "too few arrivals at this scale for a comparison"
            rocq_index = float(self.schemes.index("rocq"))
            coop = dict(result.series["Cooperative admission rate"])
            uncoop = dict(result.series["Uncooperative admission rate"])
            baselines = [
                uncoop[x] for x in uncoop if x != rocq_index and uncoop[x] == uncoop[x]
            ]
            if not baselines or coop.get(rocq_index) != coop.get(rocq_index):
                return True, "comparison column missing at this scale"
            admits = coop[rocq_index] > 0.0
            excludes = uncoop[rocq_index] <= max(baselines) + 1e-9
            return admits and excludes, (
                f"lending admits {coop[rocq_index]:.0%} of cooperative arrivals and "
                f"{uncoop[rocq_index]:.0%} of freeriders (most permissive "
                f"baseline: {max(baselines):.0%})"
            )

        return [
            ShapeCheck(
                name="every scheme produced a full comparison row",
                predicate=complete_table,
                paper_claim="§1/§5 taxonomy: every baseline family is evaluated",
            ),
            ShapeCheck(
                name="admission rates are valid probabilities",
                predicate=rates_are_probabilities,
            ),
            ShapeCheck(
                name="lending admits newcomers without out-admitting the baselines",
                predicate=lending_admits_yet_excludes,
                paper_claim="'newcomers can gradually build up reputation without "
                "the system being vulnerable to whitewashing'",
            ),
        ]

