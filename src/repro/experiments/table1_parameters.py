"""Table 1 — the simulation parameters.

Not a simulation at all: this "experiment" renders the default configuration
as the paper's Table 1 and checks that our defaults match the published
values.  It exists so every numbered artefact of the evaluation section has a
corresponding experiment id and bench target.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck
from ..config import Topology
from .base import Experiment, ExperimentResult

__all__ = ["Table1Parameters", "PAPER_TABLE1"]

#: The values printed in Table 1 of the paper, keyed by our parameter names.
PAPER_TABLE1: dict[str, object] = {
    "num_initial_peers": 500,
    "num_transactions": 500_000,
    "num_score_managers": 6,
    "arrival_rate": 0.01,
    "fraction_uncooperative": 0.25,
    "fraction_naive": 0.3,
    "selective_error_rate": 0.10,
    "topology": Topology.SCALE_FREE,
    "waiting_period": 1000.0,
    "audit_transactions": 20,
    "intro_amount": 0.1,
    "reward_amount": 0.02,
}


class Table1Parameters(Experiment):
    """Render Table 1 and verify our defaults reproduce it."""

    experiment_id = "table1"
    title = "Table 1 — simulation parameters"
    x_label = "parameter"
    y_label = "value"

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        result.notes.clear()  # scaling note is meaningless for a parameter table
        params = self.base_params
        for name, paper_value in PAPER_TABLE1.items():
            ours = getattr(params, name)
            result.scalars[f"{name} (paper)"] = _numeric(paper_value)
            result.scalars[f"{name} (ours)"] = _numeric(ours)
        result.notes.append(
            "minIntroRep is derived as max(introAmt + 0.05, 2*introAmt) per "
            "SimulationParameters.effective_min_intro_reputation(), keeping the "
            "paper's invariant minIntroRep > introAmt"
        )
        return result

    def checks(self) -> Sequence[ShapeCheck]:
        def defaults_match(result: object) -> tuple[bool, str]:
            params = self.base_params
            mismatches = [
                name
                for name, paper_value in PAPER_TABLE1.items()
                if getattr(params, name) != paper_value
            ]
            if mismatches:
                return False, f"defaults differ from Table 1: {', '.join(mismatches)}"
            return True, "all Table 1 defaults match the paper"

        def invariant_holds(result: object) -> tuple[bool, str]:
            params = self.base_params
            minimum = params.effective_min_intro_reputation()
            ok = minimum >= params.intro_amount
            return ok, f"minIntroRep={minimum:.3f} vs introAmt={params.intro_amount:.3f}"

        return [
            ShapeCheck(
                name="defaults match Table 1",
                predicate=defaults_match,
                paper_claim="Table 1 default values",
            ),
            ShapeCheck(
                name="minIntroRep exceeds introAmt",
                predicate=invariant_holds,
                paper_claim="'By keeping minIntroRep greater than introAmt we also "
                "prevent peer reputation value from going below zero'",
            ),
        ]


def _numeric(value: object) -> float:
    """Coerce a Table 1 value to a float for the scalars dictionary."""
    if isinstance(value, Topology):
        return float(list(Topology).index(value))
    if isinstance(value, bool):
        return float(value)
    return float(value)  # type: ignore[arg-type]
