"""Detection quality over the scheme × attack grid.

The robustness matrix (:mod:`repro.experiments.robustness_matrix`) reports
what an attack *bought*; this experiment asks the classifier question the
paper's claim rests on — does the scheme actually rank known adversary
identities below honest peers, and is its score usable as a probability of
good service?  Same grid, same fan-out (every cell is an independent
:class:`~repro.parallel.specs.RunSpec` batch through the service
executor), but each cell is scored with the ground-truth labels the engine
attaches to adversary runs (:mod:`repro.detection`):

* **auc** — ranking AUC of suspicion (negated final reputation) against
  ``is_adversary``: 1.0 means every adversary ranked below every honest
  member, 0.5 is chance;
* **admission auc** — the same separation measured *at the admission
  threshold* (balanced accuracy of the thresholded classifier).  This is
  the usable-margin number: tit-for-tat can rank whitewashers perfectly
  while holding them at 0.89 reputation, which detects nothing at any
  fixed gate;
* **average precision** — precision-weighted recall of the suspicion
  ranking;
* **brier** / **ece** — reputation read as probability-of-good-service
  against the ground-truth cooperative flag;
* **time to detection** — mean first sample time at which an adversary
  identity's score fell below the admission threshold (NaN when none was
  ever detected — itself a finding).

Note the labels mark *adversary-controlled* identities, not uncooperative
ones: slanderers serve honestly while lying about others and churn-storm
joiners are cooperative, so low ranking AUC in those columns is the
expected reading, not a failure.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..adversary import default_adversary_spec
from ..analysis.comparison import ShapeCheck
from ..config import ADVERSARY_STRATEGIES, REPUTATION_SCHEMES
from ..detection import (
    LabelSet,
    auc,
    average_precision,
    brier_score,
    expected_calibration_error,
    operating_point_auc,
    time_to_detection,
)
from ..workloads.sweep import ParameterSweep, SweepPoint, aggregate_mean
from .base import Experiment, ExperimentResult
from .scheme_comparison import (
    MAX_COMPARISON_TRANSACTIONS,
    capped_comparison_scale,
    scheme_overrides,
)

__all__ = [
    "DetectionEval",
    "detection_auc",
    "detection_admission_auc",
    "detection_average_precision",
    "detection_brier",
    "detection_ece",
    "detection_mean_time_to_detection",
]

#: Minimum labelled adversary identities before a comparative check means
#: anything (mirrors the robustness matrix's arrivals guard).
_MIN_ADVERSARIES = 2.0

#: The detection metrics every cell emits, in series order.
_METRICS: tuple[tuple[str, "Callable[[LabelSet], float]"], ...]


def detection_auc(labels: LabelSet) -> float:
    """Ranking AUC: P(adversary scored below honest peer), ties half."""
    suspicion, flags = labels.suspicion()
    return auc(suspicion, flags)


def detection_admission_auc(labels: LabelSet) -> float:
    """Balanced accuracy of "score below the admission threshold" calls."""
    suspicion, flags = labels.suspicion()
    # score < threshold  <=>  suspicion > -threshold; nudge the cut so the
    # >= convention of operating_point_auc excludes exact threshold scores.
    return operating_point_auc(suspicion, flags, -labels.threshold + 1e-12)


def detection_average_precision(labels: LabelSet) -> float:
    """Average precision of the suspicion ranking."""
    suspicion, flags = labels.suspicion()
    return average_precision(suspicion, flags)


def detection_brier(labels: LabelSet) -> float:
    """Brier score of reputation as probability-of-good-service."""
    probabilities, outcomes = labels.service_probabilities()
    return brier_score(probabilities, outcomes)


def detection_ece(labels: LabelSet) -> float:
    """Expected calibration error of reputation as a probability."""
    probabilities, outcomes = labels.service_probabilities()
    return expected_calibration_error(probabilities, outcomes)


def detection_mean_time_to_detection(labels: LabelSet) -> float:
    """Mean detection time over the adversaries that were ever detected."""
    times = [
        detected
        for label in labels.labels
        if label.is_adversary
        and (detected := time_to_detection(label.history, labels.threshold))
        is not None
    ]
    if not times:
        return float("nan")
    return sum(times) / len(times)


_METRICS = (
    ("auc", detection_auc),
    ("admission auc", detection_admission_auc),
    ("average precision", detection_average_precision),
    ("brier", detection_brier),
    ("ece", detection_ece),
    ("time to detection", detection_mean_time_to_detection),
)


class DetectionEval(Experiment):
    """Ranking + calibration metrics per (scheme, attack) cell."""

    experiment_id = "detection_eval"
    title = "Detection quality — ranking and calibration per scheme x attack"
    x_label = "scheme"
    y_label = "metric value"

    def __init__(
        self,
        *args,
        schemes: Sequence[str] = REPUTATION_SCHEMES,
        attacks: Sequence[str] = ADVERSARY_STRATEGIES,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        # Canonical (sorted) cell order, like the robustness matrix, so the
        # emitted artifact diffs cleanly between runs.
        self.schemes = tuple(sorted(schemes))
        self.attacks = tuple(sorted(attacks))

    # ------------------------------------------------------------------ #
    # Sweep construction                                                   #
    # ------------------------------------------------------------------ #
    def _effective_scale(self) -> float:
        return capped_comparison_scale(self.scale, self.base_params)

    @staticmethod
    def cell_label(scheme: str, attack: str) -> str:
        return f"{scheme}|{attack}"

    def _points(self, horizon: int) -> list[SweepPoint]:
        points = []
        for index, scheme in enumerate(self.schemes):
            base_overrides = scheme_overrides(self.base_params, scheme)
            for attack in self.attacks:
                overrides = dict(base_overrides)
                overrides["adversary"] = default_adversary_spec(attack, horizon)
                points.append(
                    SweepPoint(
                        label=self.cell_label(scheme, attack),
                        x=float(index),
                        overrides=overrides,
                    )
                )
        return points

    # ------------------------------------------------------------------ #
    # Run                                                                  #
    # ------------------------------------------------------------------ #
    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        effective_scale = self._effective_scale()
        scaled = self.base_params.scaled(effective_scale)
        if effective_scale != self.scale:
            result.params = scaled
            result.notes.clear()
            result.notes.append(
                f"run at scale={effective_scale:g} of the base horizon "
                f"({scaled.num_transactions:,} transactions) with "
                f"{self.repeats} repeat(s)"
            )
            result.notes.append(
                f"horizon capped at {MAX_COMPARISON_TRANSACTIONS:,} transactions "
                "— detection quality is qualitative and the grid is "
                f"{len(self.schemes)}x{len(self.attacks)} cells"
            )
        result.notes.append(
            "labels mark adversary-controlled identities, not uncooperative "
            "ones: low AUC under slander/churn_storm (honest-serving "
            "identities) is the expected reading"
        )
        # As in the robustness matrix: points carry final adversary specs
        # sized for the horizon that actually runs, so the sweep must not
        # re-scale them.
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=scaled,
            points=self._points(scaled.num_transactions),
            repeats=self.repeats,
            scale=1.0,
        )
        outcome = self._run_sweep(sweep, progress=progress)

        def cell_mean(
            scheme: str, attack: str, metric: Callable[[LabelSet], float]
        ) -> float:
            values = [
                metric(LabelSet.from_summary(summary))
                for summary in outcome.summaries_at(self.cell_label(scheme, attack))
            ]
            mean, _ = aggregate_mean(values)
            return mean

        for attack in self.attacks:
            for metric_name, metric in _METRICS:
                result.series[f"{attack}: {metric_name}"] = [
                    (float(index), cell_mean(scheme, attack, metric))
                    for index, scheme in enumerate(self.schemes)
                ]
        result.x_ticks = {
            float(index): scheme for index, scheme in enumerate(self.schemes)
        }
        first_cell = outcome.summaries_at(
            self.cell_label(self.schemes[0], self.attacks[0])
        )
        first_labels = LabelSet.from_summary(first_cell[0])
        result.scalars["schemes"] = float(len(self.schemes))
        result.scalars["attacks"] = float(len(self.attacks))
        result.scalars["cells"] = float(len(self.schemes) * len(self.attacks))
        result.scalars["labelled peers per run"] = float(len(first_labels))
        result.scalars["adversary identities per run"] = float(
            len(first_labels.adversary_ids())
        )
        result.scalars["admission threshold"] = first_labels.threshold
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def _metric_row(
        self, result: ExperimentResult, attack: str, metric_name: str
    ) -> dict[str, float]:
        """Scheme name → value for one (attack, metric) row, NaNs dropped."""
        series = result.series.get(f"{attack}: {metric_name}", [])
        return {
            self.schemes[int(x)]: value for x, value in series if value == value
        }

    def _lending_outranks_tft(
        self, result: ExperimentResult, attack: str, margin: float = 0.1
    ) -> tuple[bool, str]:
        """Does rocq separate adversaries at the admission threshold where
        tit-for-tat does not?"""
        if "rocq" not in self.schemes or "tit_for_tat" not in self.schemes:
            return True, "rocq/tit_for_tat not both part of this grid"
        if (
            result.scalars.get("adversary identities per run", 0.0)
            < _MIN_ADVERSARIES
        ):
            return True, "too few adversary identities at this scale"
        row = self._metric_row(result, attack, "admission auc")
        if "rocq" not in row or "tit_for_tat" not in row:
            return True, "grid row incomplete at this scale"
        outranks = row["rocq"] > row["tit_for_tat"] + margin
        return outranks, (
            f"under {attack} lending separates adversaries from honest peers "
            f"at the admission threshold with AUC {row['rocq']:.2f} vs "
            f"{row['tit_for_tat']:.2f} for tit_for_tat"
        )

    def checks(self) -> Sequence[ShapeCheck]:
        def complete_grid(result: ExperimentResult) -> tuple[bool, str]:
            expected_series = len(_METRICS) * len(self.attacks)
            lengths = {name: len(points) for name, points in result.series.items()}
            complete = len(lengths) == expected_series and all(
                length == len(self.schemes) for length in lengths.values()
            )
            return complete, (
                f"{len(lengths)} series x {len(self.schemes)} scheme(s), "
                f"expected {expected_series}"
            )

        def auc_within_bounds(result: ExperimentResult) -> tuple[bool, str]:
            values = [
                value
                for attack in self.attacks
                for metric_name in ("auc", "admission auc")
                for _, value in result.series[f"{attack}: {metric_name}"]
                if value == value
            ]
            in_range = all(0.0 <= value <= 1.0 for value in values)
            return in_range, f"{len(values)} finite AUC cell(s) all within [0, 1]"

        def better_calibrated(result: ExperimentResult) -> tuple[bool, str]:
            if "rocq" not in self.schemes or "tit_for_tat" not in self.schemes:
                return True, "rocq/tit_for_tat not both part of this grid"
            row = self._metric_row(result, "whitewash_waves", "brier")
            if "rocq" not in row or "tit_for_tat" not in row:
                return True, "grid row incomplete at this scale"
            better = row["rocq"] < row["tit_for_tat"]
            return better, (
                f"whitewash_waves Brier score {row['rocq']:.3f} (rocq) vs "
                f"{row['tit_for_tat']:.3f} (tit_for_tat)"
            )

        checks: list[ShapeCheck] = [
            ShapeCheck(
                name="every cell of the grid produced every detection metric",
                predicate=complete_grid,
                paper_claim="detection quality is a full scheme x attack grid",
            ),
            ShapeCheck(
                name="every AUC lies within [0, 1]",
                predicate=auc_within_bounds,
                paper_claim="ranking metrics are well-formed probabilities "
                "of correct pairwise ordering",
            ),
        ]
        if "whitewash_waves" in self.attacks:
            checks.append(
                ShapeCheck(
                    name="lending ranks whitewashers below honest peers "
                    "where tit_for_tat cannot",
                    predicate=lambda result: self._lending_outranks_tft(
                        result, "whitewash_waves"
                    ),
                    paper_claim="'without the system being vulnerable to "
                    "whitewashing' — usable separation at the admission "
                    "threshold, not just ordering",
                )
            )
            checks.append(
                ShapeCheck(
                    name="lending reputation is the better-calibrated "
                    "probability of good service",
                    predicate=better_calibrated,
                    paper_claim="reputation predicts service quality "
                    "(ranking and calibration are separate axes)",
                )
            )
        return checks
