"""§4.1 — the decision success rate with and without introductions.

The paper reports that the ROCQ serve/deny decision success rate is
essentially unchanged by the introduction requirement (about 96 % in both
configurations), concluding that "the introducer requirement is compatible
with the ROCQ reputation management scheme".  We run the same comparison:
the lending bootstrap against open admission, everything else identical.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck
from ..config import BootstrapMode
from ..workloads.sweep import ParameterSweep, SweepPoint
from .base import Experiment, ExperimentResult

__all__ = ["SuccessRateExperiment"]

_LABELS = {
    BootstrapMode.LENDING: "introductions required (lending)",
    BootstrapMode.OPEN: "no introductions (open admission)",
}


class SuccessRateExperiment(Experiment):
    """Reproduce the success-rate comparison of §4.1."""

    experiment_id = "success"
    title = "Decision success rate with vs without the introduction requirement"
    x_label = "configuration"
    y_label = "success rate"

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=self.base_params,
            points=[
                SweepPoint(
                    label=mode.value, x=float(index), overrides={"bootstrap_mode": mode}
                )
                for index, mode in enumerate(_LABELS)
            ],
            repeats=self.repeats,
            scale=self.scale,
        )
        outcome = self._run_sweep(sweep, progress=progress)
        for index, (mode, label) in enumerate(_LABELS.items()):
            rate, std = outcome.mean_metric(mode.value, lambda s: s.success_rate)
            result.scalars[f"success rate — {label}"] = rate
            result.scalars[f"success rate std — {label}"] = std
            result.series.setdefault("success rate", []).append((float(index), rate))
            denied, _ = outcome.mean_metric(
                mode.value, lambda s: float(s.transactions_denied)
            )
            served, _ = outcome.mean_metric(
                mode.value, lambda s: float(s.transactions_served)
            )
            result.scalars[f"transactions served — {label}"] = served
            result.scalars[f"transactions denied — {label}"] = denied
        return result

    def checks(self) -> Sequence[ShapeCheck]:
        def both_high(result: ExperimentResult) -> tuple[bool, str]:
            rates = [
                result.scalars[f"success rate — {label}"] for label in _LABELS.values()
            ]
            passed = all(rate > 0.80 for rate in rates)
            return passed, f"success rates: {[round(r, 4) for r in rates]}"

        def nearly_identical(result: ExperimentResult) -> tuple[bool, str]:
            lending = result.scalars[
                f"success rate — {_LABELS[BootstrapMode.LENDING]}"
            ]
            open_rate = result.scalars[f"success rate — {_LABELS[BootstrapMode.OPEN]}"]
            gap = abs(lending - open_rate)
            return gap <= 0.10, (
                f"gap between configurations is {gap:.4f} "
                f"(lending={lending:.4f}, open={open_rate:.4f})"
            )

        return [
            ShapeCheck(
                name="success rate is high in both configurations",
                predicate=both_high,
                paper_claim="'the success rate was ~96% whereas when introductions "
                "were required the success rate was ~96%'",
            ),
            ShapeCheck(
                name="introduction requirement does not change the success rate much",
                predicate=nearly_identical,
                paper_claim="'Adding the requirement that new entrants be introduced "
                "does not change the success rate of ROCQ by a significant amount'",
            ),
        ]
