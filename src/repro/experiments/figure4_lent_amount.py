"""Figure 4 — community composition and refusals vs amount of reputation lent.

The paper sweeps ``introAmt`` from 0.05 to 0.45 (reward fixed at 20 % of the
stake) and plots four curves: cooperative peers in the system, uncooperative
peers in the system, entries refused because the introducer lacked enough
reputation, and entries refused to uncooperative peers by selective
introducers.  Claims we check:

* total admissions are roughly unaffected for small stakes and decline once
  the stake grows past ~0.15;
* refusals due to insufficient introducer reputation increase with the stake;
* refusals of uncooperative applicants by selective introducers stay flat
  (the applicant mix does not change with the stake).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck, monotonic, roughly_flat
from ..workloads.sweep import SweepResult
from ._lent_sweep import LENT_AMOUNTS, build_lent_sweep
from .base import Experiment, ExperimentResult

__all__ = ["Figure4LentAmount"]


class Figure4LentAmount(Experiment):
    """Reproduce Figure 4 (counts and refusal reasons vs introAmt)."""

    experiment_id = "figure4"
    title = "Figure 4 — peers and refusals vs amount of reputation lent"
    x_label = "amount of reputation lent by introducer"
    y_label = "number of peers"

    def __init__(self, *args, amounts: Sequence[float] = LENT_AMOUNTS, **kwargs):
        super().__init__(*args, **kwargs)
        self.amounts = tuple(amounts)
        #: Populated by :meth:`run`; Figure 5 reuses it to avoid re-running.
        self.sweep_result: SweepResult | None = None

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        # The paper fixes the reward at 20 % of the stake for this sweep.
        base = self.base_params
        # Run under the canonical shared sweep name so Figure 5 (and the run
        # cache) resolve to the exact same (params, seed) simulations.
        sweep = build_lent_sweep(base, self.amounts, self.scale, self.repeats)
        outcome = self._run_sweep(sweep, progress=progress)
        self.sweep_result = outcome
        result.series["Cooperative Peers"] = [
            (x, mean)
            for x, mean, _ in outcome.series(lambda s: float(s.final_cooperative))
        ]
        result.series["Uncooperative Peers"] = [
            (x, mean)
            for x, mean, _ in outcome.series(lambda s: float(s.final_uncooperative))
        ]
        result.series["Entry Refused due to Introducer Reputation"] = [
            (x, mean)
            for x, mean, _ in outcome.series(
                lambda s: float(s.refused_due_to_introducer_reputation)
            )
        ]
        result.series["Entry Refused to Uncooperative Peer"] = [
            (x, mean)
            for x, mean, _ in outcome.series(
                lambda s: float(s.refused_uncooperative_by_selective)
            )
        ]
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def checks(self) -> Sequence[ShapeCheck]:
        def reputation_refusals_increase(result: ExperimentResult) -> tuple[bool, str]:
            points = result.series["Entry Refused due to Introducer Reputation"]
            maximum = max((y for _, y in points), default=0.0)
            tolerance = max(2.0, 0.15 * maximum)
            ok, detail = monotonic(points, increasing=True, tolerance=tolerance)
            if not ok:
                return False, detail
            first, last = points[0][1], points[-1][1]
            return last > first, f"refusals rise from {first:.0f} to {last:.0f}"

        def selective_refusals_flat(result: ExperimentResult) -> tuple[bool, str]:
            points = result.series["Entry Refused to Uncooperative Peer"]
            return roughly_flat(points, relative_band=0.35)

        def total_declines_for_large_stakes(result: ExperimentResult) -> tuple[bool, str]:
            coop = dict(result.series["Cooperative Peers"])
            uncoop = dict(result.series["Uncooperative Peers"])
            totals = {x: coop[x] + uncoop.get(x, 0.0) for x in coop}
            small = [totals[x] for x in totals if x <= 0.15]
            large = [totals[x] for x in totals if x >= 0.35]
            if not small or not large:
                return True, "sweep does not span both regimes"
            passed = min(large) < max(small)
            return passed, (
                f"total peers: {max(small):.0f} at small stakes vs "
                f"{min(large):.0f} at large stakes"
            )

        return [
            ShapeCheck(
                name="refusals due to introducer reputation rise with the stake",
                predicate=reputation_refusals_increase,
                paper_claim="'as the amount of reputation being lent upon introduction "
                "increases, the number of peers refused entry because their introducer "
                "did not have enough reputation increases'",
            ),
            ShapeCheck(
                name="refusals of uncooperative applicants stay flat",
                predicate=selective_refusals_flat,
                paper_claim="'the number of peers being refused entry by selective "
                "introducers remains the same'",
            ),
            ShapeCheck(
                name="total admissions decline once the stake is large",
                predicate=total_declines_for_large_stakes,
                paper_claim="'The number of peers admitted remains more or less the "
                "same for introAmt <= 0.15 but starts decreasing once introAmt becomes "
                "larger'",
            ),
        ]
