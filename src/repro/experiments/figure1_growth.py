"""Figure 1 — growth of uncooperative vs cooperative peers.

The paper starts from 500 cooperative founders, lets peers arrive at
``lambda = 0.01`` (25 % uncooperative) and plots, over the course of the run,
the number of uncooperative peers in the system against the number of
cooperative peers, once for the random topology and once for the scale-free
topology.  Claims we check:

* the uncooperative count grows roughly linearly with the cooperative count;
* the slope is far below the 1:3 ratio that unrestricted admission would
  produce, because selective introducers turn most freeriders away;
* topology makes no significant difference.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck, monotonic
from ..config import Topology
from ..workloads.sweep import ParameterSweep, SweepPoint
from .base import Experiment, ExperimentResult

__all__ = ["Figure1Growth"]

_SERIES_LABELS = {
    Topology.RANDOM: "Random Network",
    Topology.SCALE_FREE: "Scale-free Network",
}


class Figure1Growth(Experiment):
    """Reproduce Figure 1 (uncooperative vs cooperative peer growth)."""

    experiment_id = "figure1"
    title = "Figure 1 — uncooperative vs cooperative peers"
    x_label = "cooperative peers in system"
    y_label = "uncooperative peers in system"

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=self.base_params,
            points=[
                SweepPoint(label=topology.value, x=float(index), overrides={"topology": topology})
                for index, topology in enumerate(_SERIES_LABELS)
            ],
            repeats=self.repeats,
            scale=self.scale,
        )
        outcome = self._run_sweep(sweep, progress=progress)
        for topology, label in _SERIES_LABELS.items():
            coop = outcome.averaged_timeseries(
                topology.value, lambda s: s.cooperative_count
            )
            uncoop = outcome.averaged_timeseries(
                topology.value, lambda s: s.uncooperative_count
            )
            points = list(zip(coop.values, uncoop.values))
            result.series[label] = [(float(x), float(y)) for x, y in points]
            final_coop, _ = outcome.mean_metric(
                topology.value, lambda s: float(s.final_cooperative)
            )
            final_uncoop, _ = outcome.mean_metric(
                topology.value, lambda s: float(s.final_uncooperative)
            )
            arrivals_uncoop, _ = outcome.mean_metric(
                topology.value, lambda s: float(s.arrivals_uncooperative)
            )
            result.scalars[f"final cooperative ({label})"] = final_coop
            result.scalars[f"final uncooperative ({label})"] = final_uncoop
            result.scalars[f"uncooperative arrivals ({label})"] = arrivals_uncoop
            result.scalars[f"uncooperative admitted fraction ({label})"] = (
                final_uncoop / arrivals_uncoop if arrivals_uncoop else 0.0
            )
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def checks(self) -> Sequence[ShapeCheck]:
        def growth_is_monotonic(result: ExperimentResult) -> tuple[bool, str]:
            details = []
            for label, points in result.series.items():
                ok, detail = monotonic(points, increasing=True, tolerance=2.0)
                details.append(f"{label}: {detail}")
                if not ok:
                    return False, "; ".join(details)
            return True, "; ".join(details)

        def slope_below_admission_free(result: ExperimentResult) -> tuple[bool, str]:
            ratio = self.base_params.fraction_uncooperative / (
                1.0 - self.base_params.fraction_uncooperative
            )
            worst = 0.0
            for label in result.series:
                coop = result.scalars[f"final cooperative ({label})"]
                uncoop = result.scalars[f"final uncooperative ({label})"]
                grown_coop = coop - self.base_params.num_initial_peers
                if grown_coop <= 0:
                    continue
                worst = max(worst, uncoop / grown_coop)
            passed = worst < ratio * 0.85
            return passed, (
                f"worst uncoop/coop-growth slope {worst:.3f} vs admission-free "
                f"ratio {ratio:.3f}"
            )

        def topology_independent(result: ExperimentResult) -> tuple[bool, str]:
            # Compare the *fraction* of uncooperative arrivals that got in:
            # absolute counts differ across topologies simply because each
            # sweep point uses its own arrival stream.
            fractions = [
                result.scalars[f"uncooperative admitted fraction ({label})"]
                for label in _SERIES_LABELS.values()
            ]
            spread = max(fractions) - min(fractions)
            return spread <= 0.25, (
                "uncooperative admitted fractions "
                f"{[round(f, 3) for f in fractions]} differ by {spread:.3f} "
                "across topologies"
            )

        return [
            ShapeCheck(
                name="uncooperative count grows with cooperative count",
                predicate=growth_is_monotonic,
                paper_claim="'the number of uncooperative peers in the system "
                "increases linearly with the number of cooperative peers'",
            ),
            ShapeCheck(
                name="slope well below the admission-free 1:3 ratio",
                predicate=slope_below_admission_free,
                paper_claim="'the slope of the increase is significantly less than "
                "one would expect if all peers were let into the system'",
            ),
            ShapeCheck(
                name="growth is topology independent",
                predicate=topology_independent,
                paper_claim="'the rate at which the number of uncooperative peers "
                "increases is independent of the network topology'",
            ),
        ]
