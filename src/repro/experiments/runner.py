"""Run every experiment and render a paper-vs-measured report.

Usage from Python::

    from repro.experiments import run_all, render_report

    results = run_all(scale=0.05, repeats=2, seed=1, jobs=4)
    print(render_report(results))

or from the command line::

    python -m repro.experiments.runner --scale 0.05 --repeats 2 --out results/

Parallel execution
------------------
Each experiment expands its parameter sweep into a batch of
:class:`~repro.parallel.specs.RunSpec` objects — one fully resolved
(parameters, seed) pair per repeat of each sweep point — and submits the
batch to an executor from :mod:`repro.parallel`.  ``--jobs N`` selects how
many simulations run concurrently and ``--backend`` picks the concurrency
model:

``serial``
    Everything inline in this process (the default for ``--jobs 1``).
``thread``
    A thread pool; useful once run bodies release the GIL.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor` (the default for
    ``--jobs`` > 1); the backend that scales sweeps across CPU cores.

Because every spec carries a seed derived deterministically from its (sweep
name, point label, repeat index) identity, results are **bit-identical**
across backends and job counts.

``--cache-dir DIR`` additionally persists every completed run, keyed by
(parameter fingerprint, seed), so repeated invocations — and experiments
that share simulations, like Figures 4 and 5 — skip runs that were already
computed, in any order.  The fingerprint covers every parameter, including
``reputation_scheme``, so runs of different backends never collide.

Scenarios and schemes
---------------------
``--scenario NAME`` resolves the base parameters through the scenario
registry (:mod:`repro.workloads.registry`; ``--list-scenarios`` prints the
catalogue) and ``--scheme NAME`` swaps the reputation backend the
simulations run on, e.g.::

    python -m repro.experiments.runner \
        --only scheme_comparison --scenario tiny_test --jobs 2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Mapping, Type

from ..adversary import available_adversaries
from ..analysis.storage import ResultStore
from ..analysis.tables import format_markdown_table
from ..config import REPUTATION_SCHEMES, SimulationParameters
from ..errors import ConfigurationError
from ..metrics.summary import RunSummary
from ..parallel.cache import RunCache
from ..parallel.executor import BACKENDS, Executor, create_executor
from ..parallel.specs import RunSpec
from ..workloads.registry import available_scenarios, get_scenario
from .base import Experiment, ExperimentResult
from .figure1_growth import Figure1Growth
from .figure2_reputation_time import Figure2ReputationOverTime
from .figure3_naive_proportion import Figure3NaiveProportion
from .figure4_lent_amount import Figure4LentAmount
from .figure5_lent_proportion import Figure5LentProportion
from .figure6_freerider_fraction import Figure6FreeriderFraction
from .robustness_matrix import RobustnessMatrix
from .scheme_comparison import SchemeComparison
from .success_rate import SuccessRateExperiment
from .table1_parameters import Table1Parameters

__all__ = ["EXPERIMENTS", "make_experiment", "run_all", "render_report", "main"]

#: Registry of every experiment: the paper's artefacts in presentation order,
#: then the reproduction's own additions (the cross-scheme comparison and the
#: scheme x attack robustness matrix).
EXPERIMENTS: dict[str, Type[Experiment]] = {
    "table1": Table1Parameters,
    "figure1": Figure1Growth,
    "success": SuccessRateExperiment,
    "figure2": Figure2ReputationOverTime,
    "figure3": Figure3NaiveProportion,
    "figure4": Figure4LentAmount,
    "figure5": Figure5LentProportion,
    "figure6": Figure6FreeriderFraction,
    "scheme_comparison": SchemeComparison,
    "robustness_matrix": RobustnessMatrix,
}


def _require_known(experiment_id: str) -> Type[Experiment]:
    """The registered experiment class, or a helpful KeyError."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from exc


def make_experiment(
    experiment_id: str,
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 1,
    base_params: SimulationParameters | None = None,
    executor: Executor | None = None,
    cache: RunCache | None = None,
) -> Experiment:
    """Instantiate the experiment registered under ``experiment_id``."""
    experiment_cls = _require_known(experiment_id)
    return experiment_cls(
        scale=scale,
        repeats=repeats,
        seed=seed,
        base_params=base_params,
        executor=executor,
        cache=cache,
    )


def _print_to_stderr(line: str) -> None:
    print(line, file=sys.stderr)


def _print_catalogue(catalogue: Mapping[str, str]) -> None:
    """Print a name → description registry, sorted by name for stable output."""
    for name, description in sorted(catalogue.items()):
        print(f"{name:24s} {description}")


class _ThroughputExecutor(Executor):
    """Executor decorator that reports transactions/sec per completed run.

    Wraps any backend's :meth:`map_specs` and, as each simulation finishes,
    emits its throughput (``num_transactions / RunSummary.elapsed_seconds``)
    through ``emit`` — the ``--throughput`` flag of the CLI.  Cache hits never
    reach the executor, so only freshly computed runs are reported.
    """

    def __init__(self, inner: Executor, emit: Callable[[str], None]) -> None:
        self.inner = inner
        self.backend = inner.backend
        self.jobs = inner.jobs
        self._emit = emit

    def map_specs(self, specs, progress=None, on_result=None):
        def report(index: int, summary: RunSummary) -> None:
            if on_result is not None:
                on_result(index, summary)
            self._emit(_throughput_line(specs[index], summary))

        return self.inner.map_specs(specs, progress=progress, on_result=report)

    def close(self) -> None:
        self.inner.close()


def _throughput_line(spec: RunSpec, summary: RunSummary) -> str:
    """One human-readable throughput report for a completed run."""
    transactions = summary.params.num_transactions
    elapsed = summary.elapsed_seconds
    if elapsed > 0:
        rate = f"{transactions / elapsed:,.0f} tx/s"
    else:
        rate = "n/a"
    return (
        f"[throughput] {spec.describe()}: {transactions:,} transactions "
        f"in {elapsed:.2f}s = {rate}"
    )


def _execution_order(selected: list[str]) -> list[str]:
    """Selected ids in execution order: figure4 always precedes figure5.

    Figure 5 reuses Figure 4's sweep outcome, which only exists once Figure 4
    has run — so when both are requested, figure4 is moved directly in front
    of figure5 no matter how the ids were ordered.  Results are re-assembled
    in the requested order afterwards.
    """
    order = list(selected)
    if "figure4" in order and "figure5" in order:
        order.remove("figure4")
        order.insert(order.index("figure5"), "figure4")
    return order


def run_all(
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 1,
    only: list[str] | None = None,
    store: ResultStore | None = None,
    progress: Callable[[str], None] | None = None,
    base_params: SimulationParameters | None = None,
    jobs: int = 1,
    backend: str | None = None,
    cache: RunCache | Path | str | None = None,
    throughput: bool = False,
) -> dict[str, ExperimentResult]:
    """Run the selected experiments (all by default) and validate each.

    ``jobs`` and ``backend`` configure the parallel executor shared by every
    experiment (see the module docstring); results are identical for any
    combination.  ``cache`` (a :class:`RunCache` or a directory) skips
    simulations whose (params, seed) pair was already computed.
    ``throughput`` reports each completed run's transactions/sec through
    ``progress`` (or stderr when no progress sink is given).

    Figure 5 reuses Figure 4's simulation runs when both are requested —
    regardless of the order the ids appear in ``only`` — since they share
    the exact same sweep.  The returned mapping preserves the requested
    order.
    """
    selected = list(EXPERIMENTS) if only is None else list(dict.fromkeys(only))
    for experiment_id in selected:
        _require_known(experiment_id)
    executor = create_executor(backend, jobs)
    if throughput:
        emit = progress if progress is not None else _print_to_stderr
        executor = _ThroughputExecutor(executor, emit)
    if cache is not None and not isinstance(cache, RunCache):
        cache = RunCache(cache)
    completed: dict[str, ExperimentResult] = {}
    figure4_instance: Figure4LentAmount | None = None
    try:
        for experiment_id in _execution_order(selected):
            experiment = make_experiment(
                experiment_id,
                scale=scale,
                repeats=repeats,
                seed=seed,
                base_params=base_params,
                executor=executor,
                cache=cache,
            )
            if isinstance(experiment, Figure4LentAmount):
                figure4_instance = experiment
            if isinstance(experiment, Figure5LentProportion):
                if figure4_instance is not None:
                    experiment.shared_sweep = figure4_instance.sweep_result
            if progress is not None:
                progress(f"running {experiment_id} ...")
            result = experiment.run_and_validate(progress=progress)
            completed[experiment_id] = result
            if store is not None:
                store.save_json(experiment_id, result.to_dict())
    finally:
        executor.close()
    return {experiment_id: completed[experiment_id] for experiment_id in selected}


def render_report(results: Mapping[str, ExperimentResult]) -> str:
    """Render a Markdown report of every result and its shape checks."""
    lines = ["# Reproduction report", ""]
    summary_rows = []
    for experiment_id, result in results.items():
        passed = sum(1 for check in result.checks if check.passed)
        total = len(result.checks)
        summary_rows.append(
            [experiment_id, result.title, f"{passed}/{total}" if total else "n/a"]
        )
    lines.append(
        format_markdown_table(["id", "experiment", "checks passed"], summary_rows)
    )
    lines.append("")
    for experiment_id, result in results.items():
        lines.append(f"## {experiment_id} — {result.title}")
        lines.append("")
        if result.notes:
            for note in result.notes:
                lines.append(f"*{note}*")
            lines.append("")
        if result.scalars:
            lines.append(
                format_markdown_table(
                    ["quantity", "value"],
                    [[name, value] for name, value in result.scalars.items()],
                )
            )
            lines.append("")
        if result.series:
            lines.append(
                format_markdown_table(result.table_headers(), result.table_rows())
            )
            lines.append("")
        if result.checks:
            lines.append(
                format_markdown_table(
                    ["shape check", "status", "detail"],
                    [
                        [check.name, "PASS" if check.passed else "FAIL", check.detail]
                        for check in result.checks
                    ],
                )
            )
            lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``python -m repro.experiments.runner``)."""
    parser = argparse.ArgumentParser(description="Reproduce the paper's experiments")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "fraction of the base horizon (default: 0.1 of the paper's 500k "
            "transactions, or 1.0 when --scenario already sizes the run)"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="independent repetitions per sweep point",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiment ids to run",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON results and the Markdown report",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="simulations to run concurrently (1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="executor backend (default: serial for --jobs 1, process otherwise)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "persist completed runs here, keyed by (params fingerprint, seed), "
            "and skip any run already present"
        ),
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help=(
            "base parameters from a named scenario in "
            "repro.workloads.registry (see --list-scenarios)"
        ),
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered scenario names (sorted) and exit",
    )
    parser.add_argument(
        "--list-adversaries",
        action="store_true",
        help="print the registered adversary strategy names (sorted) and exit",
    )
    parser.add_argument(
        "--throughput",
        action="store_true",
        help=(
            "print transactions/sec for every completed simulation run "
            "(cache hits are not re-reported)"
        ),
    )
    parser.add_argument(
        "--scheme",
        default=None,
        help=(
            "reputation backend for the base parameters "
            f"(one of: {', '.join(REPUTATION_SCHEMES)})"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        _print_catalogue(available_scenarios())
        return 0
    if args.list_adversaries:
        _print_catalogue(available_adversaries())
        return 0

    base_params: SimulationParameters | None = None
    if args.scenario is not None:
        try:
            base_params = get_scenario(args.scenario, seed=args.seed)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    if args.scheme is not None:
        try:
            base_params = (
                base_params
                if base_params is not None
                else SimulationParameters(seed=args.seed)
            ).with_overrides(reputation_scheme=args.scheme)
        except ConfigurationError as exc:
            print(exc, file=sys.stderr)
            return 2
    # A named scenario is already sized; only the paper-default base needs the
    # laptop-friendly 0.1 downscale.
    scale = args.scale if args.scale is not None else (
        1.0 if args.scenario is not None else 0.1
    )

    store = ResultStore(args.out) if args.out is not None else None
    cache = RunCache(args.cache_dir) if args.cache_dir is not None else None
    results = run_all(
        scale=scale,
        repeats=args.repeats,
        seed=args.seed,
        only=args.only,
        store=store,
        progress=lambda message: print(message, file=sys.stderr),
        base_params=base_params,
        jobs=args.jobs,
        backend=args.backend,
        cache=cache,
        throughput=args.throughput,
    )
    report = render_report(results)
    print(report)
    if store is not None:
        report_path = store.root / "report.md"
        report_path.write_text(report, encoding="utf-8")
        print(f"(report written to {report_path})", file=sys.stderr)
    if cache is not None:
        print(
            f"(run cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"under {cache.store.root})",
            file=sys.stderr,
        )
    failures = sum(
        1
        for result in results.values()
        for check in result.checks
        if not check.passed
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
