"""Run every experiment and render a paper-vs-measured report.

Usage from Python::

    from repro.experiments import run_all, render_report

    results = run_all(scale=0.05, repeats=2, seed=1, jobs=4)
    print(render_report(results))

or from the command line (the consolidated CLI; ``python -m
repro.experiments.runner`` remains as a deprecation shim with the same
flags)::

    python -m repro experiment --scale 0.05 --repeats 2 --out results/

Parallel execution
------------------
Each experiment expands its parameter sweep into a batch of
:class:`~repro.parallel.specs.RunSpec` objects — one fully resolved
(parameters, seed) pair per repeat of each sweep point — and submits the
batch to an executor from :mod:`repro.parallel`.  ``--jobs N`` selects how
many simulations run concurrently and ``--backend`` picks the concurrency
model:

``serial``
    Everything inline in this process (the default for ``--jobs 1``).
``thread``
    A thread pool; useful once run bodies release the GIL.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor` (the default for
    ``--jobs`` > 1); the backend that scales sweeps across CPU cores.

Because every spec carries a seed derived deterministically from its (sweep
name, point label, repeat index) identity, results are **bit-identical**
across backends and job counts.

``--cache-dir DIR`` additionally persists every completed run, keyed by
(parameter fingerprint, seed), so repeated invocations — and experiments
that share simulations, like Figures 4 and 5 — skip runs that were already
computed, in any order.  The fingerprint covers every parameter, including
``reputation_scheme``, so runs of different backends never collide.

Scenarios and schemes
---------------------
``--scenario NAME`` resolves the base parameters through the scenario
registry (:mod:`repro.workloads.registry`; ``python -m repro catalogue``
prints every registry) and ``--scheme NAME`` swaps the reputation backend
the simulations run on, e.g.::

    python -m repro experiment \
        --only scheme_comparison --scenario tiny_test --jobs 2
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Mapping, Type

from ..analysis.storage import ResultStore
from ..analysis.tables import format_markdown_table
from ..config import SimulationParameters
from ..metrics.summary import RunSummary
from ..parallel.cache import RunCache
from ..parallel.executor import Executor
from ..parallel.specs import RunSpec
from .base import Experiment, ExperimentResult
from .detection_eval import DetectionEval
from .figure1_growth import Figure1Growth
from .figure2_reputation_time import Figure2ReputationOverTime
from .figure3_naive_proportion import Figure3NaiveProportion
from .figure4_lent_amount import Figure4LentAmount
from .figure5_lent_proportion import Figure5LentProportion
from .figure6_freerider_fraction import Figure6FreeriderFraction
from .robustness_matrix import RobustnessMatrix
from .scheme_comparison import SchemeComparison
from .success_rate import SuccessRateExperiment
from .table1_parameters import Table1Parameters

__all__ = [
    "EXPERIMENTS",
    "require_known",
    "make_experiment",
    "ThroughputExecutor",
    "throughput_line",
    "execution_order",
    "run_all",
    "render_report",
    "main",
]

#: Registry of every experiment: the paper's artefacts in presentation order,
#: then the reproduction's own additions (the cross-scheme comparison and the
#: scheme x attack robustness matrix).
EXPERIMENTS: dict[str, Type[Experiment]] = {
    "table1": Table1Parameters,
    "figure1": Figure1Growth,
    "success": SuccessRateExperiment,
    "figure2": Figure2ReputationOverTime,
    "figure3": Figure3NaiveProportion,
    "figure4": Figure4LentAmount,
    "figure5": Figure5LentProportion,
    "figure6": Figure6FreeriderFraction,
    "scheme_comparison": SchemeComparison,
    "robustness_matrix": RobustnessMatrix,
    "detection_eval": DetectionEval,
}


def require_known(experiment_id: str) -> Type[Experiment]:
    """The registered experiment class, or a helpful KeyError."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from exc


def make_experiment(
    experiment_id: str,
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 1,
    base_params: SimulationParameters | None = None,
    executor: Executor | None = None,
    cache: RunCache | None = None,
    **kwargs,
) -> Experiment:
    """Instantiate the experiment registered under ``experiment_id``.

    Extra keyword arguments are forwarded to the experiment's constructor —
    e.g. ``schemes=...``/``attacks=...`` to restrict the grid experiments to
    a sub-grid (the report generator's smoke configuration does this).
    """
    experiment_cls = require_known(experiment_id)
    return experiment_cls(
        scale=scale,
        repeats=repeats,
        seed=seed,
        base_params=base_params,
        executor=executor,
        cache=cache,
        **kwargs,
    )


def _print_to_stderr(line: str) -> None:
    print(line, file=sys.stderr)


class ThroughputExecutor(Executor):
    """Executor decorator that reports transactions/sec per completed run.

    Wraps any backend's :meth:`map_specs` and, as each simulation finishes,
    emits its throughput (``num_transactions / RunSummary.elapsed_seconds``)
    through ``emit`` — the ``--throughput`` flag of the CLI.  Cache hits never
    reach the executor, so only freshly computed runs are reported.
    """

    def __init__(self, inner: Executor, emit: Callable[[str], None]) -> None:
        self.inner = inner
        self.backend = inner.backend
        self.jobs = inner.jobs
        self._emit = emit

    def map_specs(self, specs, progress=None, on_result=None):
        def report(index: int, summary: RunSummary) -> None:
            if on_result is not None:
                on_result(index, summary)
            self._emit(throughput_line(specs[index], summary))

        return self.inner.map_specs(specs, progress=progress, on_result=report)

    def close(self) -> None:
        self.inner.close()


def throughput_line(spec: RunSpec, summary: RunSummary) -> str:
    """One human-readable throughput report for a completed run."""
    transactions = summary.params.num_transactions
    elapsed = summary.elapsed_seconds
    if elapsed > 0:
        rate = f"{transactions / elapsed:,.0f} tx/s"
    else:
        rate = "n/a"
    return (
        f"[throughput] {spec.describe()}: {transactions:,} transactions "
        f"in {elapsed:.2f}s = {rate}"
    )


def execution_order(selected: list[str]) -> list[str]:
    """Selected ids in execution order: figure4 always precedes figure5.

    Figure 5 reuses Figure 4's sweep outcome, which only exists once Figure 4
    has run — so when both are requested, figure4 is moved directly in front
    of figure5 no matter how the ids were ordered.  Results are re-assembled
    in the requested order afterwards.
    """
    order = list(selected)
    if "figure4" in order and "figure5" in order:
        order.remove("figure4")
        order.insert(order.index("figure5"), "figure4")
    return order


def run_all(
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 1,
    only: list[str] | None = None,
    store: ResultStore | None = None,
    progress: Callable[[str], None] | None = None,
    base_params: SimulationParameters | None = None,
    jobs: int = 1,
    backend: str | None = None,
    cache: RunCache | Path | str | None = None,
    throughput: bool = False,
) -> dict[str, ExperimentResult]:
    """Run the selected experiments (all by default) and validate each.

    ``jobs`` and ``backend`` configure the parallel executor shared by every
    experiment (see the module docstring); results are identical for any
    combination.  ``cache`` (a :class:`RunCache` or a directory) skips
    simulations whose (params, seed) pair was already computed.
    ``throughput`` reports each completed run's transactions/sec through
    ``progress`` (or stderr when no progress sink is given).

    Figure 5 reuses Figure 4's simulation runs when both are requested —
    regardless of the order the ids appear in ``only`` — since they share
    the exact same sweep.  The returned mapping preserves the requested
    order.

    This is a convenience wrapper: it builds a throwaway
    :class:`~repro.api.service.SimulationService` and delegates to
    :meth:`~repro.api.service.SimulationService.run_experiments`, which is
    where the orchestration now lives.  Callers running more than one suite
    should hold a service themselves to reuse its worker pool.
    """
    # Imported here, not at module top: the service layer builds on this
    # module, and this wrapper is the one edge pointing the other way.
    from ..api.service import SimulationService

    service = SimulationService(jobs=jobs, backend=backend, cache=cache)
    try:
        return service.run_experiments(
            scale=scale,
            repeats=repeats,
            seed=seed,
            only=only,
            store=store,
            progress=progress,
            base_params=base_params,
            throughput=throughput,
        )
    finally:
        service.close()


def render_report(results: Mapping[str, ExperimentResult]) -> str:
    """Render a Markdown report of every result and its shape checks."""
    lines = ["# Reproduction report", ""]
    summary_rows = []
    for experiment_id, result in results.items():
        passed = sum(1 for check in result.checks if check.passed)
        total = len(result.checks)
        summary_rows.append(
            [experiment_id, result.title, f"{passed}/{total}" if total else "n/a"]
        )
    lines.append(
        format_markdown_table(["id", "experiment", "checks passed"], summary_rows)
    )
    lines.append("")
    for experiment_id, result in results.items():
        lines.append(f"## {experiment_id} — {result.title}")
        lines.append("")
        if result.notes:
            for note in result.notes:
                lines.append(f"*{note}*")
            lines.append("")
        if result.scalars:
            lines.append(
                format_markdown_table(
                    ["quantity", "value"],
                    [[name, value] for name, value in result.scalars.items()],
                )
            )
            lines.append("")
        if result.series:
            lines.append(
                format_markdown_table(result.table_headers(), result.table_rows())
            )
            lines.append("")
        if result.checks:
            lines.append(
                format_markdown_table(
                    ["shape check", "status", "detail"],
                    [
                        [check.name, "PASS" if check.passed else "FAIL", check.detail]
                        for check in result.checks
                    ],
                )
            )
            lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Deprecated entry point; delegates to ``python -m repro`` unchanged.

    Every flag this runner ever accepted maps onto the consolidated CLI:
    the listing flags become the ``catalogue`` subcommand, everything else
    becomes ``experiment`` with the same flags — so stdout (the report, the
    catalogue text) is byte-identical to what this module always printed.
    Only a deprecation note is added, on stderr.
    """
    # Imported here, not at module top: the CLI builds on this module.
    from .. import cli

    argv = list(sys.argv[1:] if argv is None else argv)

    def requests(flag: str) -> bool:
        # Accept the unambiguous prefix abbreviations the old argparse-based
        # parser accepted ("--list-s", "--list-scen", ...), not just the
        # full spelling.  "--list-" and shorter are ambiguous between the
        # two listing flags, exactly as they were for argparse.
        return any(
            flag.startswith(arg) and len(arg) > len("--list-") for arg in argv
        )

    if requests("--list-scenarios"):
        new_argv = ["catalogue", "scenarios"]
    elif requests("--list-adversaries"):
        new_argv = ["catalogue", "adversaries"]
    else:
        new_argv = ["experiment", *argv]
    print(
        "note: `python -m repro.experiments.runner` is deprecated; use "
        f"`python -m repro {new_argv[0]}` (same flags)",
        file=sys.stderr,
    )
    return cli.main(new_argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
