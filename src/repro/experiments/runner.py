"""Run every experiment and render a paper-vs-measured report.

Usage from Python::

    from repro.experiments import run_all, render_report

    results = run_all(scale=0.05, repeats=2, seed=1)
    print(render_report(results))

or from the command line::

    python -m repro.experiments.runner --scale 0.05 --repeats 2 --out results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Mapping, Type

from ..analysis.storage import ResultStore
from ..analysis.tables import format_markdown_table
from ..config import SimulationParameters
from .base import Experiment, ExperimentResult
from .figure1_growth import Figure1Growth
from .figure2_reputation_time import Figure2ReputationOverTime
from .figure3_naive_proportion import Figure3NaiveProportion
from .figure4_lent_amount import Figure4LentAmount
from .figure5_lent_proportion import Figure5LentProportion
from .figure6_freerider_fraction import Figure6FreeriderFraction
from .success_rate import SuccessRateExperiment
from .table1_parameters import Table1Parameters

__all__ = ["EXPERIMENTS", "make_experiment", "run_all", "render_report", "main"]

#: Registry of every experiment, in the order the paper presents them.
EXPERIMENTS: dict[str, Type[Experiment]] = {
    "table1": Table1Parameters,
    "figure1": Figure1Growth,
    "success": SuccessRateExperiment,
    "figure2": Figure2ReputationOverTime,
    "figure3": Figure3NaiveProportion,
    "figure4": Figure4LentAmount,
    "figure5": Figure5LentProportion,
    "figure6": Figure6FreeriderFraction,
}


def make_experiment(
    experiment_id: str,
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 1,
    base_params: SimulationParameters | None = None,
) -> Experiment:
    """Instantiate the experiment registered under ``experiment_id``."""
    try:
        experiment_cls = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from exc
    return experiment_cls(
        scale=scale, repeats=repeats, seed=seed, base_params=base_params
    )


def run_all(
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 1,
    only: list[str] | None = None,
    store: ResultStore | None = None,
    progress: Callable[[str], None] | None = None,
    base_params: SimulationParameters | None = None,
) -> dict[str, ExperimentResult]:
    """Run the selected experiments (all by default) and validate each.

    Figure 5 reuses Figure 4's simulation runs when both are requested, since
    they share the exact same sweep.
    """
    selected = list(EXPERIMENTS) if only is None else list(only)
    results: dict[str, ExperimentResult] = {}
    figure4_instance: Figure4LentAmount | None = None
    for experiment_id in selected:
        experiment = make_experiment(
            experiment_id, scale=scale, repeats=repeats, seed=seed, base_params=base_params
        )
        if isinstance(experiment, Figure4LentAmount):
            figure4_instance = experiment
        if isinstance(experiment, Figure5LentProportion) and figure4_instance is not None:
            experiment.shared_sweep = figure4_instance.sweep_result
        if progress is not None:
            progress(f"running {experiment_id} ...")
        result = experiment.run_and_validate(progress=progress)
        results[experiment_id] = result
        if store is not None:
            store.save_json(experiment_id, result.to_dict())
    return results


def render_report(results: Mapping[str, ExperimentResult]) -> str:
    """Render a Markdown report of every result and its shape checks."""
    lines = ["# Reproduction report", ""]
    summary_rows = []
    for experiment_id, result in results.items():
        passed = sum(1 for check in result.checks if check.passed)
        total = len(result.checks)
        summary_rows.append(
            [experiment_id, result.title, f"{passed}/{total}" if total else "n/a"]
        )
    lines.append(format_markdown_table(["id", "experiment", "checks passed"], summary_rows))
    lines.append("")
    for experiment_id, result in results.items():
        lines.append(f"## {experiment_id} — {result.title}")
        lines.append("")
        if result.notes:
            for note in result.notes:
                lines.append(f"*{note}*")
            lines.append("")
        if result.scalars:
            lines.append(
                format_markdown_table(
                    ["quantity", "value"],
                    [[name, value] for name, value in result.scalars.items()],
                )
            )
            lines.append("")
        if result.series:
            lines.append(
                format_markdown_table(result.table_headers(), result.table_rows())
            )
            lines.append("")
        if result.checks:
            lines.append(
                format_markdown_table(
                    ["shape check", "status", "detail"],
                    [
                        [check.name, "PASS" if check.passed else "FAIL", check.detail]
                        for check in result.checks
                    ],
                )
            )
            lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``python -m repro.experiments.runner``)."""
    parser = argparse.ArgumentParser(description="Reproduce the paper's experiments")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of the paper's 500k-transaction horizon")
    parser.add_argument("--repeats", type=int, default=3,
                        help="independent repetitions per sweep point")
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment ids to run")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for JSON results and the Markdown report")
    args = parser.parse_args(argv)

    store = ResultStore(args.out) if args.out is not None else None
    results = run_all(
        scale=args.scale,
        repeats=args.repeats,
        seed=args.seed,
        only=args.only,
        store=store,
        progress=lambda message: print(message, file=sys.stderr),
    )
    report = render_report(results)
    print(report)
    if store is not None:
        report_path = store.root / "report.md"
        report_path.write_text(report, encoding="utf-8")
        print(f"(report written to {report_path})", file=sys.stderr)
    failures = sum(
        1
        for result in results.values()
        for check in result.checks
        if not check.passed
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
