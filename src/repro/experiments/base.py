"""Common machinery shared by every experiment."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..analysis.comparison import CheckResult, ShapeCheck, evaluate_checks
from ..analysis.plotting import ascii_plot
from ..analysis.tables import format_table
from ..config import SimulationParameters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from ..parallel.cache import RunCache
    from ..parallel.executor import Executor
    from ..workloads.sweep import ParameterSweep, SweepResult

__all__ = ["ExperimentResult", "Experiment"]

#: An (x, y) point list, the unit every figure is made of.
Series = list[tuple[float, float]]


@dataclass
class ExperimentResult:
    """The data behind one regenerated table or figure."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    #: The plotted series, keyed by legend label.
    series: dict[str, Series] = field(default_factory=dict)
    #: Scalar headline numbers (e.g. the two success rates).
    scalars: dict[str, float] = field(default_factory=dict)
    #: Free-text notes recorded by the experiment (scaling, caveats).
    notes: list[str] = field(default_factory=list)
    #: The base parameters the experiment ran with (post-scaling).
    params: SimulationParameters | None = None
    #: Shape-check outcomes filled in by :meth:`Experiment.validate`.
    checks: list[CheckResult] = field(default_factory=list)
    #: Optional display labels for x values (categorical sweeps, e.g. the
    #: scheme-comparison experiment, label rows instead of showing indices).
    x_ticks: dict[float, str] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Rendering                                                            #
    # ------------------------------------------------------------------ #
    def table_rows(self) -> list[list[object]]:
        """Rows of an x-indexed table with one column per series."""
        xs: list[float] = sorted({x for points in self.series.values() for x, _ in points})
        lookup = {
            name: {x: y for x, y in points} for name, points in self.series.items()
        }
        rows: list[list[object]] = []
        for x in xs:
            row: list[object] = [self.x_ticks.get(x, x)]
            for name in self.series:
                row.append(lookup[name].get(x, float("nan")))
            rows.append(row)
        return rows

    def table_headers(self) -> list[str]:
        """Headers matching :meth:`table_rows`."""
        return [self.x_label] + list(self.series)

    def render_text(self, width: int = 72, height: int = 18) -> str:
        """Human-readable rendering: title, scalars, plot, table, checks."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.scalars:
            parts.append(
                "\n".join(f"  {name}: {value:.6g}" for name, value in self.scalars.items())
            )
        if self.series:
            parts.append(
                ascii_plot(
                    self.series,
                    width=width,
                    height=height,
                    title="",
                    x_label=self.x_label,
                    y_label=self.y_label,
                )
            )
            parts.append(format_table(self.table_headers(), self.table_rows()))
        if self.notes:
            parts.append("\n".join(f"note: {note}" for note in self.notes))
        if self.checks:
            parts.append("\n".join(str(check) for check in self.checks))
        return "\n\n".join(parts)

    # ------------------------------------------------------------------ #
    # Serialisation                                                        #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used by ResultStore)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {name: [[x, y] for x, y in pts] for name, pts in self.series.items()},
            "scalars": dict(self.scalars),
            "notes": list(self.notes),
            "params": self.params.to_dict() if self.params is not None else None,
            "x_ticks": {str(x): label for x, label in self.x_ticks.items()},
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
        }

    @property
    def all_checks_passed(self) -> bool:
        """Whether every evaluated shape check passed (False if none ran)."""
        return bool(self.checks) and all(check.passed for check in self.checks)


class Experiment(abc.ABC):
    """Base class for a table/figure reproduction.

    Parameters
    ----------
    scale:
        Horizon scaling relative to the paper's 500,000 transactions.  1.0 is
        the paper's operating point; the default 0.1 finishes in minutes on a
        laptop while preserving the qualitative shapes.
    repeats:
        Independent repetitions averaged per sweep point (the paper uses 10).
    seed:
        Master seed for reproducibility.
    base_params:
        Optional replacement for the paper-default base configuration.
    executor:
        Optional :class:`~repro.parallel.executor.Executor` the experiment's
        sweeps run on; ``None`` runs every simulation serially.  Results are
        identical either way — each run's seed is derived from its (sweep,
        point, repeat) identity, never from execution order.
    cache:
        Optional :class:`~repro.parallel.cache.RunCache`; sweeps skip any
        (params, seed) run the cache already holds.
    """

    experiment_id: str = "experiment"
    title: str = ""
    x_label: str = "x"
    y_label: str = "y"

    def __init__(
        self,
        scale: float = 0.1,
        repeats: int = 3,
        seed: int = 1,
        base_params: SimulationParameters | None = None,
        executor: "Executor | None" = None,
        cache: "RunCache | None" = None,
    ) -> None:
        self.scale = scale
        self.repeats = repeats
        self.seed = seed
        self.base_params = (
            base_params if base_params is not None else SimulationParameters(seed=seed)
        )
        self.executor = executor
        self.cache = cache

    # ------------------------------------------------------------------ #
    # Contract                                                             #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        """Execute the experiment and return its result."""

    def checks(self) -> Sequence[ShapeCheck]:
        """Shape expectations extracted from the paper (may be empty)."""
        return []

    def validate(self, result: ExperimentResult) -> list[CheckResult]:
        """Evaluate :meth:`checks` against ``result`` and record the outcomes."""
        outcomes = evaluate_checks(list(self.checks()), result)
        result.checks = outcomes
        return outcomes

    def run_and_validate(
        self, progress: Callable[[str], None] | None = None
    ) -> ExperimentResult:
        """Convenience: run, then validate, returning the annotated result."""
        result = self.run(progress=progress)
        self.validate(result)
        return result

    # ------------------------------------------------------------------ #
    # Helpers for subclasses                                               #
    # ------------------------------------------------------------------ #
    def _run_sweep(
        self,
        sweep: "ParameterSweep",
        progress: Callable[[str], None] | None = None,
    ) -> "SweepResult":
        """Run ``sweep`` on the experiment's executor and run cache."""
        return sweep.run(progress=progress, executor=self.executor, cache=self.cache)

    def _scaled_base(self) -> SimulationParameters:
        """The base configuration with the experiment's scale applied."""
        if self.scale == 1.0:
            return self.base_params
        return self.base_params.scaled(self.scale)

    def _new_result(self) -> ExperimentResult:
        """A fresh result pre-filled with the experiment's metadata."""
        result = ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            x_label=self.x_label,
            y_label=self.y_label,
            params=self._scaled_base(),
        )
        if self.scale != 1.0:
            result.notes.append(
                f"run at scale={self.scale:g} of the paper's horizon "
                f"({self._scaled_base().num_transactions:,} transactions) "
                f"with {self.repeats} repeat(s); the paper uses 500,000 "
                f"transactions and 10 repeats"
            )
        return result
