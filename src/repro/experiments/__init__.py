"""Experiment harness: one module per table/figure of the paper.

Every experiment follows the same contract (:class:`~repro.experiments.base.Experiment`):
``run()`` executes the underlying parameter sweep at a configurable scale and
number of repeats and returns an :class:`~repro.experiments.base.ExperimentResult`
holding the series the paper plots; ``checks()`` returns the shape
expectations extracted from the paper's text, which
:meth:`~repro.experiments.base.Experiment.validate` evaluates against a result.

Experiment identifiers (see DESIGN.md §3):

=========  ==========================================================
``table1``  Table 1 — simulation parameters
``figure1`` Figure 1 — uncooperative vs cooperative peer growth
``success`` §4.1 text — decision success rate with/without introductions
``figure2`` Figure 2 — cooperative reputation over time vs arrival rate
``figure3`` Figure 3 — final composition vs proportion of naive introducers
``figure4`` Figure 4 — final counts and refusals vs amount of reputation lent
``figure5`` Figure 5 — final proportions vs amount of reputation lent
``figure6`` Figure 6 — final counts and refusals vs freerider arrival fraction
``scheme_comparison`` cross-backend newcomer/whitewashing table (ours)
``robustness_matrix`` scheme x attack grid over the adversary registry (ours)
``detection_eval`` detection ranking + calibration per scheme x attack (ours)
=========  ==========================================================
"""

from .base import Experiment, ExperimentResult
from .table1_parameters import Table1Parameters
from .figure1_growth import Figure1Growth
from .success_rate import SuccessRateExperiment
from .figure2_reputation_time import Figure2ReputationOverTime
from .figure3_naive_proportion import Figure3NaiveProportion
from .figure4_lent_amount import Figure4LentAmount
from .figure5_lent_proportion import Figure5LentProportion
from .figure6_freerider_fraction import Figure6FreeriderFraction
from .scheme_comparison import SchemeComparison
from .robustness_matrix import RobustnessMatrix
from .detection_eval import DetectionEval
from .runner import EXPERIMENTS, make_experiment, run_all, render_report

__all__ = [
    "Experiment",
    "ExperimentResult",
    "Table1Parameters",
    "Figure1Growth",
    "SuccessRateExperiment",
    "Figure2ReputationOverTime",
    "Figure3NaiveProportion",
    "Figure4LentAmount",
    "Figure5LentProportion",
    "Figure6FreeriderFraction",
    "SchemeComparison",
    "RobustnessMatrix",
    "DetectionEval",
    "EXPERIMENTS",
    "make_experiment",
    "run_all",
    "render_report",
]
