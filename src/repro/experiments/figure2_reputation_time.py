"""Figure 2 — reputation of cooperative peers over time, per arrival rate.

The paper sweeps the new-peer arrival rate lambda over almost three orders of
magnitude (0.001 … 0.2) and plots the average reputation of cooperative peers
(founders and admitted entrants together) over simulated time.  The claims we
check:

* for low and moderate arrival rates the average stays roughly constant;
* for the highest rates (0.1, 0.2) the system is initially overwhelmed —
  lending drains cooperative reputation — and then recovers to a steady
  state maintained for the rest of the run;
* the reputation of uncooperative peers stays very low throughout (the paper
  does not even plot it), which we record as a scalar.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck, roughly_flat
from ..workloads.sweep import ParameterSweep, SweepPoint
from .base import Experiment, ExperimentResult

__all__ = ["Figure2ReputationOverTime"]

#: The arrival rates plotted in Figure 2.
ARRIVAL_RATES = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2)

#: Rates the paper singles out as "the system is overwhelmed by new entrants".
HIGH_RATES = (0.1, 0.2)


class Figure2ReputationOverTime(Experiment):
    """Reproduce Figure 2 (cooperative reputation vs time per arrival rate)."""

    experiment_id = "figure2"
    title = "Figure 2 — reputation of cooperative peers over time"
    x_label = "time units"
    y_label = "average reputation of cooperative peers"

    def __init__(self, *args, arrival_rates: Sequence[float] = ARRIVAL_RATES, **kwargs):
        super().__init__(*args, **kwargs)
        self.arrival_rates = tuple(arrival_rates)

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=self.base_params,
            points=[
                SweepPoint(
                    label=f"rate-{rate:g}", x=rate, overrides={"arrival_rate": rate}
                )
                for rate in self.arrival_rates
            ],
            repeats=self.repeats,
            scale=self.scale,
        )
        outcome = self._run_sweep(sweep, progress=progress)
        for rate in self.arrival_rates:
            label = f"rate-{rate:g}"
            series = outcome.averaged_timeseries(
                label, lambda s: s.cooperative_reputation
            )
            result.series[f"Arrival Rate {rate:g}"] = list(
                zip(series.times, series.values)
            )
            uncoop_rep, _ = outcome.mean_metric(
                label, lambda s: s.uncooperative_reputation.finite().last_value(0.0)
            )
            result.scalars[f"final uncooperative reputation (rate {rate:g})"] = uncoop_rep
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def checks(self) -> Sequence[ShapeCheck]:
        def low_rates_flat(result: ExperimentResult) -> tuple[bool, str]:
            # The paper's claim is about the sustained level, so the check is
            # evaluated on the second half of each curve: at reduced scale the
            # initial transient (founders at 1.0 diluted by entrants that are
            # still converging) would otherwise dominate.
            details = []
            for rate in self.arrival_rates:
                if rate in HIGH_RATES:
                    continue
                label = f"Arrival Rate {rate:g}"
                points = result.series.get(label, [])
                steady_state = points[len(points) // 2 :]
                ok, detail = roughly_flat(steady_state, relative_band=0.2)
                details.append(f"{label}: {detail}")
                if not ok:
                    return False, "; ".join(details)
            return True, "; ".join(details)

        def high_rates_recover(result: ExperimentResult) -> tuple[bool, str]:
            details = []
            for rate in HIGH_RATES:
                if rate not in self.arrival_rates:
                    continue
                label = f"Arrival Rate {rate:g}"
                values = [y for _, y in result.series.get(label, []) if y == y]
                if len(values) < 4:
                    details.append(f"{label}: too few samples")
                    continue
                initial = values[0]
                minimum = min(values)
                final = values[-1]
                dipped = minimum < initial - 0.02
                recovered = final >= minimum
                details.append(
                    f"{label}: start={initial:.3f} min={minimum:.3f} end={final:.3f}"
                )
                if not (dipped and recovered):
                    return False, "; ".join(details)
            return True, "; ".join(details)

        def uncooperative_stay_low(result: ExperimentResult) -> tuple[bool, str]:
            values = [
                value
                for name, value in result.scalars.items()
                if name.startswith("final uncooperative reputation")
            ]
            worst = max(values) if values else 0.0
            return worst < 0.35, f"worst final uncooperative reputation = {worst:.3f}"

        return [
            ShapeCheck(
                name="cooperative reputation roughly constant for low/medium rates",
                predicate=low_rates_flat,
                paper_claim="'the average reputation of cooperative peers remains "
                "more or less constant with respect to time for all values of lambda'",
            ),
            ShapeCheck(
                name="highest rates dip then recover to a steady state",
                predicate=high_rates_recover,
                paper_claim="'the system is overwhelmed by the new entrants ... "
                "Thereafter, peer reputations recover ... This steady state is then "
                "maintained'",
            ),
            ShapeCheck(
                name="uncooperative reputation stays very low",
                predicate=uncooperative_stay_low,
                paper_claim="'We do not plot the reputation of uncooperative peers as "
                "it remains very low for all arrival rates'",
            ),
        ]
