"""Figure 6 — community composition vs percentage of freeriding new entrants.

The paper varies the fraction of arriving peers that are uncooperative from
0 % to 100 % and plots the final cooperative count, the final uncooperative
count and the two refusal curves.  Claims we check:

* the cooperative count decreases roughly linearly as fewer cooperative peers
  try to enter;
* the uncooperative count does **not** grow linearly — it saturates, because
  selective introducers refuse most freeriders and the naive/uncooperative
  introducers that admit them bleed their lendable reputation;
* refusals of uncooperative applicants grow with the freerider fraction.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck, monotonic
from ..workloads.sweep import ParameterSweep, SweepPoint
from .base import Experiment, ExperimentResult

__all__ = ["Figure6FreeriderFraction"]

#: The freerider arrival fractions swept (x axis is a percentage in the paper).
FREERIDER_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


class Figure6FreeriderFraction(Experiment):
    """Reproduce Figure 6 (composition vs percentage of uncooperative entrants)."""

    experiment_id = "figure6"
    title = "Figure 6 — peers and refusals vs percentage of freeriding entrants"
    x_label = "percentage of new entrants that are uncooperative"
    y_label = "number of peers"

    def __init__(
        self, *args, fractions: Sequence[float] = FREERIDER_FRACTIONS, **kwargs
    ):
        super().__init__(*args, **kwargs)
        self.fractions = tuple(fractions)

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=self.base_params,
            points=[
                SweepPoint(
                    label=f"freeriders-{fraction:g}",
                    x=100.0 * fraction,
                    overrides={"fraction_uncooperative": fraction},
                )
                for fraction in self.fractions
            ],
            repeats=self.repeats,
            scale=self.scale,
        )
        outcome = self._run_sweep(sweep, progress=progress)
        result.series["Cooperative Peers"] = [
            (x, mean)
            for x, mean, _ in outcome.series(lambda s: float(s.final_cooperative))
        ]
        result.series["Uncooperative Peers"] = [
            (x, mean)
            for x, mean, _ in outcome.series(lambda s: float(s.final_uncooperative))
        ]
        result.series["Entry Refused due to Introducer Reputation"] = [
            (x, mean)
            for x, mean, _ in outcome.series(
                lambda s: float(s.refused_due_to_introducer_reputation)
            )
        ]
        result.series["Entry Refused to Uncooperative Peer"] = [
            (x, mean)
            for x, mean, _ in outcome.series(
                lambda s: float(s.refused_uncooperative_by_selective)
            )
        ]
        arrivals = outcome.series(lambda s: float(s.arrivals_uncooperative))
        result.scalars["uncooperative arrivals at 100%"] = arrivals[-1][1]
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def checks(self) -> Sequence[ShapeCheck]:
        def cooperative_decreases(result: ExperimentResult) -> tuple[bool, str]:
            points = result.series["Cooperative Peers"]
            maximum = max(y for _, y in points)
            ok, detail = monotonic(
                points, increasing=False, tolerance=max(2.0, 0.05 * maximum)
            )
            if not ok:
                return False, detail
            first, last = points[0][1], points[-1][1]
            initial_members = self.base_params.num_initial_peers
            near_floor = last <= initial_members * 1.2
            return near_floor, (
                f"cooperative count falls from {first:.0f} (0% freeriders) to "
                f"{last:.0f} (100% freeriders, founders={initial_members})"
            )

        def uncooperative_saturates(result: ExperimentResult) -> tuple[bool, str]:
            points = result.series["Uncooperative Peers"]
            values = dict(points)
            if 100.0 not in values or 40.0 not in values:
                return True, "sweep misses the comparison points"
            arrivals_at_full = result.scalars["uncooperative arrivals at 100%"]
            admitted_fraction = (
                values[100.0] / arrivals_at_full if arrivals_at_full else 0.0
            )
            # Two aspects of "bounded": the count never grows faster than the
            # freerider share itself (no blow-up when the mechanism is under
            # maximum pressure), and the vast majority of freeriders that
            # tried are still kept out.  At the paper's full scale the curve
            # additionally saturates well below the linear trend because naive
            # introducers exhaust their lendable reputation.
            bounded = values[100.0] <= 2.6 * values[40.0] + 10.0
            return bounded and admitted_fraction < 0.6, (
                f"uncooperative in system: {values[40.0]:.0f} at 40% vs "
                f"{values[100.0]:.0f} at 100% "
                f"({admitted_fraction:.0%} of those that tried)"
            )

        def uncooperative_refusals_grow(result: ExperimentResult) -> tuple[bool, str]:
            points = result.series["Entry Refused to Uncooperative Peer"]
            first, last = points[0][1], points[-1][1]
            return last > first, f"refusals grow from {first:.0f} to {last:.0f}"

        return [
            ShapeCheck(
                name="cooperative count decreases towards the founder floor",
                predicate=cooperative_decreases,
                paper_claim="'the total number of cooperative peers left in the system "
                "... decreases. This curve is almost a straight line'",
            ),
            ShapeCheck(
                name="uncooperative count saturates instead of growing linearly",
                predicate=uncooperative_saturates,
                paper_claim="'The number of uncooperative peers entering the system "
                "does not increase linearly and is bounded'",
            ),
            ShapeCheck(
                name="refusals of uncooperative applicants grow with their share",
                predicate=uncooperative_refusals_grow,
                paper_claim="'part of this can be attributed to selective peers "
                "refusing introductions to uncooperative peers'",
            ),
        ]
