"""Figure 5 — community proportions vs amount of reputation lent.

Same sweep as Figure 4 but plotting the *proportion* of cooperative and
uncooperative peers in the final community.  The paper's point: raising the
stake beyond ~0.15 removes reputation from the system and keeps peers out
"without distinguishing between cooperative and uncooperative nodes" — the
relative proportions barely move.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck, roughly_flat
from ..workloads.sweep import SweepResult
from ._lent_sweep import LENT_AMOUNTS, build_lent_sweep
from .base import Experiment, ExperimentResult

__all__ = ["Figure5LentProportion"]


class Figure5LentProportion(Experiment):
    """Reproduce Figure 5 (final proportions vs introAmt)."""

    experiment_id = "figure5"
    title = "Figure 5 — proportion of peers vs amount of reputation lent"
    x_label = "amount of reputation lent by introducer"
    y_label = "proportion of peers"

    def __init__(
        self,
        *args,
        amounts: Sequence[float] = LENT_AMOUNTS,
        shared_sweep: SweepResult | None = None,
        **kwargs,
    ):
        """``shared_sweep`` lets the runner reuse Figure 4's runs verbatim."""
        super().__init__(*args, **kwargs)
        self.amounts = tuple(amounts)
        self.shared_sweep = shared_sweep

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        outcome = self.shared_sweep
        if outcome is None:
            # Same canonical sweep name as Figure 4: when a run cache is
            # active this re-resolves to Figure 4's simulations even if
            # Figure 4 never ran (or ran in a different invocation).
            sweep = build_lent_sweep(
                self.base_params, self.amounts, self.scale, self.repeats
            )
            outcome = self._run_sweep(sweep, progress=progress)
        else:
            result.notes.append("reused the simulation runs of figure4 (same sweep)")
        coop = outcome.series(lambda s: float(s.final_cooperative))
        uncoop = outcome.series(lambda s: float(s.final_uncooperative))
        coop_points = []
        uncoop_points = []
        for (x, coop_mean, _), (_, uncoop_mean, _) in zip(coop, uncoop):
            total = coop_mean + uncoop_mean
            if total <= 0:
                continue
            coop_points.append((x, coop_mean / total))
            uncoop_points.append((x, uncoop_mean / total))
        result.series["Cooperative Peers"] = coop_points
        result.series["Uncooperative Peers"] = uncoop_points
        return result

    def checks(self) -> Sequence[ShapeCheck]:
        def proportions_flat(result: ExperimentResult) -> tuple[bool, str]:
            ok_coop, detail_coop = roughly_flat(
                result.series["Cooperative Peers"], relative_band=0.1
            )
            ok_uncoop, detail_uncoop = roughly_flat(
                result.series["Uncooperative Peers"], relative_band=0.6
            )
            detail = f"cooperative: {detail_coop}; uncooperative: {detail_uncoop}"
            return ok_coop and ok_uncoop, detail

        def proportions_sum_to_one(result: ExperimentResult) -> tuple[bool, str]:
            coop = dict(result.series["Cooperative Peers"])
            uncoop = dict(result.series["Uncooperative Peers"])
            worst = max(
                (abs(coop[x] + uncoop.get(x, 0.0) - 1.0) for x in coop), default=0.0
            )
            return worst < 1e-9, f"max |coop + uncoop - 1| = {worst:.2e}"

        return [
            ShapeCheck(
                name="relative proportions barely change with the stake",
                predicate=proportions_flat,
                paper_claim="'the relative proportions cooperative/uncooperative nodes "
                "does not change significantly'",
            ),
            ShapeCheck(
                name="proportions are complementary",
                predicate=proportions_sum_to_one,
                paper_claim="internal consistency of the figure",
            ),
        ]
