"""Shared sweep over the amount of reputation lent (Figures 4 and 5)."""

from __future__ import annotations

from typing import Callable, Sequence

from ..config import SimulationParameters
from ..workloads.sweep import ParameterSweep, SweepPoint, SweepResult

__all__ = ["LENT_AMOUNTS", "build_lent_sweep", "run_lent_sweep"]

#: introAmt values plotted on the x axis of Figures 4 and 5.
LENT_AMOUNTS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45)


def build_lent_sweep(
    base: SimulationParameters,
    amounts: Sequence[float],
    scale: float,
    repeats: int,
    name: str = "lent_amount",
) -> ParameterSweep:
    """Build the introAmt sweep shared by Figure 4 and Figure 5.

    ``min_intro_reputation`` is left at ``None`` so the paper's rule
    (a margin above the lent amount) tracks the swept value automatically.
    """
    points = [
        SweepPoint(
            label=f"lend-{amount:g}",
            x=amount,
            overrides={"intro_amount": amount},
        )
        for amount in amounts
    ]
    return ParameterSweep(
        name=name, base=base, points=points, repeats=repeats, scale=scale
    )


def run_lent_sweep(
    base: SimulationParameters,
    amounts: Sequence[float],
    scale: float,
    repeats: int,
    progress: Callable[[str], None] | None = None,
    name: str = "lent_amount",
) -> SweepResult:
    """Run the shared introAmt sweep."""
    return build_lent_sweep(base, amounts, scale, repeats, name=name).run(progress=progress)
