"""Shared sweep over the amount of reputation lent (Figures 4 and 5).

Both figures plot the *same* simulations, so the sweep is defined once under
one canonical name.  The name feeds the per-run seed derivation, which means
Figure 4 and Figure 5 resolve to identical (params, seed) pairs: within one
invocation the runner shares the sweep outcome outright, and across
invocations the run cache recognises the runs no matter which figure
computed them first.
"""

from __future__ import annotations

from typing import Sequence

from ..config import SimulationParameters
from ..workloads.sweep import ParameterSweep, SweepPoint

__all__ = ["LENT_AMOUNTS", "LENT_SWEEP_NAME", "build_lent_sweep"]

#: introAmt values plotted on the x axis of Figures 4 and 5.
LENT_AMOUNTS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45)

#: Canonical sweep name shared by Figure 4 and Figure 5 (seed derivation and
#: run-cache keys depend on it, so both figures resolve to the same
#: simulations).  The historic "figure4" name is kept so the seed stream —
#: and therefore every recorded figure4 result — stays bit-identical to
#: releases where Figure 4 ran the sweep under its own experiment id.
LENT_SWEEP_NAME = "figure4"


def build_lent_sweep(
    base: SimulationParameters,
    amounts: Sequence[float],
    scale: float,
    repeats: int,
    name: str = LENT_SWEEP_NAME,
) -> ParameterSweep:
    """Build the introAmt sweep shared by Figure 4 and Figure 5.

    ``min_intro_reputation`` is left at ``None`` so the paper's rule
    (a margin above the lent amount) tracks the swept value automatically.
    """
    points = [
        SweepPoint(
            label=f"lend-{amount:g}",
            x=amount,
            overrides={"intro_amount": amount},
        )
        for amount in amounts
    ]
    return ParameterSweep(
        name=name, base=base, points=points, repeats=repeats, scale=scale
    )
