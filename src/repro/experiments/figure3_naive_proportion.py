"""Figure 3 — final community composition vs proportion of naive introducers.

The paper varies the fraction of cooperative peers that are naive introducers
from 0 to 1 and reports the number of cooperative and uncooperative peers in
the system at the end of the run.  Claims we check:

* the admitted uncooperative count increases with the naive fraction;
* even with *no* naive introducers some uncooperative peers get in, because
  selective introducers err at rate ``errSel`` (about errSel of the
  uncooperative arrivals);
* even when *every* introducer is naive, the admitted uncooperative count
  stays well below the number that tried, because naive introducers bleed
  reputation with every failed audit and eventually fall below
  ``minIntroRep``;
* the cooperative count decreases (mildly) as the naive fraction grows.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.comparison import ShapeCheck, monotonic
from ..workloads.sweep import ParameterSweep, SweepPoint
from .base import Experiment, ExperimentResult

__all__ = ["Figure3NaiveProportion"]

#: The naive-introducer fractions swept (the paper plots 0 .. 1).
NAIVE_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


class Figure3NaiveProportion(Experiment):
    """Reproduce Figure 3 (composition vs proportion of naive introducers)."""

    experiment_id = "figure3"
    title = "Figure 3 — peers in system vs proportion of naive introducers"
    x_label = "proportion of naive introducers"
    y_label = "number of peers"

    def __init__(self, *args, naive_fractions: Sequence[float] = NAIVE_FRACTIONS, **kwargs):
        super().__init__(*args, **kwargs)
        self.naive_fractions = tuple(naive_fractions)

    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=self.base_params,
            points=[
                SweepPoint(
                    label=f"naive-{fraction:g}",
                    x=fraction,
                    overrides={"fraction_naive": fraction},
                )
                for fraction in self.naive_fractions
            ],
            repeats=self.repeats,
            scale=self.scale,
        )
        outcome = self._run_sweep(sweep, progress=progress)
        result.series["Cooperative Peers"] = [
            (x, mean)
            for x, mean, _ in outcome.series(lambda s: float(s.final_cooperative))
        ]
        result.series["Uncooperative Peers"] = [
            (x, mean)
            for x, mean, _ in outcome.series(lambda s: float(s.final_uncooperative))
        ]
        uncoop_arrivals = outcome.series(lambda s: float(s.arrivals_uncooperative))
        result.scalars["mean uncooperative arrivals per run"] = (
            sum(mean for _, mean, _ in uncoop_arrivals) / len(uncoop_arrivals)
        )
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def checks(self) -> Sequence[ShapeCheck]:
        def uncooperative_increases(result: ExperimentResult) -> tuple[bool, str]:
            points = result.series["Uncooperative Peers"]
            tolerance = max(2.0, 0.1 * max(y for _, y in points))
            return monotonic(points, increasing=True, tolerance=tolerance)

        def selective_error_floor(result: ExperimentResult) -> tuple[bool, str]:
            points = dict(result.series["Uncooperative Peers"])
            at_zero = points.get(0.0)
            if at_zero is None:
                return True, "0.0 not part of the sweep"
            arrivals = result.scalars["mean uncooperative arrivals per run"]
            if arrivals == 0:
                return True, "no uncooperative arrivals"
            fraction = at_zero / arrivals
            err = self.base_params.selective_error_rate
            passed = fraction <= max(3.0 * err, err + 0.1)
            return passed, (
                f"with only selective introducers {fraction:.1%} of uncooperative "
                f"arrivals got in (errSel={err:.0%})"
            )

        def naive_bound(result: ExperimentResult) -> tuple[bool, str]:
            points = dict(result.series["Uncooperative Peers"])
            at_one = points.get(1.0)
            if at_one is None:
                return True, "1.0 not part of the sweep"
            arrivals = result.scalars["mean uncooperative arrivals per run"]
            if arrivals == 0:
                return True, "no uncooperative arrivals"
            fraction = at_one / arrivals
            return fraction < 0.95, (
                f"with only naive introducers {fraction:.1%} of uncooperative "
                f"arrivals got in (the stake loss keeps it below 100%)"
            )

        def cooperative_does_not_grow(result: ExperimentResult) -> tuple[bool, str]:
            points = result.series["Cooperative Peers"]
            first = points[0][1]
            last = points[-1][1]
            passed = last <= first * 1.05
            return passed, f"cooperative count: {first:.0f} at x=0 vs {last:.0f} at x=1"

        return [
            ShapeCheck(
                name="admitted uncooperative peers increase with naive fraction",
                predicate=uncooperative_increases,
                paper_claim="'as the proportion of naive introducers increases ... the "
                "number of uncooperative peers increases'",
            ),
            ShapeCheck(
                name="with only selective introducers ~errSel of freeriders get in",
                predicate=selective_error_floor,
                paper_claim="'Some uncooperative peers enter the system even when all "
                "the peers are selective. This is due to the selective peer error rate'",
            ),
            ShapeCheck(
                name="with only naive introducers admission stays bounded",
                predicate=naive_bound,
                paper_claim="'even when all the peers are naive, the number of "
                "uncooperative peers admitted to the system is less than the total'",
            ),
            ShapeCheck(
                name="cooperative count does not grow with the naive fraction",
                predicate=cooperative_does_not_grow,
                paper_claim="'the number of cooperative peers in the system decreases'",
            ),
        ]
