"""The scheme × attack robustness matrix.

The paper's comparative claim — reputation lending admits honest newcomers
*while* resisting whitewashing and collusion — is ultimately a statement
about a grid: every reputation scheme crossed with every attack.  This
experiment runs that grid inside the full discrete-event simulation.  Each
cell is one (scheme, adversary) pair; the adversary is a registered
strategy from :mod:`repro.adversary` driven on its deterministic schedule,
and every cell reports two numbers:

* **newcomer success** — the fraction of honest (cooperative) arrivals that
  made it into the community, i.e. whether defending against the attack
  cost the scheme its openness;
* **attacker gain** — the mean reputation of the uncooperative side of the
  community at the end of the run, i.e. what standing the attack actually
  bought (injected attackers and freeriding entrants alike).

As in :class:`~repro.experiments.scheme_comparison.SchemeComparison`, the
paper's scheme runs with its native lending bootstrap while each baseline
runs open admission at its *own* newcomer score, so a cell's outcome is the
scheme's doing, not the harness's.  All cells are independent
:class:`~repro.parallel.specs.RunSpec` batches, so ``--jobs N`` spreads the
grid across cores with bit-identical results.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..adversary import default_adversary_spec
from ..analysis.comparison import ShapeCheck
from ..config import ADVERSARY_STRATEGIES, REPUTATION_SCHEMES
from ..metrics.summary import RunSummary
from ..workloads.sweep import ParameterSweep, SweepPoint
from .base import Experiment, ExperimentResult
from .scheme_comparison import (
    MAX_COMPARISON_TRANSACTIONS,
    capped_comparison_scale,
    scheme_overrides,
)

__all__ = ["RobustnessMatrix", "newcomer_success", "attacker_gain"]

#: Minimum cooperative arrivals before a comparative check is meaningful.
_MIN_ARRIVALS = 5.0


def newcomer_success(summary: RunSummary) -> float:
    """Fraction of honest arrivals admitted (NaN when nobody arrived)."""
    if summary.arrivals_cooperative == 0:
        return float("nan")
    return summary.admitted_cooperative / summary.arrivals_cooperative


def attacker_gain(summary: RunSummary) -> float:
    """Mean reputation of the uncooperative side at the end of the run."""
    series = summary.uncooperative_reputation
    if not len(series):
        return float("nan")
    return series.values[-1]


class RobustnessMatrix(Experiment):
    """One cell per (reputation scheme, adversary strategy) pair."""

    experiment_id = "robustness_matrix"
    title = "Robustness matrix — every scheme under every registered attack"
    x_label = "scheme"
    y_label = "rate / reputation"

    def __init__(
        self,
        *args,
        schemes: Sequence[str] = REPUTATION_SCHEMES,
        attacks: Sequence[str] = ADVERSARY_STRATEGIES,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        # Canonical (sorted) cell order: the grid means the same thing in any
        # order, and sorting makes the emitted artifact diff cleanly across
        # runs and registry reorderings.  Cell seeds derive from point labels,
        # so ordering does not perturb any cell's result.
        self.schemes = tuple(sorted(schemes))
        self.attacks = tuple(sorted(attacks))

    # ------------------------------------------------------------------ #
    # Sweep construction                                                   #
    # ------------------------------------------------------------------ #
    def _effective_scale(self) -> float:
        """The experiment's scale, capped at the comparison horizon limit."""
        return capped_comparison_scale(self.scale, self.base_params)

    @staticmethod
    def cell_label(scheme: str, attack: str) -> str:
        return f"{scheme}|{attack}"

    def _points(self, horizon: int) -> list[SweepPoint]:
        points = []
        for index, scheme in enumerate(self.schemes):
            base_overrides = scheme_overrides(self.base_params, scheme)
            for attack in self.attacks:
                overrides = dict(base_overrides)
                overrides["adversary"] = default_adversary_spec(attack, horizon)
                points.append(
                    SweepPoint(
                        label=self.cell_label(scheme, attack),
                        x=float(index),
                        overrides=overrides,
                    )
                )
        return points

    # ------------------------------------------------------------------ #
    # Run                                                                  #
    # ------------------------------------------------------------------ #
    def run(self, progress: Callable[[str], None] | None = None) -> ExperimentResult:
        result = self._new_result()
        effective_scale = self._effective_scale()
        scaled = self.base_params.scaled(effective_scale)
        if effective_scale != self.scale:
            result.params = scaled
            result.notes.clear()
            result.notes.append(
                f"run at scale={effective_scale:g} of the base horizon "
                f"({scaled.num_transactions:,} transactions) with "
                f"{self.repeats} repeat(s)"
            )
            result.notes.append(
                f"horizon capped at {MAX_COMPARISON_TRANSACTIONS:,} transactions "
                "— the matrix is qualitative and the grid is "
                f"{len(self.schemes)}x{len(self.attacks)} cells"
            )
        # Adversary schedules are sized against the horizon that actually
        # runs, so the sweep must not re-scale them: the points already carry
        # final specs, and `scaled()` would shrink them a second time.  Every
        # other field is pre-scaled into the base instead.
        sweep = ParameterSweep(
            name=self.experiment_id,
            base=scaled,
            points=self._points(scaled.num_transactions),
            repeats=self.repeats,
            scale=1.0,
        )
        outcome = self._run_sweep(sweep, progress=progress)

        def cell_mean(
            scheme: str, attack: str, getter: Callable[[RunSummary], float]
        ) -> float:
            mean, _ = outcome.mean_metric(self.cell_label(scheme, attack), getter)
            return mean

        for attack in self.attacks:
            result.series[f"{attack}: newcomer success"] = [
                (float(i), cell_mean(scheme, attack, newcomer_success))
                for i, scheme in enumerate(self.schemes)
            ]
            result.series[f"{attack}: attacker gain"] = [
                (float(i), cell_mean(scheme, attack, attacker_gain))
                for i, scheme in enumerate(self.schemes)
            ]
        result.x_ticks = {
            float(index): scheme for index, scheme in enumerate(self.schemes)
        }
        first = outcome.summaries_at(
            self.cell_label(self.schemes[0], self.attacks[0])
        )[0]
        result.scalars["schemes"] = float(len(self.schemes))
        result.scalars["attacks"] = float(len(self.attacks))
        result.scalars["cells"] = float(len(self.schemes) * len(self.attacks))
        result.scalars["cooperative arrivals per run"] = float(
            first.arrivals_cooperative
        )
        return result

    # ------------------------------------------------------------------ #
    # Shape checks                                                         #
    # ------------------------------------------------------------------ #
    def _gain_row(self, result: ExperimentResult, attack: str) -> dict[str, float]:
        """Attacker gain per scheme name for ``attack`` (NaN cells dropped)."""
        series = result.series.get(f"{attack}: attacker gain", [])
        row = {}
        for x, value in series:
            if value == value:
                row[self.schemes[int(x)]] = value
        return row

    def _lending_resists(
        self, result: ExperimentResult, attack: str, margin: float = 0.1
    ) -> tuple[bool, str]:
        """Whether rocq's attacker gain undercuts the weakest baseline's."""
        if "rocq" not in self.schemes:
            return True, "lending scheme not part of this matrix"
        if result.scalars.get("cooperative arrivals per run", 0.0) < _MIN_ARRIVALS:
            return True, "too few arrivals at this scale for a comparison"
        row = self._gain_row(result, attack)
        baselines = {name: value for name, value in row.items() if name != "rocq"}
        if "rocq" not in row or not baselines:
            return True, "matrix row incomplete at this scale"
        weakest_scheme = max(baselines, key=baselines.get)
        weakest = baselines[weakest_scheme]
        resists = row["rocq"] + margin < weakest
        return resists, (
            f"under {attack} the lending scheme concedes {row['rocq']:.2f} "
            f"attacker reputation vs {weakest:.2f} for {weakest_scheme}"
        )

    def checks(self) -> Sequence[ShapeCheck]:
        def complete_matrix(result: ExperimentResult) -> tuple[bool, str]:
            expected_series = 2 * len(self.attacks)
            lengths = {name: len(points) for name, points in result.series.items()}
            complete = len(lengths) == expected_series and all(
                length == len(self.schemes) for length in lengths.values()
            )
            return complete, (
                f"{len(lengths)} series x {len(self.schemes)} scheme(s), "
                f"expected {expected_series}"
            )

        def lending_stays_open(result: ExperimentResult) -> tuple[bool, str]:
            if "rocq" not in self.schemes:
                return True, "lending scheme not part of this matrix"
            if result.scalars.get("cooperative arrivals per run", 0.0) < _MIN_ARRIVALS:
                return True, "too few arrivals at this scale for a comparison"
            index = float(self.schemes.index("rocq"))
            worst = min(
                value
                for attack in self.attacks
                for x, value in result.series[f"{attack}: newcomer success"]
                if x == index and value == value
            )
            return worst > 0.0, (
                f"lending admits >= {worst:.0%} of honest arrivals under every attack"
            )

        return [
            ShapeCheck(
                name="every cell of the matrix produced both metrics",
                predicate=complete_matrix,
                paper_claim="the comparative claim is a full scheme x attack grid",
            ),
            ShapeCheck(
                name="lending keeps admitting honest newcomers under attack",
                predicate=lending_stays_open,
                paper_claim="'newcomers can gradually build up reputation'",
            ),
            ShapeCheck(
                name="lending resists whitewashing where a baseline fails",
                predicate=lambda result: self._lending_resists(
                    result, "whitewash_waves"
                ),
                paper_claim="'without the system being vulnerable to whitewashing'",
            ),
            ShapeCheck(
                name="lending resists collusion where a baseline fails",
                predicate=lambda result: self._lending_resists(
                    result, "collusion_ring"
                ),
                paper_claim="§5: collusion resistance of credibility-weighted "
                "aggregation plus staked introductions",
            ),
        ]
