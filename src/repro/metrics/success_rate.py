"""The decision success rate of §4.1.

The paper measures "the proportion of decisions to serve a request or not
taken by a cooperative peer that are correct":

    success = (N_acc_coop + N_den_uncoop) / (total decisions)

where ``N_acc_coop`` is the number of requests from cooperative peers that
were accepted and ``N_den_uncoop`` the number of requests from uncooperative
peers that were denied.  Only decisions made by cooperative respondents are
counted — an uncooperative respondent's choices say nothing about the
reputation system's accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SuccessRateTracker"]


@dataclass
class SuccessRateTracker:
    """Incremental tally of serve/deny decisions made by cooperative peers."""

    accepted_cooperative: int = 0
    accepted_uncooperative: int = 0
    denied_cooperative: int = 0
    denied_uncooperative: int = 0

    def record(self, requester_cooperative: bool, served: bool) -> None:
        """Record one decision about a requester of known ground-truth type."""
        if served and requester_cooperative:
            self.accepted_cooperative += 1
        elif served and not requester_cooperative:
            self.accepted_uncooperative += 1
        elif not served and requester_cooperative:
            self.denied_cooperative += 1
        else:
            self.denied_uncooperative += 1

    @property
    def total_decisions(self) -> int:
        """All decisions recorded so far."""
        return (
            self.accepted_cooperative
            + self.accepted_uncooperative
            + self.denied_cooperative
            + self.denied_uncooperative
        )

    @property
    def correct_decisions(self) -> int:
        """Decisions the paper counts as correct."""
        return self.accepted_cooperative + self.denied_uncooperative

    @property
    def success_rate(self) -> float:
        """The paper's success-rate metric (NaN before any decision)."""
        total = self.total_decisions
        if total == 0:
            return float("nan")
        return self.correct_decisions / total

    def merge(self, other: "SuccessRateTracker") -> "SuccessRateTracker":
        """Return a new tracker with both tallies combined."""
        return SuccessRateTracker(
            accepted_cooperative=self.accepted_cooperative + other.accepted_cooperative,
            accepted_uncooperative=(
                self.accepted_uncooperative + other.accepted_uncooperative
            ),
            denied_cooperative=self.denied_cooperative + other.denied_cooperative,
            denied_uncooperative=self.denied_uncooperative + other.denied_uncooperative,
        )

    def to_dict(self) -> dict[str, int | float]:
        """JSON-serialisable representation (includes the derived rate)."""
        return {
            "accepted_cooperative": self.accepted_cooperative,
            "accepted_uncooperative": self.accepted_uncooperative,
            "denied_cooperative": self.denied_cooperative,
            "denied_uncooperative": self.denied_uncooperative,
            "success_rate": self.success_rate,
        }
