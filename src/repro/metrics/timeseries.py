"""A small, numpy-friendly time-series container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimeSeries"]


@dataclass
class TimeSeries:
    """An append-only series of (time, value) samples.

    Values may be ``float('nan')`` when the quantity was undefined at sample
    time (e.g. the average reputation of uncooperative peers before any have
    been admitted); consumers use :meth:`finite` to drop those points.
    """

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Add one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"samples must be appended in time order "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __bool__(self) -> bool:
        return bool(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, values) as numpy arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def finite(self) -> "TimeSeries":
        """Return a copy without NaN/inf samples."""
        clean = TimeSeries(name=self.name)
        for time, value in zip(self.times, self.values):
            if np.isfinite(value):
                clean.append(time, value)
        return clean

    def last_value(self, default: float = float("nan")) -> float:
        """The most recent value, or ``default`` when empty."""
        return self.values[-1] if self.values else default

    def mean(self) -> float:
        """Mean of the finite values (NaN when there are none)."""
        _, values = self.finite().as_arrays()
        if values.size == 0:
            return float("nan")
        return float(values.mean())

    def value_at(self, time: float) -> float:
        """Value of the latest sample taken at or before ``time``."""
        index = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        if index < 0:
            return float("nan")
        return self.values[index]

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {"name": self.name, "times": list(self.times), "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TimeSeries":
        """Rebuild a series produced by :meth:`to_dict`.

        Sample values of ``None`` map back to ``nan``: strict-JSON storage
        (:meth:`repro.analysis.storage.ResultStore.save_json`) sanitises
        non-finite floats to ``null``, and samples like "mean reputation of
        an empty cohort" are legitimately ``nan``.
        """
        series = cls(name=str(data.get("name", "")))
        times = list(data.get("times", []))  # type: ignore[arg-type]
        values = list(data.get("values", []))  # type: ignore[arg-type]
        for time, value in zip(times, values):
            series.append(
                float(time), float("nan") if value is None else float(value)
            )
        return series
