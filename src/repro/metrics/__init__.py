"""Measurement: counters, time series and per-run summaries.

Everything the paper's evaluation section reports is derived from the
quantities collected here: admitted cooperative/uncooperative peer counts
(Figures 1, 3, 4, 6), refusal reasons (Figures 4 and 6), the decision success
rate (§4.1), and the time series of average cooperative reputation
(Figure 2).
"""

from .collector import MetricsCollector
from .timeseries import TimeSeries
from .success_rate import SuccessRateTracker
from .summary import RunSummary

__all__ = [
    "MetricsCollector",
    "TimeSeries",
    "SuccessRateTracker",
    "RunSummary",
]
