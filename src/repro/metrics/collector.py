"""The central metrics collector the simulation engine reports into."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.audit import AuditResult
from ..core.introduction import RefusalReason
from ..peers.peer import Peer
from ..peers.population import Population
from ..reputation.backend import ReputationBackend
from .success_rate import SuccessRateTracker
from .timeseries import TimeSeries

__all__ = ["MetricsCollector"]


@dataclass
class MetricsCollector:
    """Counters and time series describing one simulation run."""

    # Arrivals and admissions ------------------------------------------------
    arrivals_cooperative: int = 0
    arrivals_uncooperative: int = 0
    admitted_cooperative: int = 0
    admitted_uncooperative: int = 0
    #: Refusal counts keyed by reason.
    refusals: dict[RefusalReason, int] = field(default_factory=dict)
    #: Refusal counts keyed by (reason, applicant-is-cooperative).
    refusals_by_type: dict[tuple[RefusalReason, bool], int] = field(default_factory=dict)

    # Transactions ------------------------------------------------------------
    transactions_attempted: int = 0
    transactions_served: int = 0
    transactions_denied: int = 0
    transactions_satisfactory: int = 0
    decisions: SuccessRateTracker = field(default_factory=SuccessRateTracker)

    # Audits -------------------------------------------------------------------
    audits_passed: int = 0
    audits_failed: int = 0

    # Per-peer score snapshots ---------------------------------------------------
    #: When set (the engine turns it on for adversary runs only), every
    #: periodic sample also keeps the raw ``(time, active ids, scores)``
    #: triple it already read — the score histories the detection subsystem
    #: (:mod:`repro.detection`) labels against ground truth.  Off by default,
    #: so plain runs stay byte-identical to the seed engine.
    capture_scores: bool = False
    score_snapshots: list[tuple[float, tuple[int, ...], tuple[float, ...]]] = field(
        default_factory=list
    )

    # Time series ---------------------------------------------------------------
    cooperative_reputation: TimeSeries = field(
        default_factory=lambda: TimeSeries(name="avg_cooperative_reputation")
    )
    uncooperative_reputation: TimeSeries = field(
        default_factory=lambda: TimeSeries(name="avg_uncooperative_reputation")
    )
    cooperative_count: TimeSeries = field(
        default_factory=lambda: TimeSeries(name="cooperative_peers")
    )
    uncooperative_count: TimeSeries = field(
        default_factory=lambda: TimeSeries(name="uncooperative_peers")
    )

    # ------------------------------------------------------------------ #
    # Arrival / admission events                                           #
    # ------------------------------------------------------------------ #
    def record_arrival(self, peer: Peer) -> None:
        """One new peer arrived and will seek admission."""
        if peer.is_cooperative:
            self.arrivals_cooperative += 1
        else:
            self.arrivals_uncooperative += 1

    def record_admission(self, peer: Peer) -> None:
        """One peer was admitted to the community."""
        if peer.is_cooperative:
            self.admitted_cooperative += 1
        else:
            self.admitted_uncooperative += 1

    def record_refusal(self, reason: RefusalReason, peer: Peer) -> None:
        """One peer was refused admission for ``reason``."""
        self.refusals[reason] = self.refusals.get(reason, 0) + 1
        key = (reason, peer.is_cooperative)
        self.refusals_by_type[key] = self.refusals_by_type.get(key, 0) + 1

    def refusal_count(
        self, reason: RefusalReason, cooperative: bool | None = None
    ) -> int:
        """Refusals for ``reason``, optionally filtered by applicant type."""
        if cooperative is None:
            return self.refusals.get(reason, 0)
        return self.refusals_by_type.get((reason, cooperative), 0)

    @property
    def total_refusals(self) -> int:
        """All refusals regardless of reason."""
        return sum(self.refusals.values())

    # ------------------------------------------------------------------ #
    # Transaction events                                                    #
    # ------------------------------------------------------------------ #
    def record_service_decision(
        self,
        requester_cooperative: bool,
        respondent_cooperative: bool,
        served: bool,
    ) -> None:
        """The respondent decided whether to serve the requester."""
        self.transactions_attempted += 1
        if served:
            self.transactions_served += 1
        else:
            self.transactions_denied += 1
        if respondent_cooperative:
            self.decisions.record(requester_cooperative, served)

    def record_transaction_outcome(self, satisfactory: bool) -> None:
        """A served transaction completed with the given outcome."""
        if satisfactory:
            self.transactions_satisfactory += 1

    def record_audit(self, result: AuditResult) -> None:
        """A lending audit settled."""
        if result.passed:
            self.audits_passed += 1
        else:
            self.audits_failed += 1

    # ------------------------------------------------------------------ #
    # Sampling                                                              #
    # ------------------------------------------------------------------ #
    def sample(self, time: float, population: Population, store: ReputationBackend) -> None:
        """Take one periodic snapshot of reputations and peer counts.

        The sample reads the reputation of *every* active peer, so this is a
        batch phase: reputations are gathered through the backend's bulk hook
        when it has one (the ROCQ store serves most of them straight from its
        memo cache) and the cooperative partition comes from the population's
        ground-truth column.  Each partition's sum accumulates left-to-right
        in active order — the exact additions of the historical per-peer
        loop — so the averages stay bit-identical.
        """
        active_ids = population.active_ids
        flags = population.active_cooperative_flags()
        bulk = getattr(store, "reputations_for", None)
        if bulk is not None:
            values = bulk(active_ids)
        else:
            reputation_of = store.global_reputation
            values = [reputation_of(peer_id) for peer_id in active_ids]
        if self.capture_scores:
            self.score_snapshots.append(
                (
                    float(time),
                    tuple(int(peer_id) for peer_id in active_ids),
                    tuple(float(value) for value in values),
                )
            )
        coop_values: list[float] = []
        uncoop_values: list[float] = []
        coop_append = coop_values.append
        uncoop_append = uncoop_values.append
        for value, flag in zip(values, flags):
            if flag:
                coop_append(value)
            else:
                uncoop_append(value)
        coop_count = len(coop_values)
        uncoop_count = len(uncoop_values)
        coop_avg = sum(coop_values) / coop_count if coop_count else float("nan")
        uncoop_avg = sum(uncoop_values) / uncoop_count if uncoop_count else float("nan")
        self.cooperative_reputation.append(time, coop_avg)
        self.uncooperative_reputation.append(time, uncoop_avg)
        self.cooperative_count.append(time, float(coop_count))
        self.uncooperative_count.append(time, float(uncoop_count))

    # ------------------------------------------------------------------ #
    # Export                                                                #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable snapshot of every counter and series."""
        return {
            "arrivals_cooperative": self.arrivals_cooperative,
            "arrivals_uncooperative": self.arrivals_uncooperative,
            "admitted_cooperative": self.admitted_cooperative,
            "admitted_uncooperative": self.admitted_uncooperative,
            "refusals": {reason.value: count for reason, count in self.refusals.items()},
            "refusals_by_type": {
                f"{reason.value}:{'coop' if coop else 'uncoop'}": count
                for (reason, coop), count in self.refusals_by_type.items()
            },
            "transactions_attempted": self.transactions_attempted,
            "transactions_served": self.transactions_served,
            "transactions_denied": self.transactions_denied,
            "transactions_satisfactory": self.transactions_satisfactory,
            "decisions": self.decisions.to_dict(),
            "audits_passed": self.audits_passed,
            "audits_failed": self.audits_failed,
            "cooperative_reputation": self.cooperative_reputation.to_dict(),
            "uncooperative_reputation": self.uncooperative_reputation.to_dict(),
            "cooperative_count": self.cooperative_count.to_dict(),
            "uncooperative_count": self.uncooperative_count.to_dict(),
        }
