"""Per-run summary: the numbers the paper's figures are built from."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..config import SimulationParameters
from ..core.introduction import RefusalReason
from ..core.lending import LendingStats
from .collector import MetricsCollector
from .timeseries import TimeSeries

__all__ = ["RunSummary", "summary_digest"]


def _float_or_nan(value: Any) -> float:
    """Parse a float metric, mapping JSON ``null`` back to ``nan``.

    :meth:`repro.analysis.storage.ResultStore.save_json` sanitises
    non-finite floats to ``null`` (bare ``NaN`` tokens are not valid JSON),
    so a persisted summary whose metric was ``nan`` — e.g. a success rate
    over zero decisions — comes back as ``None`` and must round-trip.
    """
    return float("nan") if value is None else float(value)


def summary_digest(summary: "RunSummary") -> str:
    """Canonical digest of one run summary, ignoring wall-clock time.

    This is the currency of the repo's golden tests and of the trace
    engine: two runs are bit-identical exactly when their summary digests
    match.  Re-exported by :mod:`repro.api.results` for API users.
    """
    document = summary.to_dict()
    document.pop("elapsed_seconds", None)
    # Sharding telemetry is execution metadata, like wall-clock time: the
    # sharded engine is bit-identical to the serial one, and the digest is
    # exactly how that identity is asserted.
    document.pop("sharding", None)
    # Detection ground truth is derived observability data: the adversary
    # identity list and per-peer score snapshots are read off state the run
    # already produced, so two runs that agree on everything else cannot
    # disagree on them — stripping keeps cached fingerprints and recorded
    # trace digests stable across summaries with and without the payload.
    document.pop("adversary_identities", None)
    document.pop("detection", None)
    text = json.dumps(document, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class RunSummary:
    """Everything a figure/table needs to know about one simulation run.

    Instances are cheap, picklable value objects: the experiment harness runs
    several repeats, collects their summaries, and averages across them.
    """

    params: SimulationParameters
    seed: int
    # Final community composition --------------------------------------------
    final_cooperative: int
    final_uncooperative: int
    final_waiting: int
    final_rejected: int
    # Admission flow -----------------------------------------------------------
    arrivals_cooperative: int
    arrivals_uncooperative: int
    admitted_cooperative: int
    admitted_uncooperative: int
    refusals: dict[str, int]
    refused_due_to_introducer_reputation: int
    refused_uncooperative_by_selective: int
    # Transactions --------------------------------------------------------------
    transactions_attempted: int
    transactions_served: int
    transactions_denied: int
    success_rate: float
    # Lending -------------------------------------------------------------------
    introductions_granted: int
    audits_passed: int
    audits_failed: int
    total_reputation_lent: float
    total_rewards_paid: float
    total_stakes_lost: float
    # Time series ----------------------------------------------------------------
    cooperative_reputation: TimeSeries = field(default_factory=TimeSeries)
    uncooperative_reputation: TimeSeries = field(default_factory=TimeSeries)
    cooperative_count: TimeSeries = field(default_factory=TimeSeries)
    uncooperative_count: TimeSeries = field(default_factory=TimeSeries)
    # Wall-clock duration of the run in seconds (informational).
    elapsed_seconds: float = 0.0
    #: Sharded-engine telemetry (shards, epochs, barrier/exchange counts) —
    #: set by :class:`repro.sim.sharded.ShardedSimulation`, ``None`` on
    #: serial runs.  Execution metadata, excluded from :func:`summary_digest`.
    sharding: dict[str, Any] | None = None
    #: Every identity the configured adversary ever controlled (including
    #: burned whitewash identities that only appear in the event stream), as
    #: a sorted id list.  ``None`` on runs without an adversary.  Derived
    #: observability data, excluded from :func:`summary_digest`.
    adversary_identities: list[int] | None = None
    #: Ground-truth detection payload (per-peer final scores, labels and
    #: score-history snapshots) attached by the engine on adversary runs;
    #: consumed by :meth:`repro.detection.LabelSet.from_summary`.  ``None``
    #: without an adversary.  Excluded from :func:`summary_digest`.
    detection: dict[str, Any] | None = None

    # ------------------------------------------------------------------ #
    # Derived quantities                                                    #
    # ------------------------------------------------------------------ #
    @property
    def final_total(self) -> int:
        """Total admitted peers alive at the end of the run."""
        return self.final_cooperative + self.final_uncooperative

    @property
    def final_uncooperative_fraction(self) -> float:
        """Fraction of the final community that is uncooperative."""
        total = self.final_total
        if total == 0:
            return float("nan")
        return self.final_uncooperative / total

    @property
    def mean_cooperative_reputation(self) -> float:
        """Time-averaged reputation of cooperative peers."""
        return self.cooperative_reputation.mean()

    # ------------------------------------------------------------------ #
    # Construction                                                          #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_run(
        cls,
        params: SimulationParameters,
        seed: int,
        collector: MetricsCollector,
        lending_stats: LendingStats,
        final_cooperative: int,
        final_uncooperative: int,
        final_waiting: int,
        final_rejected: int,
        elapsed_seconds: float = 0.0,
    ) -> "RunSummary":
        """Assemble a summary from the engine's end-of-run state."""
        return cls(
            params=params,
            seed=seed,
            final_cooperative=final_cooperative,
            final_uncooperative=final_uncooperative,
            final_waiting=final_waiting,
            final_rejected=final_rejected,
            arrivals_cooperative=collector.arrivals_cooperative,
            arrivals_uncooperative=collector.arrivals_uncooperative,
            admitted_cooperative=collector.admitted_cooperative,
            admitted_uncooperative=collector.admitted_uncooperative,
            refusals={r.value: c for r, c in collector.refusals.items()},
            refused_due_to_introducer_reputation=collector.refusal_count(
                RefusalReason.INSUFFICIENT_REPUTATION
            ),
            refused_uncooperative_by_selective=collector.refusal_count(
                RefusalReason.SELECTIVE_REFUSAL, cooperative=False
            ),
            transactions_attempted=collector.transactions_attempted,
            transactions_served=collector.transactions_served,
            transactions_denied=collector.transactions_denied,
            success_rate=collector.decisions.success_rate,
            introductions_granted=lending_stats.introductions_granted,
            audits_passed=lending_stats.audits_passed,
            audits_failed=lending_stats.audits_failed,
            total_reputation_lent=lending_stats.total_reputation_lent,
            total_rewards_paid=lending_stats.total_rewards_paid,
            total_stakes_lost=lending_stats.total_stakes_lost,
            cooperative_reputation=collector.cooperative_reputation,
            uncooperative_reputation=collector.uncooperative_reputation,
            cooperative_count=collector.cooperative_count,
            uncooperative_count=collector.uncooperative_count,
            elapsed_seconds=elapsed_seconds,
        )

    # ------------------------------------------------------------------ #
    # Serialisation                                                         #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used by analysis.storage)."""
        document: dict[str, Any] = {
            "params": self.params.to_dict(),
            "seed": self.seed,
            "final_cooperative": self.final_cooperative,
            "final_uncooperative": self.final_uncooperative,
            "final_waiting": self.final_waiting,
            "final_rejected": self.final_rejected,
            "arrivals_cooperative": self.arrivals_cooperative,
            "arrivals_uncooperative": self.arrivals_uncooperative,
            "admitted_cooperative": self.admitted_cooperative,
            "admitted_uncooperative": self.admitted_uncooperative,
            "refusals": dict(self.refusals),
            "refused_due_to_introducer_reputation": (
                self.refused_due_to_introducer_reputation
            ),
            "refused_uncooperative_by_selective": (
                self.refused_uncooperative_by_selective
            ),
            "transactions_attempted": self.transactions_attempted,
            "transactions_served": self.transactions_served,
            "transactions_denied": self.transactions_denied,
            "success_rate": self.success_rate,
            "introductions_granted": self.introductions_granted,
            "audits_passed": self.audits_passed,
            "audits_failed": self.audits_failed,
            "total_reputation_lent": self.total_reputation_lent,
            "total_rewards_paid": self.total_rewards_paid,
            "total_stakes_lost": self.total_stakes_lost,
            "cooperative_reputation": self.cooperative_reputation.to_dict(),
            "uncooperative_reputation": self.uncooperative_reputation.to_dict(),
            "cooperative_count": self.cooperative_count.to_dict(),
            "uncooperative_count": self.uncooperative_count.to_dict(),
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.sharding is not None:
            document["sharding"] = dict(self.sharding)
        if self.adversary_identities is not None:
            document["adversary_identities"] = list(self.adversary_identities)
        if self.detection is not None:
            document["detection"] = self.detection
        return document

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSummary":
        """Rebuild a summary produced by :meth:`to_dict`.

        Used by the run cache (:class:`repro.parallel.cache.RunCache`) to
        rehydrate persisted runs; raises ``KeyError`` on missing fields so a
        stale document is detected rather than silently zero-filled.
        """
        return cls(
            params=SimulationParameters.from_dict(data["params"]),
            seed=int(data["seed"]),
            final_cooperative=int(data["final_cooperative"]),
            final_uncooperative=int(data["final_uncooperative"]),
            final_waiting=int(data["final_waiting"]),
            final_rejected=int(data["final_rejected"]),
            arrivals_cooperative=int(data["arrivals_cooperative"]),
            arrivals_uncooperative=int(data["arrivals_uncooperative"]),
            admitted_cooperative=int(data["admitted_cooperative"]),
            admitted_uncooperative=int(data["admitted_uncooperative"]),
            refusals={str(k): int(v) for k, v in data["refusals"].items()},
            refused_due_to_introducer_reputation=int(
                data["refused_due_to_introducer_reputation"]
            ),
            refused_uncooperative_by_selective=int(
                data["refused_uncooperative_by_selective"]
            ),
            transactions_attempted=int(data["transactions_attempted"]),
            transactions_served=int(data["transactions_served"]),
            transactions_denied=int(data["transactions_denied"]),
            success_rate=_float_or_nan(data["success_rate"]),
            introductions_granted=int(data["introductions_granted"]),
            audits_passed=int(data["audits_passed"]),
            audits_failed=int(data["audits_failed"]),
            total_reputation_lent=_float_or_nan(data["total_reputation_lent"]),
            total_rewards_paid=_float_or_nan(data["total_rewards_paid"]),
            total_stakes_lost=_float_or_nan(data["total_stakes_lost"]),
            cooperative_reputation=TimeSeries.from_dict(
                data["cooperative_reputation"]
            ),
            uncooperative_reputation=TimeSeries.from_dict(
                data["uncooperative_reputation"]
            ),
            cooperative_count=TimeSeries.from_dict(data["cooperative_count"]),
            uncooperative_count=TimeSeries.from_dict(data["uncooperative_count"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            sharding=data.get("sharding"),
            adversary_identities=(
                [int(peer_id) for peer_id in data["adversary_identities"]]
                if data.get("adversary_identities") is not None
                else None
            ),
            detection=data.get("detection"),
        )
