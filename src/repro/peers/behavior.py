"""Behaviour strategies for simulated peers.

A behaviour answers three questions during a transaction:

* does this peer serve a request it has accepted with good (satisfactory)
  service?
* what satisfaction value does it *report* about its partner? (uncooperative
  peers in the paper always report 0 "in order to reduce the impact on their
  own reputation");
* is the peer, for the purposes of ground-truth metrics, cooperative?
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = [
    "BehaviorKind",
    "BehaviorModel",
    "CooperativeBehavior",
    "FreeriderBehavior",
    "MaliciousProviderBehavior",
    "ColluderBehavior",
    "SlandererBehavior",
    "WhitewasherBehavior",
    "make_behavior",
]


class BehaviorKind(str, Enum):
    """Ground-truth classification of a peer's behaviour."""

    COOPERATIVE = "cooperative"
    FREERIDER = "freerider"
    MALICIOUS_PROVIDER = "malicious_provider"
    COLLUDER = "colluder"
    SLANDERER = "slanderer"
    WHITEWASHER = "whitewasher"


@dataclass
class BehaviorModel:
    """Base behaviour: parameterised by service quality and reporting honesty.

    Attributes
    ----------
    kind:
        Ground-truth label used by the metrics layer.
    service_quality:
        Probability that a served request is satisfactory.
    honest_reporting:
        If True the peer reports its true satisfaction; if False it always
        reports dissatisfaction about partners (the paper's uncooperative
        reporting model).
    """

    kind: BehaviorKind
    service_quality: float
    honest_reporting: bool = True

    @property
    def is_cooperative(self) -> bool:
        """Ground truth: does this peer add value to the community?"""
        return self.kind == BehaviorKind.COOPERATIVE

    def provides_good_service(self, rng: np.random.Generator) -> bool:
        """Whether one served request turns out satisfactory."""
        return bool(rng.random() < self.service_quality)

    def report_value(self, satisfied: bool) -> float:
        """Satisfaction value reported to the partner's score managers."""
        if self.honest_reporting:
            return 1.0 if satisfied else 0.0
        return 0.0

    def clone(self) -> "BehaviorModel":
        """Return an independent copy (used when templates are shared)."""
        return BehaviorModel(
            kind=self.kind,
            service_quality=self.service_quality,
            honest_reporting=self.honest_reporting,
        )


class CooperativeBehavior(BehaviorModel):
    """Honest peer: high service quality, truthful reports."""

    def __init__(self, service_quality: float = 0.95) -> None:
        super().__init__(
            kind=BehaviorKind.COOPERATIVE,
            service_quality=service_quality,
            honest_reporting=True,
        )


class FreeriderBehavior(BehaviorModel):
    """Uncooperative peer: consumes resources, rarely serves, badmouths partners."""

    def __init__(self, service_quality: float = 0.05) -> None:
        super().__init__(
            kind=BehaviorKind.FREERIDER,
            service_quality=service_quality,
            honest_reporting=False,
        )


class MaliciousProviderBehavior(BehaviorModel):
    """Peer that serves requests but furnishes corrupted content.

    From the system's point of view it is indistinguishable from a freerider
    once feedback accumulates (every served request is unsatisfactory), but
    keeping it distinct lets experiments separate the two attack types the
    paper's threat model names.
    """

    def __init__(self) -> None:
        super().__init__(
            kind=BehaviorKind.MALICIOUS_PROVIDER,
            service_quality=0.0,
            honest_reporting=False,
        )


@dataclass
class ColluderBehavior(BehaviorModel):
    """Member of a collusion ring.

    Colluders behave cooperatively towards everyone (to accumulate enough
    reputation to introduce their accomplices) but always report full
    satisfaction about fellow ring members regardless of the actual outcome,
    inflating each other's reputations.
    """

    ring: frozenset[int] = frozenset()

    def __init__(self, ring: frozenset[int] | set[int] = frozenset()) -> None:
        super().__init__(
            kind=BehaviorKind.COLLUDER,
            service_quality=0.95,
            honest_reporting=True,
        )
        self.ring = frozenset(ring)

    def report_value_about(self, partner: int, satisfied: bool) -> float:
        """Collusion-aware report: ring members always get a perfect score."""
        if partner in self.ring:
            return 1.0
        return 1.0 if satisfied else 0.0


class SlandererBehavior(BehaviorModel):
    """Bad-mouthing attacker: serves well, but reports dissatisfaction always.

    Slanderers masquerade as good citizens on the service side (so the
    community keeps interacting with them) while systematically filing
    negative feedback about every partner, dragging honest reputations down.
    Schemes that weigh reports by reporter credibility (ROCQ) should discount
    them once their reports diverge from the consensus; schemes that count
    raw complaints cannot.
    """

    def __init__(self, service_quality: float = 0.95) -> None:
        super().__init__(
            kind=BehaviorKind.SLANDERER,
            service_quality=service_quality,
            honest_reporting=False,
        )


class WhitewasherBehavior(BehaviorModel):
    """Freerider that plans to discard its identity once its reputation dies.

    The whitewashing *act* (leaving and re-joining under a fresh identity) is
    orchestrated by the simulation engine; the behaviour itself is a
    freerider that records how many identities it has burned so far.
    """

    def __init__(self, service_quality: float = 0.05) -> None:
        super().__init__(
            kind=BehaviorKind.WHITEWASHER,
            service_quality=service_quality,
            honest_reporting=False,
        )
        self.identities_used = 1


def make_behavior(
    kind: BehaviorKind | str,
    cooperative_quality: float = 0.95,
    uncooperative_quality: float = 0.05,
) -> BehaviorModel:
    """Factory building a behaviour from its kind label.

    ``cooperative_quality`` / ``uncooperative_quality`` come from the
    simulation parameters so every behaviour in a run shares the same service
    model.
    """
    kind = BehaviorKind(kind)
    if kind == BehaviorKind.COOPERATIVE:
        return CooperativeBehavior(service_quality=cooperative_quality)
    if kind == BehaviorKind.FREERIDER:
        return FreeriderBehavior(service_quality=uncooperative_quality)
    if kind == BehaviorKind.MALICIOUS_PROVIDER:
        return MaliciousProviderBehavior()
    if kind == BehaviorKind.COLLUDER:
        return ColluderBehavior()
    if kind == BehaviorKind.SLANDERER:
        return SlandererBehavior(service_quality=cooperative_quality)
    if kind == BehaviorKind.WHITEWASHER:
        return WhitewasherBehavior(service_quality=uncooperative_quality)
    raise ValueError(f"unsupported behaviour kind: {kind!r}")
