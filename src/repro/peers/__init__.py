"""Peer behaviour models and the community population registry.

The paper's attack model (§2) restricts misbehaviour to (1) freeriding and
(2) furnishing incorrect or corrupted content; this package models both,
plus two behaviours from the paper's discussion of attacks on the lending
scheme itself: *colluders* (behave well, then introduce their accomplices)
and *whitewashers* (discard a tainted identity and re-enter as a new peer).
"""

from .behavior import (
    BehaviorKind,
    BehaviorModel,
    CooperativeBehavior,
    FreeriderBehavior,
    MaliciousProviderBehavior,
    ColluderBehavior,
    WhitewasherBehavior,
    make_behavior,
)
from .peer import Peer, PeerStatus
from .population import Population

__all__ = [
    "BehaviorKind",
    "BehaviorModel",
    "CooperativeBehavior",
    "FreeriderBehavior",
    "MaliciousProviderBehavior",
    "ColluderBehavior",
    "WhitewasherBehavior",
    "make_behavior",
    "Peer",
    "PeerStatus",
    "Population",
]
