"""The community population registry.

Keeps every peer ever created, indexed by id, together with the derived sets
the simulator and the metrics layer query constantly: active members, waiting
applicants, and ground-truth cooperative/uncooperative partitions of the
active set.  All mutating operations keep those indices consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import UnknownPeerError
from ..ids import PeerId, PeerIdAllocator
from .behavior import BehaviorModel
from .columns import PeerColumns, columns_enabled
from .peer import Peer, PeerStatus

__all__ = ["Population"]


@dataclass
class Population:
    """Registry of all peers (active, waiting, rejected, departed).

    Peer objects stay the unit of event-at-a-time logic; their scalar fields
    are mirrored into :class:`~repro.peers.columns.PeerColumns` so batch
    queries (metrics samples, cooperative counts, the sharded engine's epoch
    refresh) run as vectorised gathers instead of object walks.
    """

    allocator: PeerIdAllocator = field(default_factory=PeerIdAllocator)
    columns: PeerColumns = field(default_factory=PeerColumns)
    _peers: dict[PeerId, Peer] = field(default_factory=dict)
    _active_ids: list[PeerId] = field(default_factory=list)
    _active_positions: dict[PeerId, int] = field(default_factory=dict)
    _waiting_ids: set[PeerId] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Creation & lookup                                                    #
    # ------------------------------------------------------------------ #
    def create_peer(
        self,
        behavior: BehaviorModel,
        introducer_policy: object | None = None,
        is_founder: bool = False,
        arrived_at: float = 0.0,
    ) -> Peer:
        """Create and register a new peer in WAITING status."""
        peer = Peer(
            peer_id=self.allocator.allocate(),
            behavior=behavior,
            introducer_policy=introducer_policy,  # type: ignore[arg-type]
            is_founder=is_founder,
            arrived_at=arrived_at,
        )
        self._peers[peer.peer_id] = peer
        self._waiting_ids.add(peer.peer_id)
        self.columns.register(
            peer.peer_id,
            cooperative=peer.is_cooperative,
            founder=is_founder,
            arrived_at=arrived_at,
        )
        return peer

    def get(self, peer_id: PeerId) -> Peer:
        """Return the peer with ``peer_id`` or raise :class:`UnknownPeerError`."""
        try:
            return self._peers[peer_id]
        except KeyError as exc:
            raise UnknownPeerError(peer_id) from exc

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def __iter__(self) -> Iterator[Peer]:
        return iter(self._peers.values())

    # ------------------------------------------------------------------ #
    # Status transitions (keep indices in sync)                            #
    # ------------------------------------------------------------------ #
    def admit(self, peer_id: PeerId, time: float, introduced_by: PeerId | None = None) -> Peer:
        """Move a waiting peer into the active community."""
        peer = self.get(peer_id)
        if peer.status == PeerStatus.ACTIVE:
            return peer
        peer.admit(time, introduced_by=introduced_by)
        self.columns.mark_admitted(peer_id, time, introduced_by)
        self._waiting_ids.discard(peer_id)
        if peer_id not in self._active_positions:
            self._active_positions[peer_id] = len(self._active_ids)
            self._active_ids.append(peer_id)
        return peer

    def reject(self, peer_id: PeerId) -> Peer:
        """Permanently refuse a waiting peer."""
        peer = self.get(peer_id)
        peer.reject()
        self.columns.mark_rejected(peer_id)
        self._waiting_ids.discard(peer_id)
        return peer

    def depart(self, peer_id: PeerId) -> Peer:
        """Remove an active peer from the community (it keeps its history).

        The peer's counters survive for the metrics layer, but its local
        opinion book is recycled into the shared object pool: departed peers
        never report again, and churn-heavy workloads would otherwise leave
        thousands of dead :class:`~repro.rocq.opinion.LocalOpinion` objects
        behind.
        """
        peer = self.get(peer_id)
        if peer_id in self._active_positions:
            self._remove_active(peer_id)
        self._waiting_ids.discard(peer_id)
        peer.depart()
        self.columns.mark_departed(peer_id)
        peer.opinions.release()
        return peer

    def _remove_active(self, peer_id: PeerId) -> None:
        """O(1) removal from the active list via swap-with-last."""
        position = self._active_positions.pop(peer_id)
        last_id = self._active_ids[-1]
        if last_id != peer_id:
            self._active_ids[position] = last_id
            self._active_positions[last_id] = position
        self._active_ids.pop()

    # ------------------------------------------------------------------ #
    # Views                                                                #
    # ------------------------------------------------------------------ #
    @property
    def active_ids(self) -> list[PeerId]:
        """Identifiers of all active peers (stable list, O(1) random pick)."""
        return self._active_ids

    def active_peers(self) -> list[Peer]:
        """All active peers."""
        return [self._peers[peer_id] for peer_id in self._active_ids]

    def waiting_peers(self) -> list[Peer]:
        """All peers still waiting for admission."""
        return [self._peers[peer_id] for peer_id in sorted(self._waiting_ids)]

    def peers_with_status(self, status: PeerStatus) -> list[Peer]:
        """All peers currently in ``status``."""
        return [peer for peer in self._peers.values() if peer.status == status]

    def active_cooperative_flags(self) -> list[bool]:
        """Ground-truth flags aligned with :attr:`active_ids`.

        The columnar path gathers the whole partition with one fancy index;
        the object path is the reference (and the ``legacy_rows_path``
        baseline the benchmarks compare against).
        """
        if columns_enabled():
            return self.columns.cooperative_flags(self._active_ids)
        return [self._peers[peer_id].is_cooperative for peer_id in self._active_ids]

    def count_active(self, cooperative: bool | None = None) -> int:
        """Number of active peers, optionally filtered by ground truth."""
        if cooperative is None:
            return len(self._active_ids)
        if columns_enabled():
            cooperative_count = self.columns.count_cooperative(self._active_ids)
            if cooperative:
                return cooperative_count
            return len(self._active_ids) - cooperative_count
        return sum(
            1
            for peer_id in self._active_ids
            if self._peers[peer_id].is_cooperative == cooperative
        )

    def active_cooperative(self) -> list[Peer]:
        """Active peers whose ground-truth behaviour is cooperative."""
        return [p for p in self.active_peers() if p.is_cooperative]

    def active_uncooperative(self) -> list[Peer]:
        """Active peers whose ground-truth behaviour is uncooperative."""
        return [p for p in self.active_peers() if not p.is_cooperative]

    def founders(self) -> list[Peer]:
        """The peers that were present at time zero."""
        return [peer for peer in self._peers.values() if peer.is_founder]

    def ids(self) -> Iterable[PeerId]:
        """All peer identifiers ever allocated."""
        return self._peers.keys()
