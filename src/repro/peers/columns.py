"""Struct-of-arrays storage for per-peer scalar state.

:class:`PeerColumns` mirrors the scalar fields of every :class:`~repro.peers.peer.Peer`
— ground-truth cooperativeness, founder flag, membership status, arrival and
admission times, introducer — into dense numpy columns indexed by peer id
(peer ids are allocated consecutively by
:class:`~repro.ids.PeerIdAllocator`, so the id doubles as the row index).

The :class:`Peer` objects remain the source of truth for the event-at-a-time
code paths; the columns exist so *batch* phases — the periodic metrics
sample over every active peer, population counts during arrival waves and
churn storms, the sharded engine's epoch-barrier refresh — can gather
thousands of per-peer scalars with one vectorised fancy-index instead of a
Python loop over objects.  Mutators of :class:`~repro.peers.population.Population`
keep the columns in sync; nothing else writes them.

``legacy_rows_path()`` disables the columnar fast paths process-wide so the
benchmark harness can measure the object-walking baseline on the same build
(the same pattern ``legacy_membership_path`` established for ring rewiring).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from ..ids import PeerId

__all__ = [
    "PeerColumns",
    "STATUS_CODES",
    "columns_enabled",
    "legacy_rows_path",
]

#: ``PeerStatus`` value -> int8 code stored in the ``status`` column.
STATUS_CODES: dict[str, int] = {
    "waiting": 0,
    "active": 1,
    "rejected": 2,
    "departed": 3,
}

_ENABLED = True


def columns_enabled() -> bool:
    """Whether the columnar fast paths are active (see ``legacy_rows_path``)."""
    return _ENABLED


@contextmanager
def legacy_rows_path() -> Iterator[None]:
    """Temporarily route population queries through the per-object loops.

    Used by ``repro.bench`` to measure the SoA speedup on one build; the
    columns keep being maintained while disabled, so re-enabling is safe.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


class PeerColumns:
    """Growable numpy columns holding one row of scalars per peer id."""

    __slots__ = (
        "size",
        "_capacity",
        "cooperative",
        "founder",
        "status",
        "arrived_at",
        "admitted_at",
        "introduced_by",
    )

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            capacity = 1
        self.size = 0
        self._capacity = capacity
        self.cooperative = np.zeros(capacity, dtype=np.bool_)
        self.founder = np.zeros(capacity, dtype=np.bool_)
        self.status = np.zeros(capacity, dtype=np.int8)
        self.arrived_at = np.zeros(capacity, dtype=np.float64)
        #: ``nan`` encodes "not admitted yet" (the object field is ``None``).
        self.admitted_at = np.full(capacity, np.nan, dtype=np.float64)
        #: ``-1`` encodes "no introducer" (founders and direct admissions).
        self.introduced_by = np.full(capacity, -1, dtype=np.int64)

    def _grow(self, minimum: int) -> None:
        capacity = self._capacity
        while capacity < minimum:
            capacity *= 2
        for name in (
            "cooperative",
            "founder",
            "status",
            "arrived_at",
            "admitted_at",
            "introduced_by",
        ):
            old = getattr(self, name)
            fresh = np.zeros(capacity, dtype=old.dtype)
            if name == "admitted_at":
                fresh.fill(np.nan)
            elif name == "introduced_by":
                fresh.fill(-1)
            fresh[: self.size] = old[: self.size]
            setattr(self, name, fresh)
        self._capacity = capacity

    # ------------------------------------------------------------------ #
    # Row maintenance (driven by Population mutators)                      #
    # ------------------------------------------------------------------ #
    def register(
        self,
        peer_id: PeerId,
        *,
        cooperative: bool,
        founder: bool,
        arrived_at: float,
    ) -> None:
        """Append the row for a freshly created peer (WAITING status)."""
        if peer_id >= self._capacity:
            self._grow(peer_id + 1)
        self.cooperative[peer_id] = cooperative
        self.founder[peer_id] = founder
        self.status[peer_id] = STATUS_CODES["waiting"]
        self.arrived_at[peer_id] = arrived_at
        self.admitted_at[peer_id] = np.nan
        self.introduced_by[peer_id] = -1
        if peer_id >= self.size:
            self.size = peer_id + 1

    def mark_admitted(
        self, peer_id: PeerId, time: float, introduced_by: PeerId | None
    ) -> None:
        self.status[peer_id] = STATUS_CODES["active"]
        self.admitted_at[peer_id] = time
        self.introduced_by[peer_id] = -1 if introduced_by is None else introduced_by

    def mark_rejected(self, peer_id: PeerId) -> None:
        self.status[peer_id] = STATUS_CODES["rejected"]

    def mark_departed(self, peer_id: PeerId) -> None:
        self.status[peer_id] = STATUS_CODES["departed"]

    # ------------------------------------------------------------------ #
    # Vectorised gathers                                                   #
    # ------------------------------------------------------------------ #
    def cooperative_flags(self, peer_ids: Sequence[PeerId]) -> list[bool]:
        """Ground-truth flags for ``peer_ids``, aligned with the input order."""
        if not peer_ids:
            return []
        index = np.asarray(peer_ids, dtype=np.int64)
        return self.cooperative[index].tolist()

    def count_cooperative(self, peer_ids: Sequence[PeerId]) -> int:
        """How many of ``peer_ids`` are ground-truth cooperative."""
        if not peer_ids:
            return 0
        index = np.asarray(peer_ids, dtype=np.int64)
        return int(np.count_nonzero(self.cooperative[index]))

    def status_counts(self) -> dict[str, int]:
        """Population-wide histogram of the status column (telemetry)."""
        view = self.status[: self.size]
        return {
            name: int(np.count_nonzero(view == code))
            for name, code in STATUS_CODES.items()
        }
