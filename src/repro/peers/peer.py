"""The :class:`Peer` entity: identity, behaviour, introducer policy, state."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from ..ids import PeerId
from ..rocq.opinion import OpinionBook
from .behavior import BehaviorModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.policies import IntroducerPolicy

__all__ = ["PeerStatus", "Peer"]


class PeerStatus(str, Enum):
    """Membership status of a peer.

    ``WAITING`` — arrived but not yet admitted (looking for an introduction,
    or sitting out the waiting period).
    ``ACTIVE`` — admitted member of the community.
    ``REJECTED`` — refused entry and no longer trying (terminal).
    ``DEPARTED`` — left the community (terminal).
    """

    WAITING = "waiting"
    ACTIVE = "active"
    REJECTED = "rejected"
    DEPARTED = "departed"


@dataclass
class Peer:
    """One participant of the virtual community.

    Attributes
    ----------
    peer_id:
        Simulator-level identifier.
    behavior:
        Ground-truth behaviour strategy (service quality, reporting honesty).
    introducer_policy:
        How this peer answers introduction requests (naive / selective /
        refusing); ``None`` for peers that never act as introducers.
    status:
        Current membership status.
    is_founder:
        True for the ``numInit`` peers present at time zero.
    arrived_at / admitted_at:
        Simulation times of arrival and of admission (``None`` until then).
    introduced_by:
        Peer id of the introducer, when admitted through the lending scheme.
    transactions_completed:
        Transactions in which this peer acted as the respondent *after*
        admission; drives the ``auditTrans`` audit trigger.
    requests_made / requests_served:
        Activity counters used by metrics.
    next_request_allowed_at:
        Earliest time this peer may issue another introduction request
        (enforces the waiting period between requests).
    """

    peer_id: PeerId
    behavior: BehaviorModel
    introducer_policy: "IntroducerPolicy | None" = None
    status: PeerStatus = PeerStatus.WAITING
    is_founder: bool = False
    arrived_at: float = 0.0
    admitted_at: float | None = None
    introduced_by: PeerId | None = None
    transactions_completed: int = 0
    requests_made: int = 0
    requests_served: int = 0
    requests_denied: int = 0
    audited: bool = False
    next_request_allowed_at: float = 0.0
    opinions: OpinionBook = field(init=False)
    #: Ground-truth cooperativeness, resolved once at construction: the
    #: behaviour model is never swapped after a peer is created, and the
    #: metrics layer reads this flag for every active peer on every sample.
    is_cooperative: bool = field(init=False)

    def __post_init__(self) -> None:
        self.opinions = OpinionBook(owner=self.peer_id)
        self.is_cooperative = self.behavior.is_cooperative

    @property
    def is_active(self) -> bool:
        """Whether the peer is an admitted member of the community."""
        return self.status == PeerStatus.ACTIVE

    @property
    def is_waiting(self) -> bool:
        """Whether the peer is still trying to get admitted."""
        return self.status == PeerStatus.WAITING

    @property
    def can_introduce(self) -> bool:
        """Whether the peer has a policy that could grant introductions."""
        return self.introducer_policy is not None and self.is_active

    # ------------------------------------------------------------------ #
    # State transitions                                                    #
    # ------------------------------------------------------------------ #
    def admit(self, time: float, introduced_by: PeerId | None = None) -> None:
        """Mark the peer as an active member of the community."""
        self.status = PeerStatus.ACTIVE
        self.admitted_at = time
        self.introduced_by = introduced_by

    def reject(self) -> None:
        """Mark the peer as permanently refused entry."""
        self.status = PeerStatus.REJECTED

    def depart(self) -> None:
        """Mark the peer as having left the community."""
        self.status = PeerStatus.DEPARTED

    def note_transaction_served(self, satisfied: bool) -> None:
        """Record that this peer served one request (post-admission)."""
        self.transactions_completed += 1
        self.requests_served += 1 if satisfied else 0

    def __repr__(self) -> str:  # compact, log-friendly representation
        return (
            f"Peer(id={self.peer_id}, {self.behavior.kind.value}, "
            f"{self.status.value}, founder={self.is_founder})"
        )
