"""Deterministic random-number stream management.

Every stochastic component of the simulator (arrival process, topology
sampling, behaviour decisions, introducer errors, ...) draws from its own
named child stream derived from a single master seed.  This makes runs fully
reproducible while keeping the different sources of randomness statistically
independent: changing how many draws one component makes does not perturb the
sequence seen by any other component.

The implementation uses :class:`numpy.random.SeedSequence` spawning, the
mechanism numpy recommends for parallel and multi-stream reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, *tokens: object) -> int:
    """Derive a child seed from ``master_seed`` and a sequence of tokens.

    The derivation is deterministic and insensitive to Python's per-process
    hash randomisation: tokens are converted to their ``repr`` and folded into
    a :class:`numpy.random.SeedSequence` entropy pool.

    Parameters
    ----------
    master_seed:
        The experiment-level seed.
    tokens:
        Arbitrary labels (strings, ints, tuples) identifying the consumer.

    Returns
    -------
    int
        A 63-bit integer usable as a seed for another generator.
    """
    material = [master_seed & 0xFFFFFFFF]
    for token in tokens:
        text = repr(token).encode("utf-8")
        # Fold the bytes of the token into 32-bit words.
        for start in range(0, len(text), 4):
            chunk = text[start : start + 4]
            material.append(int.from_bytes(chunk, "little"))
    seq = np.random.SeedSequence(material)
    return int(seq.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


@dataclass
class RandomStreams:
    """A registry of named, independent random generators.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.stream("arrivals")
    >>> behaviour = streams.stream("behaviour")
    >>> arrivals is streams.stream("arrivals")
    True
    >>> float(arrivals.random()) != float(behaviour.random())
    True
    """

    seed: int = 0
    _streams: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            child_seed = derive_seed(self.seed, name)
            generator = np.random.default_rng(child_seed)
            self._streams[name] = generator
        return generator

    def spawn(self, *tokens: object) -> "RandomStreams":
        """Create an independent :class:`RandomStreams` for a sub-experiment.

        Used by parameter sweeps so that each point of the sweep (and each
        repeat) gets its own reproducible universe of streams.
        """
        return RandomStreams(seed=derive_seed(self.seed, "spawn", *tokens))

    def names(self) -> list[str]:
        """Return the names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def reset(self) -> None:
        """Forget all created streams; subsequent calls recreate them afresh."""
        self._streams.clear()
