"""Peer identifiers and hashing helpers.

Peers are identified by small consecutive integers (``PeerId``) inside the
simulator — cheap to store and to index metric arrays with — while the DHT
overlay maps them onto a large circular key space through a cryptographic
hash, exactly as a deployed structured overlay would.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "PeerId",
    "KEY_SPACE_BITS",
    "KEY_SPACE_SIZE",
    "hash_to_key",
    "peer_key",
    "replica_key",
    "PeerIdAllocator",
]

# Type alias used throughout the library for readability.
PeerId = int

#: Number of bits in the DHT identifier space (Chord uses 160-bit SHA-1 keys).
KEY_SPACE_BITS = 160

#: Size of the circular identifier space.
KEY_SPACE_SIZE = 1 << KEY_SPACE_BITS


def hash_to_key(data: bytes) -> int:
    """Hash arbitrary bytes onto the ``[0, KEY_SPACE_SIZE)`` identifier circle."""
    digest = hashlib.sha1(data).digest()
    return int.from_bytes(digest, "big") % KEY_SPACE_SIZE


def peer_key(peer_id: PeerId) -> int:
    """Return the DHT key under which ``peer_id``'s own node is placed."""
    return hash_to_key(f"peer:{peer_id}".encode("utf-8"))


def replica_key(peer_id: PeerId, replica_index: int) -> int:
    """Return the DHT key of the ``replica_index``-th score-manager replica.

    ROCQ stores the reputation of a peer at several score managers.  Each
    replica key is an independent hash of the peer identifier and the replica
    index, so the replicas land on unrelated points of the ring and are very
    unlikely to share a responsible node.
    """
    return hash_to_key(f"replica:{peer_id}:{replica_index}".encode("utf-8"))


@dataclass
class PeerIdAllocator:
    """Hands out consecutive peer identifiers.

    The allocator never reuses an identifier, even after a peer leaves, so
    identifiers double as a stable "birth order" which several metrics rely
    on (e.g. distinguishing founding members from later entrants).
    """

    next_id: PeerId = 0

    def allocate(self) -> PeerId:
        """Return a fresh, never-before-used peer identifier."""
        allocated = self.next_id
        self.next_id += 1
        return allocated

    def allocate_many(self, count: int) -> list[PeerId]:
        """Allocate ``count`` consecutive identifiers and return them."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.allocate() for _ in range(count)]

    def __iter__(self) -> Iterator[PeerId]:
        """Yield fresh identifiers forever (useful for generators in tests)."""
        while True:
            yield self.allocate()
