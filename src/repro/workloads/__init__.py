"""Workloads: scenario presets and parameter sweeps.

Scenarios are named :class:`~repro.config.SimulationParameters` presets (the
paper's Table 1 operating point, laptop-scale variants of it, the baseline
bootstrap modes, stress configurations).  Sweeps run a simulation repeatedly
while varying one parameter, averaging over independent repeats — this is the
building block every figure-reproducing experiment uses.
"""

from .scenarios import (
    fixed_credit_baseline,
    high_arrival_stress,
    laptop_scale,
    open_admission_baseline,
    paper_default,
    random_topology_variant,
    tiny_test,
)
from .sweep import ParameterSweep, SweepPoint, SweepResult, aggregate_mean

__all__ = [
    "paper_default",
    "laptop_scale",
    "tiny_test",
    "random_topology_variant",
    "open_admission_baseline",
    "fixed_credit_baseline",
    "high_arrival_stress",
    "ParameterSweep",
    "SweepPoint",
    "SweepResult",
    "aggregate_mean",
]
