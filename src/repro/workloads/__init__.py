"""Workloads: scenario presets, the scenario registry, and parameter sweeps.

Scenarios are named :class:`~repro.config.SimulationParameters` presets (the
paper's Table 1 operating point, laptop-scale variants of it, the baseline
bootstrap modes, stress configurations).  The registry
(:mod:`repro.workloads.registry`) maps stable names to scenario factories so
orchestration layers — the experiment runner's ``--scenario`` flag, CI smoke
jobs — resolve presets by name.  Sweeps run a simulation repeatedly while
varying one parameter, averaging over independent repeats — this is the
building block every figure-reproducing experiment uses.  The scenario
fuzzer (:mod:`repro.workloads.fuzz`) is the registry's complement: seeded,
random-but-valid operating points with property-based invariant checks.
"""

from .fuzz import (
    FuzzConfig,
    FuzzReport,
    FuzzResult,
    FuzzScenario,
    InvariantViolation,
    available_fuzz_generators,
    check_invariants,
    fuzz_scenario,
    register_fuzz_generator,
    run_fuzz_batch,
    run_fuzz_scenario,
)
from .registry import available_scenarios, get_scenario, register_scenario
from .scenarios import (
    fixed_credit_baseline,
    high_arrival_stress,
    laptop_scale,
    open_admission_baseline,
    paper_default,
    random_topology_variant,
    tiny_test,
    whitewash_stress,
)
from .sweep import ParameterSweep, SweepPoint, SweepResult, aggregate_mean

__all__ = [
    "paper_default",
    "laptop_scale",
    "tiny_test",
    "random_topology_variant",
    "open_admission_baseline",
    "fixed_credit_baseline",
    "high_arrival_stress",
    "whitewash_stress",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "ParameterSweep",
    "SweepPoint",
    "SweepResult",
    "aggregate_mean",
    "FuzzConfig",
    "FuzzScenario",
    "FuzzResult",
    "FuzzReport",
    "InvariantViolation",
    "register_fuzz_generator",
    "available_fuzz_generators",
    "fuzz_scenario",
    "check_invariants",
    "run_fuzz_scenario",
    "run_fuzz_batch",
]
