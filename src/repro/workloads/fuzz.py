"""The seeded scenario fuzzer: random-but-valid operating points.

The scenario registry holds a fixed list of hand-named presets; the fuzzer
is the other end of the spectrum — it *composes* arrivals × topology ×
behaviour mix × bootstrap economics × reputation scheme × AdversarySpec
into random :class:`~repro.config.SimulationParameters` that are valid by
construction (every draw respects the config layer's validation rules),
runs each one, and checks property-based invariants that must hold for
**any** valid configuration:

* **score clamping** — every queryable reputation stays within [0, 1];
* **admission monotonicity** — per behaviour class, admissions never
  exceed arrivals, and the service/refusal accounting adds up;
* **conservation of lent reputation** — the lending ledger's totals are
  exactly ``grants x intro_amount`` / ``passes x reward_amount`` /
  ``failures x intro_amount``;
* **horizon** — the clock ends exactly at the configured transaction count.

Scenario *i* of a batch draws everything from
``derive_seed(config.seed, "fuzz", i)``, so a violating scenario reproduces
from its (seed, index) coordinates alone.

The generator dimensions are a registry (``fuzz-generators`` in the
catalogue), so new dimensions are one decorated function away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..adversary import adversary_knobs, available_adversaries
from ..config import (
    REPUTATION_SCHEMES,
    AdversarySpec,
    SimulationParameters,
)
from ..errors import ConfigurationError
from ..metrics.summary import RunSummary, summary_digest
from ..parallel.specs import params_fingerprint
from ..rng import derive_seed
from ..sim.engine import Simulation

__all__ = [
    "FuzzConfig",
    "FuzzScenario",
    "InvariantViolation",
    "FuzzResult",
    "FuzzReport",
    "register_fuzz_generator",
    "available_fuzz_generators",
    "fuzz_scenario",
    "check_invariants",
    "run_fuzz_scenario",
    "run_fuzz_batch",
]

#: Float-comparison slack for ledger identities accumulated over many adds.
_TOLERANCE = 1e-6


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing batch.

    ``max_transactions`` / ``max_initial_peers`` cap the drawn horizon so a
    batch stays fast; ``scheme`` pins every scenario to one reputation
    scheme (``None`` = draw a random scheme per scenario).
    """

    seed: int = 1
    count: int = 25
    scheme: str | None = None
    max_transactions: int = 1200
    max_initial_peers: int = 60

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"fuzz count must be >= 1, got {self.count}")
        if self.max_transactions < 200:
            raise ConfigurationError("fuzz max_transactions must be >= 200")
        if self.max_initial_peers < 8:
            raise ConfigurationError("fuzz max_initial_peers must be >= 8")


@dataclass(frozen=True)
class FuzzScenario:
    """One generated operating point, reproducible from (seed, index)."""

    label: str
    seed: int
    index: int
    params: SimulationParameters


@dataclass(frozen=True)
class InvariantViolation:
    """One broken property: which invariant, and what was observed."""

    invariant: str
    detail: str

    def describe(self) -> str:
        return f"{self.invariant}: {self.detail}"


# --------------------------------------------------------------------- #
# Generator registry                                                      #
# --------------------------------------------------------------------- #

#: A generator mutates the parameter draft for its dimension, drawing from
#: the scenario's dedicated rng.  Registration order is execution order
#: (later generators may read fields earlier ones set).
FuzzGenerator = Callable[[np.random.Generator, dict, FuzzConfig], None]

_GENERATORS: dict[str, FuzzGenerator] = {}
_DESCRIPTIONS: dict[str, str] = {}


def register_fuzz_generator(
    name: str, description: str = ""
) -> Callable[[FuzzGenerator], FuzzGenerator]:
    """Decorator registering one fuzz dimension under ``name``."""

    def decorator(generator: FuzzGenerator) -> FuzzGenerator:
        doc = (generator.__doc__ or "").strip()
        _GENERATORS[name] = generator
        _DESCRIPTIONS[name] = description or (doc.splitlines()[0] if doc else name)
        return generator

    return decorator


def available_fuzz_generators() -> dict[str, str]:
    """Name → one-line description for every registered generator."""
    return dict(_DESCRIPTIONS)


@register_fuzz_generator("horizon", "transaction count, community size, sampling")
def _gen_horizon(rng: np.random.Generator, draft: dict, config: FuzzConfig) -> None:
    draft["num_transactions"] = int(rng.integers(200, config.max_transactions + 1))
    draft["num_initial_peers"] = int(rng.integers(8, config.max_initial_peers + 1))
    draft["num_score_managers"] = int(rng.integers(1, 9))
    draft["sample_interval"] = float(rng.choice([50.0, 100.0, 250.0, 500.0]))
    draft["seed"] = int(rng.integers(0, 2**31))


@register_fuzz_generator("topology", "overlay topology family and shape")
def _gen_topology(rng: np.random.Generator, draft: dict, config: FuzzConfig) -> None:
    draft["topology"] = str(rng.choice(["random", "scale_free"]))
    draft["scale_free_exponent"] = float(rng.uniform(0.5, 2.5))
    draft["scale_free_attachment"] = int(rng.integers(1, 5))


@register_fuzz_generator("arrivals", "arrival rate, behaviour mix, waiting period")
def _gen_arrivals(rng: np.random.Generator, draft: dict, config: FuzzConfig) -> None:
    draft["arrival_rate"] = float(10.0 ** rng.uniform(-2.3, -0.8))
    draft["fraction_uncooperative"] = float(rng.uniform(0.0, 0.9))
    draft["fraction_naive"] = float(rng.uniform(0.0, 1.0))
    draft["selective_error_rate"] = float(rng.uniform(0.0, 0.5))
    draft["waiting_period"] = float(rng.choice([0.0, 10.0, 50.0, 200.0]))


@register_fuzz_generator("behaviour", "service qualities and ROCQ opinion knobs")
def _gen_behaviour(rng: np.random.Generator, draft: dict, config: FuzzConfig) -> None:
    draft["cooperative_service_quality"] = float(rng.uniform(0.6, 1.0))
    draft["uncooperative_service_quality"] = float(rng.uniform(0.0, 0.4))
    draft["rocq_use_credibility"] = bool(rng.random() < 0.8)
    draft["rocq_use_quality"] = bool(rng.random() < 0.8)
    draft["rocq_opinion_smoothing"] = float(rng.uniform(0.05, 0.9))


@register_fuzz_generator("bootstrap", "bootstrap mode and lending economics")
def _gen_bootstrap(rng: np.random.Generator, draft: dict, config: FuzzConfig) -> None:
    modes = ["lending", "open", "fixed_credit", "closed"]
    draft["bootstrap_mode"] = str(rng.choice(modes, p=[0.55, 0.2, 0.15, 0.1]))
    intro = float(rng.uniform(0.05, 0.5))
    draft["intro_amount"] = intro
    draft["reward_amount"] = float(rng.uniform(0.0, 0.2))
    draft["audit_transactions"] = int(rng.integers(1, 41))
    # The config layer requires the admission bar to be at least the lent
    # amount; drawing in [intro, 1] (or leaving the default rule) keeps
    # every draft valid by construction.
    if rng.random() < 0.5:
        draft["min_intro_reputation"] = float(rng.uniform(intro, 1.0))
    else:
        draft["min_intro_reputation"] = None
    draft["fixed_initial_credit"] = float(rng.uniform(0.0, 1.0))
    draft["open_initial_reputation"] = float(rng.uniform(0.0, 1.0))


@register_fuzz_generator("scheme", "reputation scheme under test")
def _gen_scheme(rng: np.random.Generator, draft: dict, config: FuzzConfig) -> None:
    if config.scheme is not None:
        draft["reputation_scheme"] = config.scheme
    else:
        draft["reputation_scheme"] = str(rng.choice(list(REPUTATION_SCHEMES)))


@register_fuzz_generator("adversary", "attack strategy, schedule and knobs")
def _gen_adversary(rng: np.random.Generator, draft: dict, config: FuzzConfig) -> None:
    if rng.random() < 0.35:
        draft["adversary"] = None
        return
    name = str(rng.choice(sorted(available_adversaries())))
    horizon = float(draft["num_transactions"])
    options: dict[str, float] = {}
    for knob in adversary_knobs(name):
        if rng.random() < 0.5:
            continue  # keep the strategy's default for this knob
        if knob == "waves":
            options[knob] = float(rng.integers(1, 5))
        elif knob == "oscillate":
            options[knob] = float(rng.integers(0, 2))
        elif "threshold" in knob:
            options[knob] = float(rng.uniform(0.05, 0.6))
        else:  # qualities, reputations: all live in [0, 1]
            options[knob] = float(rng.uniform(0.0, 1.0))
    draft["adversary"] = AdversarySpec(
        name=name,
        count=int(rng.integers(1, 7)),
        start_time=float(rng.uniform(0.0, horizon / 2.0)),
        interval=float(rng.uniform(max(1.0, horizon / 20.0), horizon / 4.0)),
        options=tuple(sorted(options.items())),
    )


# --------------------------------------------------------------------- #
# Scenario generation                                                     #
# --------------------------------------------------------------------- #
def fuzz_scenario(config: FuzzConfig, index: int) -> FuzzScenario:
    """Generate scenario ``index`` of a batch, deterministically."""
    scenario_seed = derive_seed(config.seed, "fuzz", index)
    rng = np.random.default_rng(scenario_seed)
    draft: dict[str, Any] = {}
    for generator in _GENERATORS.values():
        generator(rng, draft, config)
    # Constructing the parameters runs the config layer's full validation —
    # a draft that does not survive it is a fuzzer bug, not a finding.
    params = SimulationParameters(**draft)
    return FuzzScenario(
        label=f"fuzz-{config.seed}-{index}",
        seed=scenario_seed,
        index=index,
        params=params,
    )


# --------------------------------------------------------------------- #
# Invariants                                                              #
# --------------------------------------------------------------------- #
def check_invariants(sim: Simulation, summary: RunSummary) -> list[InvariantViolation]:
    """Property checks that must hold after **any** valid run."""
    violations: list[InvariantViolation] = []
    params = sim.params

    # Score clamping: every peer the run ever created stays within [0, 1].
    for peer in sim.population:
        value = sim.store.global_reputation(peer.peer_id)
        if not 0.0 <= value <= 1.0:
            violations.append(
                InvariantViolation(
                    "score_clamping",
                    f"peer {peer.peer_id} has reputation {value!r} outside [0, 1]",
                )
            )

    # Admission monotonicity and accounting.
    for label, arrived, admitted in (
        ("cooperative", summary.arrivals_cooperative, summary.admitted_cooperative),
        (
            "uncooperative",
            summary.arrivals_uncooperative,
            summary.admitted_uncooperative,
        ),
    ):
        if admitted > arrived:
            violations.append(
                InvariantViolation(
                    "admission_monotonicity",
                    f"{label}: admitted {admitted} > arrivals {arrived}",
                )
            )
    attempted = summary.transactions_attempted
    served = summary.transactions_served
    denied = summary.transactions_denied
    if served + denied != attempted:
        violations.append(
            InvariantViolation(
                "admission_monotonicity",
                f"transactions: served {served} + denied {denied} != "
                f"attempted {attempted}",
            )
        )

    # Conservation of lent reputation.
    stats = sim.lending.stats
    checks = (
        (
            "total_reputation_lent",
            stats.total_reputation_lent,
            stats.introductions_granted * params.intro_amount,
        ),
        (
            "total_rewards_paid",
            stats.total_rewards_paid,
            stats.audits_passed * params.reward_amount,
        ),
        (
            "total_stakes_lost",
            stats.total_stakes_lost,
            stats.audits_failed * params.intro_amount,
        ),
    )
    for name, actual, expected in checks:
        if abs(actual - expected) > _TOLERANCE:
            violations.append(
                InvariantViolation(
                    "lending_conservation",
                    f"{name} = {actual!r}, expected {expected!r}",
                )
            )
    if stats.audits_settled > stats.introductions_granted:
        violations.append(
            InvariantViolation(
                "lending_conservation",
                f"audits settled ({stats.audits_settled}) exceed "
                f"introductions granted ({stats.introductions_granted})",
            )
        )

    # Horizon: the clock ends exactly at the configured transaction count.
    if sim.clock.now != float(params.num_transactions):
        violations.append(
            InvariantViolation(
                "horizon",
                f"clock ended at {sim.clock.now!r}, expected "
                f"{float(params.num_transactions)!r}",
            )
        )
    return violations


# --------------------------------------------------------------------- #
# Execution                                                               #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FuzzResult:
    """Outcome of one fuzzed scenario."""

    scenario: FuzzScenario
    digest: str
    violations: tuple[InvariantViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.scenario.label,
            "seed": self.scenario.seed,
            "index": self.scenario.index,
            "params_fingerprint": params_fingerprint(self.scenario.params),
            "scheme": self.scenario.params.reputation_scheme,
            "adversary": (
                None
                if self.scenario.params.adversary is None
                else self.scenario.params.adversary.name
            ),
            "num_transactions": self.scenario.params.num_transactions,
            "digest": self.digest,
            "violations": [violation.describe() for violation in self.violations],
        }


@dataclass(frozen=True)
class FuzzReport:
    """Everything one fuzzing batch produced."""

    config: FuzzConfig
    results: tuple[FuzzResult, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violation_count(self) -> int:
        return sum(len(result.violations) for result in self.results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.config.seed,
            "count": self.config.count,
            "scheme": self.config.scheme,
            "ok": self.ok,
            "violations": self.violation_count,
            "results": [result.to_dict() for result in self.results],
        }


def run_fuzz_scenario(scenario: FuzzScenario) -> FuzzResult:
    """Run one fuzzed scenario and check every invariant against it."""
    sim = Simulation(scenario.params, seed=scenario.seed)
    summary = sim.run()
    violations = check_invariants(sim, summary)
    return FuzzResult(
        scenario=scenario,
        digest=summary_digest(summary),
        violations=tuple(violations),
    )


def run_fuzz_batch(
    config: FuzzConfig,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Generate and run a whole batch of fuzzed scenarios.

    Runs serially in-process: the invariants inspect the live simulation
    object (population, lending ledger, backend), not just the summary.
    """
    results = []
    for index in range(config.count):
        scenario = fuzz_scenario(config, index)
        result = run_fuzz_scenario(scenario)
        results.append(result)
        if progress is not None:
            status = "ok" if result.ok else f"{len(result.violations)} violation(s)"
            progress(
                f"{scenario.label}: scheme={scenario.params.reputation_scheme} "
                f"tx={scenario.params.num_transactions} {status}"
            )
    return FuzzReport(config=config, results=tuple(results))
