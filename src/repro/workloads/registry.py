"""The scenario registry: named workload presets behind one lookup.

Every entry maps a stable name to a **factory** ``(seed) ->
SimulationParameters`` — the orchestration layers (experiment runner, CLI,
CI smoke jobs) hold scenario *names*, not concrete parameter objects, and
resolve them at run time.  This mirrors how the backend registry in
:mod:`repro.reputation.backend` treats reputation schemes, and is what lets
``--scenario``/``--list-scenarios`` exist on the runner CLI.

Register additional scenarios with :func:`register_scenario`::

    from repro.workloads.registry import register_scenario

    @register_scenario("my_stress", description="my custom operating point")
    def _my_stress(seed: int = 1) -> SimulationParameters:
        return paper_default(seed).with_overrides(arrival_rate=0.5)
"""

from __future__ import annotations

from typing import Callable

from ..adversary import available_adversaries
from ..config import SimulationParameters
from . import scenarios as _presets

__all__ = [
    "ScenarioFactory",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
]

#: A scenario factory builds fully validated parameters for a master seed.
ScenarioFactory = Callable[[int], SimulationParameters]

_SCENARIOS: dict[str, ScenarioFactory] = {}
_DESCRIPTIONS: dict[str, str] = {}


def register_scenario(
    name: str, description: str = ""
) -> Callable[[ScenarioFactory], ScenarioFactory]:
    """Decorator registering ``factory`` under ``name``.

    Re-registering a name replaces the previous factory, so downstream code
    (tests, notebooks) can shadow a preset with a tweaked variant.
    """

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        doc = (factory.__doc__ or "").strip()
        _SCENARIOS[name] = factory
        _DESCRIPTIONS[name] = description or (doc.splitlines()[0] if doc else name)
        return factory

    return decorator


def get_scenario(name: str, seed: int = 1) -> SimulationParameters:
    """Build the parameters of the scenario registered under ``name``."""
    try:
        factory = _SCENARIOS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(_SCENARIOS)}"
        ) from exc
    return factory(seed)


def available_scenarios() -> dict[str, str]:
    """Name → one-line description for every registered scenario."""
    return dict(_DESCRIPTIONS)


# --------------------------------------------------------------------- #
# Built-in presets (from repro.workloads.scenarios)                       #
# --------------------------------------------------------------------- #
register_scenario("paper_default", "Table 1 operating point (500k transactions)")(
    lambda seed=1: _presets.paper_default(seed=seed)
)
register_scenario("laptop_scale", "Table 1 at 10% horizon (runs in seconds)")(
    lambda seed=1: _presets.laptop_scale(seed=seed)
)
register_scenario("tiny_test", "sub-second configuration for tests and smoke jobs")(
    lambda seed=1: _presets.tiny_test(seed=seed)
)
register_scenario("random_topology", "Table 1 on the random (uniform) topology")(
    lambda seed=1: _presets.random_topology_variant(_presets.paper_default(seed=seed))
)
register_scenario("open_admission", "no introductions: everyone admitted at 0.5")(
    lambda seed=1: _presets.open_admission_baseline(_presets.paper_default(seed=seed))
)
register_scenario("fixed_credit", "BitTorrent/Scrivener-style flat initial credit")(
    lambda seed=1: _presets.fixed_credit_baseline(_presets.paper_default(seed=seed))
)
register_scenario("high_arrival_stress", "Figure 2 overload: 20x arrival rate")(
    lambda seed=1: _presets.high_arrival_stress(base=_presets.paper_default(seed=seed))
)
register_scenario("whitewash_stress", "attack-heavy mix: 60% freeriding entrants")(
    lambda seed=1: _presets.whitewash_stress(base=_presets.paper_default(seed=seed))
)

# One attack preset per registered adversary strategy (the description comes
# from the adversary registry, so the two catalogues cannot drift apart).
for _adversary_name, _description in sorted(available_adversaries().items()):
    register_scenario(
        f"{_adversary_name}_attack", f"adversary preset: {_description}"
    )(
        lambda seed=1, _name=_adversary_name: _presets.adversary_attack(
            _name, base=_presets.paper_default(seed=seed)
        )
    )
del _adversary_name, _description
