"""Named scenario presets.

Each function returns a fully validated
:class:`~repro.config.SimulationParameters`; callers can further override
individual fields with :meth:`~repro.config.SimulationParameters.with_overrides`.
"""

from __future__ import annotations

from ..adversary import default_adversary_spec
from ..config import BootstrapMode, SimulationParameters, Topology

__all__ = [
    "paper_default",
    "laptop_scale",
    "tiny_test",
    "random_topology_variant",
    "open_admission_baseline",
    "fixed_credit_baseline",
    "high_arrival_stress",
    "whitewash_stress",
    "adversary_attack",
]


def paper_default(seed: int = 1) -> SimulationParameters:
    """The paper's Table 1 operating point (500k transactions, 10 repeats)."""
    return SimulationParameters(seed=seed)


def laptop_scale(scale: float = 0.1, seed: int = 1) -> SimulationParameters:
    """Table 1 scaled down to ``scale`` of the paper's horizon.

    Rates are untouched, so the *density* of arrivals per transaction — and
    therefore the qualitative dynamics — match the paper; only the horizon
    (and the number of entrants) shrinks.  ``scale=0.1`` runs 50,000
    transactions and finishes in a few seconds on a laptop.
    """
    return paper_default(seed=seed).scaled(scale)


def tiny_test(seed: int = 1) -> SimulationParameters:
    """A very small configuration for unit/integration tests (sub-second)."""
    return SimulationParameters(
        num_initial_peers=60,
        num_transactions=3_000,
        arrival_rate=0.02,
        sample_interval=500.0,
        waiting_period=100.0,
        repeats=2,
        seed=seed,
    )


def random_topology_variant(base: SimulationParameters | None = None) -> SimulationParameters:
    """The same operating point on the random (uniform) topology."""
    params = base if base is not None else paper_default()
    return params.with_overrides(topology=Topology.RANDOM)


def open_admission_baseline(base: SimulationParameters | None = None) -> SimulationParameters:
    """The "without introductions" baseline: everyone admitted at a neutral value."""
    params = base if base is not None else paper_default()
    return params.with_overrides(bootstrap_mode=BootstrapMode.OPEN)


def fixed_credit_baseline(
    base: SimulationParameters | None = None, credit: float = 0.3
) -> SimulationParameters:
    """BitTorrent/Scrivener-style baseline: flat initial credit for everyone."""
    params = base if base is not None else paper_default()
    return params.with_overrides(
        bootstrap_mode=BootstrapMode.FIXED_CREDIT, fixed_initial_credit=credit
    )


def high_arrival_stress(
    arrival_rate: float = 0.2, base: SimulationParameters | None = None
) -> SimulationParameters:
    """The overload regime of Figure 2: very high new-peer arrival rates."""
    params = base if base is not None else paper_default()
    return params.with_overrides(arrival_rate=arrival_rate)


def whitewash_stress(
    fraction_uncooperative: float = 0.6, base: SimulationParameters | None = None
) -> SimulationParameters:
    """An attack-heavy arrival mix: most entrants are freeriders.

    The regime where whitewashing pressure is maximal — the population every
    bootstrap scheme is ultimately judged against (and the default workload
    of the cross-scheme comparison experiment).
    """
    params = base if base is not None else paper_default()
    return params.with_overrides(fraction_uncooperative=fraction_uncooperative)


def adversary_attack(
    name: str, base: SimulationParameters | None = None
) -> SimulationParameters:
    """The Table 1 operating point with one named adversary switched on.

    The attack schedule is sized relative to the horizon through
    :func:`repro.adversary.default_adversary_spec`, so the preset keeps its
    shape when scaled down (the scenario registry exposes one such preset
    per registered strategy).
    """
    params = base if base is not None else paper_default()
    return params.with_overrides(
        adversary=default_adversary_spec(name, params.num_transactions)
    )
