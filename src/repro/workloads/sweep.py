"""Parameter sweeps with repeat-averaging.

A :class:`ParameterSweep` runs the simulator at a series of points (each a
set of parameter overrides applied to a base configuration), repeating every
point ``repeats`` times with independent seeds, and returns a
:class:`SweepResult` that can aggregate any :class:`~repro.metrics.summary.RunSummary`
attribute across the repeats.

Rather than looping over runs inline, the sweep describes every (point,
repeat) pair as a :class:`~repro.parallel.specs.RunSpec` and submits the
batch to an executor from :mod:`repro.parallel`, so the same sweep can run
serially, on a thread pool, or across worker processes — with bit-identical
results, because each spec carries its own deterministically derived seed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..config import SimulationParameters
from ..metrics.summary import RunSummary
from ..metrics.timeseries import TimeSeries
from ..parallel.cache import RunCache
from ..parallel.executor import Executor, run_specs
from ..parallel.specs import RunSpec
from ..rng import derive_seed

__all__ = ["SweepPoint", "SweepResult", "ParameterSweep", "aggregate_mean", "average_series"]


def aggregate_mean(values: Sequence[float]) -> tuple[float, float]:
    """Return (mean, sample standard deviation) of ``values``.

    The standard deviation is 0 for a single value and NaN for no values.
    """
    cleaned = [float(v) for v in values]
    if not cleaned:
        return float("nan"), float("nan")
    mean = statistics.fmean(cleaned)
    std = statistics.stdev(cleaned) if len(cleaned) > 1 else 0.0
    return mean, std


def average_series(series_list: Sequence[TimeSeries], name: str = "") -> TimeSeries:
    """Average several time series element-wise (truncated to the shortest).

    The experiment harness samples every run at the same interval, so samples
    align by index; when repeats produced different lengths (e.g. a run ended
    mid-interval) the extra samples are dropped.
    """
    averaged = TimeSeries(name=name)
    non_empty = [series for series in series_list if len(series)]
    if not non_empty:
        return averaged
    length = min(len(series) for series in non_empty)
    for index in range(length):
        time = non_empty[0].times[index]
        values = [series.values[index] for series in non_empty]
        finite = [v for v in values if v == v]  # drop NaN
        value = sum(finite) / len(finite) if finite else float("nan")
        averaged.append(time, value)
    return averaged


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: a label, an x value and parameter overrides."""

    label: str
    x: float
    overrides: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All runs of a sweep, grouped by point."""

    name: str
    points: list[SweepPoint]
    summaries: dict[str, list[RunSummary]]

    def summaries_at(self, label: str) -> list[RunSummary]:
        """The repeat summaries collected at the point called ``label``."""
        return self.summaries[label]

    def mean_metric(
        self, label: str, getter: Callable[[RunSummary], float]
    ) -> tuple[float, float]:
        """Mean and standard deviation of ``getter`` over the point's repeats."""
        return aggregate_mean([getter(s) for s in self.summaries_at(label)])

    def series(
        self, getter: Callable[[RunSummary], float]
    ) -> list[tuple[float, float, float]]:
        """Return [(x, mean, std), ...] across the sweep, in point order."""
        rows = []
        for point in self.points:
            mean, std = self.mean_metric(point.label, getter)
            rows.append((point.x, mean, std))
        return rows

    def averaged_timeseries(
        self, label: str, getter: Callable[[RunSummary], TimeSeries]
    ) -> TimeSeries:
        """Element-wise average of a time series across the point's repeats."""
        return average_series(
            [getter(s) for s in self.summaries_at(label)], name=label
        )


@dataclass
class ParameterSweep:
    """Runs the simulator over a list of parameter points.

    Parameters
    ----------
    name:
        Identifier used in seed derivation and result files.
    base:
        Base configuration every point starts from.
    points:
        The sweep points (label, x value, overrides).
    repeats:
        Independent repetitions per point; ``None`` uses ``base.repeats``.
    scale:
        Horizon scaling applied to every point (see
        :meth:`~repro.config.SimulationParameters.scaled`).
    """

    name: str
    base: SimulationParameters
    points: list[SweepPoint]
    repeats: int | None = None
    scale: float = 1.0

    def params_for(self, point: SweepPoint) -> SimulationParameters:
        """The fully resolved parameters used at ``point``."""
        params = self.base.with_overrides(**dict(point.overrides))
        if self.scale != 1.0:
            params = params.scaled(self.scale)
        return params

    def build_specs(self) -> list[RunSpec]:
        """One :class:`RunSpec` per (point, repeat), in deterministic order.

        The seed of each spec is derived from (master seed, sweep name, point
        label, repeat index) — the exact derivation the serial harness always
        used — so executing the specs with any backend reproduces the serial
        results bit for bit.
        """
        repeats = self.repeats if self.repeats is not None else self.base.repeats
        specs: list[RunSpec] = []
        for point in self.points:
            params = self.params_for(point)
            for repeat in range(repeats):
                seed = derive_seed(self.base.seed, self.name, point.label, repeat)
                specs.append(
                    RunSpec(
                        params=params,
                        seed=seed,
                        sweep=self.name,
                        label=point.label,
                        repeat=repeat,
                        total_repeats=repeats,
                    )
                )
        return specs

    def run(
        self,
        progress: Callable[[str], None] | None = None,
        executor: Executor | None = None,
        cache: RunCache | None = None,
    ) -> SweepResult:
        """Execute the sweep and return its result.

        ``progress`` (if given) receives a short human-readable message for
        each individual simulation run; the experiment CLI uses it to show
        what is happening during long sweeps.  ``executor`` selects the
        concurrency backend (``None`` runs serially) and ``cache`` skips
        (params, seed) pairs that were already computed.
        """
        specs = self.build_specs()
        outcomes = run_specs(specs, executor=executor, cache=cache, progress=progress)
        summaries: dict[str, list[RunSummary]] = {
            point.label: [] for point in self.points
        }
        for spec, summary in zip(specs, outcomes):
            summaries[spec.label].append(summary)
        return SweepResult(name=self.name, points=list(self.points), summaries=summaries)
