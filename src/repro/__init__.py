"""repro — a reproduction of "Reputation Lending for Virtual Communities".

The library implements the paper's reputation-lending bootstrap mechanism
(Garg, Montresor, Battiti, 2005) together with every substrate its evaluation
depends on: the ROCQ reputation scheme, a Chord-style DHT overlay for score
manager assignment, random and scale-free interaction topologies, and a
discrete-event P2P transaction simulator.

Quickstart::

    from repro import SimulationParameters, run_simulation

    params = SimulationParameters(num_transactions=50_000, seed=7)
    summary = run_simulation(params)
    print(f"cooperative peers:   {summary.final_cooperative}")
    print(f"uncooperative peers: {summary.final_uncooperative}")
    print(f"decision success:    {summary.success_rate:.2%}")

The typed public facade — :class:`~repro.api.RunRequest`,
:class:`~repro.api.SimulationService`, the unified registry catalogue —
lives in :mod:`repro.api` (command-line face: ``python -m repro``).  The
experiment harness that regenerates every figure of the paper lives in
:mod:`repro.experiments`; parameter sweeps and scenario presets in
:mod:`repro.workloads`; tables/plots/persistence helpers in
:mod:`repro.analysis`.
"""

from .config import BootstrapMode, PAPER_DEFAULTS, SimulationParameters, Topology
from .errors import (
    ConfigurationError,
    DuplicateIntroductionError,
    EmptyPopulationError,
    InsufficientReputationError,
    IntroductionRefusedError,
    ProtocolError,
    ReproError,
    SimulationError,
    UnknownPeerError,
    WaitingPeriodError,
)
from .metrics.summary import RunSummary
from .rng import RandomStreams, derive_seed
from .sim.engine import Simulation, run_simulation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Configuration
    "SimulationParameters",
    "PAPER_DEFAULTS",
    "Topology",
    "BootstrapMode",
    # Running simulations
    "Simulation",
    "run_simulation",
    "RunSummary",
    # Randomness
    "RandomStreams",
    "derive_seed",
    # Errors
    "ReproError",
    "ConfigurationError",
    "UnknownPeerError",
    "DuplicateIntroductionError",
    "IntroductionRefusedError",
    "InsufficientReputationError",
    "WaitingPeriodError",
    "ProtocolError",
    "SimulationError",
    "EmptyPopulationError",
]
