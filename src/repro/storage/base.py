"""The durable reputation-store interface and its driver registry.

:class:`ReputationStore` is the abstract surface every driver implements.
It persists two kinds of state:

* **backend snapshots** — the full JSON payload a reputation backend's
  ``export_state()`` produces, stored under a caller-chosen key together
  with the backend's scheme name and ``state_digest()`` so a restore can be
  verified bit-for-bit;
* **per-peer records** — a queryable ``(scheme, subject) -> score`` table
  derived from the snapshots, with clamped scores and idempotent
  initialisation, for callers (the HTTP service, dashboards) that want one
  peer's reputation without rehydrating a whole backend.

Drivers register under a URL prefix via :func:`register_store_driver`;
:func:`make_store` resolves ``memory://`` and ``sqlite://`` URLs (and bare
filesystem paths, which imply sqlite) so a postgres driver can slot in
later by registering ``postgres://`` without touching any call site.  The
conformance suite in ``tests/test_storage.py`` is parametrised over the
registry for exactly that reason.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..errors import PersistenceError

__all__ = [
    "PeerRecord",
    "ReputationStore",
    "StateSnapshot",
    "clamp_score",
    "encode_payload",
    "make_store",
    "register_store_driver",
    "store_drivers",
]


def clamp_score(value: float) -> float:
    """Clamp a reputation score to the protocol's [0, 1] range."""
    return min(1.0, max(0.0, float(value)))


def encode_payload(payload: Mapping[str, Any]) -> str:
    """Canonical JSON encoding shared by every driver.

    Encoding happens *before* the driver touches its medium — the in-memory
    driver included — so a payload that is not strict JSON (non-finite
    floats, non-string-keyed mappings, arbitrary objects) fails identically
    everywhere instead of only once a file-backed driver is swapped in.
    """
    try:
        return json.dumps(dict(payload), sort_keys=True, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise PersistenceError(f"state payload is not strict JSON: {exc}") from exc


@dataclass(frozen=True)
class StateSnapshot:
    """One persisted backend snapshot."""

    key: str
    scheme: str
    payload: dict[str, Any]
    digest: str = ""
    saved_at: float = 0.0


@dataclass(frozen=True)
class PeerRecord:
    """One row of the queryable per-peer reputation table."""

    scheme: str
    subject: int
    score: float
    reports: int = 0
    adjustments: int = 0
    updated_at: float = 0.0


class ReputationStore(ABC):
    """Abstract durable store for reputation state.

    Semantics every driver must honour (and the conformance suite checks):

    * :meth:`initialize` is idempotent — safe to call on every open;
    * :meth:`save_state` overwrites the snapshot under ``key``;
    * :meth:`init_peer` is idempotent — a second init of the same
      ``(scheme, subject)`` leaves the existing record untouched;
    * :meth:`upsert_peer` overwrites, with the score clamped to [0, 1];
    * :meth:`upsert_peers` applies a batch atomically (one transaction on
      transactional drivers);
    * :meth:`list_peers` returns records sorted by subject id.
    """

    # -- lifecycle ------------------------------------------------------- #
    @abstractmethod
    def initialize(self) -> None:
        """Create the schema if missing (idempotent)."""

    @abstractmethod
    def close(self) -> None:
        """Release the driver's resources; further calls may fail."""

    def __enter__(self) -> "ReputationStore":
        self.initialize()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- backend snapshots ----------------------------------------------- #
    @abstractmethod
    def save_state(
        self,
        key: str,
        scheme: str,
        payload: Mapping[str, Any],
        digest: str = "",
        saved_at: float = 0.0,
    ) -> None:
        """Persist a backend snapshot under ``key`` (overwriting)."""

    @abstractmethod
    def load_state(self, key: str) -> StateSnapshot | None:
        """Load the snapshot under ``key``, or ``None`` when absent."""

    @abstractmethod
    def state_keys(self) -> list[str]:
        """All snapshot keys, sorted."""

    @abstractmethod
    def delete_state(self, key: str) -> bool:
        """Drop the snapshot under ``key``; ``True`` when one existed."""

    # -- per-peer records ------------------------------------------------ #
    @abstractmethod
    def init_peer(self, scheme: str, subject: int, score: float) -> bool:
        """Create a peer record only if absent; ``True`` when created."""

    @abstractmethod
    def upsert_peer(
        self,
        scheme: str,
        subject: int,
        score: float,
        reports: int = 0,
        adjustments: int = 0,
        updated_at: float = 0.0,
    ) -> None:
        """Insert or overwrite one peer record (score clamped to [0, 1])."""

    @abstractmethod
    def upsert_peers(self, scheme: str, records: Iterable[PeerRecord]) -> None:
        """Apply a batch of upserts atomically."""

    @abstractmethod
    def get_peer(self, scheme: str, subject: int) -> PeerRecord | None:
        """One peer's record, or ``None`` when never seen."""

    @abstractmethod
    def list_peers(self, scheme: str) -> list[PeerRecord]:
        """Every record for ``scheme``, sorted by subject id."""

    @abstractmethod
    def peer_schemes(self) -> list[str]:
        """Schemes with at least one peer record, sorted."""


# ---------------------------------------------------------------------- #
# Driver registry                                                          #
# ---------------------------------------------------------------------- #
_DRIVERS: dict[str, Callable[[str], ReputationStore]] = {}


def register_store_driver(
    name: str, factory: Callable[[str], ReputationStore]
) -> None:
    """Register ``factory`` for ``name://...`` store URLs.

    The factory receives the URL's remainder (everything after ``name://``)
    and returns an **uninitialised** store; :func:`make_store` calls
    :meth:`ReputationStore.initialize` on the result.
    """
    _DRIVERS[name] = factory


def store_drivers() -> list[str]:
    """Registered driver names, sorted (used to parametrise conformance)."""
    return sorted(_DRIVERS)


def make_store(url: str | Path) -> ReputationStore:
    """Open (and initialise) a store from a driver URL.

    ``memory://`` opens a fresh in-memory store; ``memory://name`` a
    process-wide shared one (so an in-process service and its submitter see
    the same state).  ``sqlite://path`` — and any bare path, ``Path``
    included — opens the sqlite driver.  Unknown ``driver://`` prefixes
    raise :class:`~repro.errors.PersistenceError` listing what is
    registered.
    """
    text = str(url)
    if "://" in text:
        name, _, rest = text.partition("://")
        factory = _DRIVERS.get(name)
        if factory is None:
            raise PersistenceError(
                f"unknown store driver {name!r} "
                f"(registered: {', '.join(store_drivers())})"
            )
    else:
        factory, rest = _DRIVERS["sqlite"], text
    store = factory(rest)
    store.initialize()
    return store
