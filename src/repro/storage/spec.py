"""The ``persist`` facet of a :class:`~repro.api.request.RunRequest`.

Kept import-light (no sqlite, no driver modules) so ``repro.api.request``
can parse and validate the facet without paying for a store it may never
open; the drivers load lazily when an executor actually dispatches a
persisted spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..errors import ConfigurationError

__all__ = ["PersistSpec"]


@dataclass(frozen=True)
class PersistSpec:
    """Where (and under which key) a run's backend state is checkpointed.

    ``store`` is a driver URL (``sqlite://runs/rep.db``, ``memory://shared``)
    or a bare sqlite path.  ``key`` names the snapshot inside the store;
    when omitted, the request's run label is used so two persisted runs in
    one store stay distinct by default.  ``resume`` asks the engine to
    restore the backend from the store before the run instead of starting
    cold.
    """

    store: str
    key: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if not str(self.store):
            raise ConfigurationError("persist.store must name a store URL or path")

    @classmethod
    def parse(cls, value: Any) -> "PersistSpec | None":
        """Coerce user input (None/str/Path/mapping/PersistSpec) to a spec."""
        if value is None or isinstance(value, PersistSpec):
            return value
        if isinstance(value, (str, Path)):
            return cls(store=str(value))
        if isinstance(value, Mapping):
            unknown = set(value) - {"store", "key", "resume"}
            if unknown:
                raise ConfigurationError(
                    f"unknown persist option(s): {', '.join(sorted(unknown))}"
                )
            if "store" not in value:
                raise ConfigurationError("persist mapping needs a 'store' entry")
            key = value.get("key")
            return cls(
                store=str(value["store"]),
                key=None if key is None else str(key),
                resume=bool(value.get("resume", False)),
            )
        raise ConfigurationError(
            f"cannot interpret {value!r} as a persist specification"
        )

    def to_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {"store": self.store}
        if self.key is not None:
            document["key"] = self.key
        if self.resume:
            document["resume"] = True
        return document
