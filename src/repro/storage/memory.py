"""In-memory reference driver (and shared fixture for in-process services).

State lives in plain dicts, but payloads still pass through the canonical
JSON encoding on save and are decoded on load — a payload that would not
survive the sqlite driver does not survive this one either, so tests
written against ``memory://`` stay honest about what ``sqlite://`` will
accept.

``memory://name`` URLs resolve to a process-wide shared instance per name,
which is how an in-process HTTP service and the worker threads it spawns
observe one store without a file on disk.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, Mapping

from ..errors import PersistenceError
from .base import (
    PeerRecord,
    ReputationStore,
    StateSnapshot,
    clamp_score,
    encode_payload,
    register_store_driver,
)

__all__ = ["MemoryReputationStore"]


class MemoryReputationStore(ReputationStore):
    """Dict-backed :class:`ReputationStore` with sqlite-equivalent semantics."""

    def __init__(self, shared: bool = False) -> None:
        self._lock = threading.Lock()
        self._states: dict[str, tuple[str, str, str, float]] = {}
        self._peers: dict[tuple[str, int], PeerRecord] = {}
        self._closed = False
        #: ``memory://name`` instances are process-shared: one holder closing
        #: its handle must not destroy state other holders still read, so
        #: ``close`` is a no-op for them (mirroring how closing one sqlite
        #: connection leaves the database file for everyone else).
        self._shared = shared

    # -- lifecycle ------------------------------------------------------- #
    def initialize(self) -> None:
        self._check_open()

    def close(self) -> None:
        if not self._shared:
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise PersistenceError("store is closed")

    # -- backend snapshots ----------------------------------------------- #
    def save_state(
        self,
        key: str,
        scheme: str,
        payload: Mapping[str, Any],
        digest: str = "",
        saved_at: float = 0.0,
    ) -> None:
        self._check_open()
        encoded = encode_payload(payload)
        with self._lock:
            self._states[key] = (scheme, digest, encoded, saved_at)

    def load_state(self, key: str) -> StateSnapshot | None:
        self._check_open()
        with self._lock:
            row = self._states.get(key)
        if row is None:
            return None
        scheme, digest, encoded, saved_at = row
        return StateSnapshot(
            key=key,
            scheme=scheme,
            payload=json.loads(encoded),
            digest=digest,
            saved_at=saved_at,
        )

    def state_keys(self) -> list[str]:
        self._check_open()
        with self._lock:
            return sorted(self._states)

    def delete_state(self, key: str) -> bool:
        self._check_open()
        with self._lock:
            return self._states.pop(key, None) is not None

    # -- per-peer records ------------------------------------------------ #
    def init_peer(self, scheme: str, subject: int, score: float) -> bool:
        self._check_open()
        record = PeerRecord(
            scheme=scheme, subject=int(subject), score=clamp_score(score)
        )
        with self._lock:
            if (scheme, record.subject) in self._peers:
                return False
            self._peers[(scheme, record.subject)] = record
            return True

    def upsert_peer(
        self,
        scheme: str,
        subject: int,
        score: float,
        reports: int = 0,
        adjustments: int = 0,
        updated_at: float = 0.0,
    ) -> None:
        self._check_open()
        record = PeerRecord(
            scheme=scheme,
            subject=int(subject),
            score=clamp_score(score),
            reports=int(reports),
            adjustments=int(adjustments),
            updated_at=float(updated_at),
        )
        with self._lock:
            self._peers[(scheme, record.subject)] = record

    def upsert_peers(self, scheme: str, records: Iterable[PeerRecord]) -> None:
        self._check_open()
        staged = [
            PeerRecord(
                scheme=scheme,
                subject=int(record.subject),
                score=clamp_score(record.score),
                reports=int(record.reports),
                adjustments=int(record.adjustments),
                updated_at=float(record.updated_at),
            )
            for record in records
        ]
        with self._lock:
            for record in staged:
                self._peers[(scheme, record.subject)] = record

    def get_peer(self, scheme: str, subject: int) -> PeerRecord | None:
        self._check_open()
        with self._lock:
            return self._peers.get((scheme, int(subject)))

    def list_peers(self, scheme: str) -> list[PeerRecord]:
        self._check_open()
        with self._lock:
            records = [r for (s, _), r in self._peers.items() if s == scheme]
        return sorted(records, key=lambda record: record.subject)

    def peer_schemes(self) -> list[str]:
        self._check_open()
        with self._lock:
            return sorted({scheme for scheme, _ in self._peers})


# Process-wide shared instances for ``memory://name`` URLs.
_SHARED: dict[str, MemoryReputationStore] = {}
_SHARED_LOCK = threading.Lock()


def _memory_factory(rest: str) -> MemoryReputationStore:
    if not rest:
        return MemoryReputationStore()
    with _SHARED_LOCK:
        store = _SHARED.get(rest)
        if store is None:
            store = MemoryReputationStore(shared=True)
            _SHARED[rest] = store
        return store


register_store_driver("memory", _memory_factory)
