"""The sqlite driver: durable, multi-process-readable reputation storage.

Design choices:

* **WAL mode** — readers never block the single writer, and a reader in
  another process (a restarted service, the CI smoke job's poller) sees
  every committed checkpoint;
* **single-writer transactions** — all writes funnel through one
  connection guarded by a :class:`threading.Lock` and run inside
  ``with connection:`` blocks, so a torn checkpoint is impossible: a crash
  mid-save rolls back to the previous complete snapshot;
* ``synchronous=NORMAL`` — the standard WAL pairing: fsync on checkpoint
  rather than per commit, durable against process crash.

The driver is path-based (``sqlite:///tmp/rep.db`` or any bare path), so
process-pool workers each open their own connection to the same file and
WAL arbitrates between them.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import PersistenceError
from .base import (
    PeerRecord,
    ReputationStore,
    StateSnapshot,
    clamp_score,
    encode_payload,
    register_store_driver,
)

__all__ = ["SqliteReputationStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS backend_state (
    key      TEXT PRIMARY KEY,
    scheme   TEXT NOT NULL,
    digest   TEXT NOT NULL,
    payload  TEXT NOT NULL,
    saved_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS peer_reputation (
    scheme     TEXT    NOT NULL,
    subject    INTEGER NOT NULL,
    score      REAL    NOT NULL,
    reports    INTEGER NOT NULL DEFAULT 0,
    adjustments INTEGER NOT NULL DEFAULT 0,
    updated_at REAL    NOT NULL DEFAULT 0,
    PRIMARY KEY (scheme, subject)
);
"""


class SqliteReputationStore(ReputationStore):
    """File-backed :class:`ReputationStore` on the stdlib ``sqlite3``."""

    def __init__(self, path: str | Path) -> None:
        if not str(path):
            raise PersistenceError("sqlite store needs a database path")
        self.path = Path(path)
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = None

    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            raise PersistenceError("store is closed (or was never initialized)")
        return self._connection

    # -- lifecycle ------------------------------------------------------- #
    def initialize(self) -> None:
        """Open the database and create the schema (idempotent)."""
        with self._lock:
            if self._connection is not None:
                return
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                connection = sqlite3.connect(
                    str(self.path), check_same_thread=False
                )
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
                connection.executescript(_SCHEMA)
                connection.commit()
            except sqlite3.Error as exc:
                raise PersistenceError(
                    f"cannot open sqlite store at {self.path}: {exc}"
                ) from exc
            self._connection = connection

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    # -- backend snapshots ----------------------------------------------- #
    def save_state(
        self,
        key: str,
        scheme: str,
        payload: Mapping[str, Any],
        digest: str = "",
        saved_at: float = 0.0,
    ) -> None:
        encoded = encode_payload(payload)
        with self._lock:
            connection = self._connect()
            with connection:
                connection.execute(
                    "INSERT INTO backend_state (key, scheme, digest, payload,"
                    " saved_at) VALUES (?, ?, ?, ?, ?)"
                    " ON CONFLICT (key) DO UPDATE SET scheme = excluded.scheme,"
                    " digest = excluded.digest, payload = excluded.payload,"
                    " saved_at = excluded.saved_at",
                    (key, scheme, digest, encoded, saved_at),
                )

    def load_state(self, key: str) -> StateSnapshot | None:
        with self._lock:
            row = (
                self._connect()
                .execute(
                    "SELECT scheme, digest, payload, saved_at FROM backend_state"
                    " WHERE key = ?",
                    (key,),
                )
                .fetchone()
            )
        if row is None:
            return None
        return StateSnapshot(
            key=key,
            scheme=row[0],
            payload=json.loads(row[2]),
            digest=row[1],
            saved_at=row[3],
        )

    def state_keys(self) -> list[str]:
        with self._lock:
            rows = self._connect().execute(
                "SELECT key FROM backend_state ORDER BY key"
            )
            return [row[0] for row in rows]

    def delete_state(self, key: str) -> bool:
        with self._lock:
            connection = self._connect()
            with connection:
                cursor = connection.execute(
                    "DELETE FROM backend_state WHERE key = ?", (key,)
                )
            return cursor.rowcount > 0

    # -- per-peer records ------------------------------------------------ #
    def init_peer(self, scheme: str, subject: int, score: float) -> bool:
        with self._lock:
            connection = self._connect()
            with connection:
                cursor = connection.execute(
                    "INSERT OR IGNORE INTO peer_reputation (scheme, subject,"
                    " score) VALUES (?, ?, ?)",
                    (scheme, int(subject), clamp_score(score)),
                )
            return cursor.rowcount > 0

    def upsert_peer(
        self,
        scheme: str,
        subject: int,
        score: float,
        reports: int = 0,
        adjustments: int = 0,
        updated_at: float = 0.0,
    ) -> None:
        record = PeerRecord(
            scheme=scheme,
            subject=int(subject),
            score=clamp_score(score),
            reports=int(reports),
            adjustments=int(adjustments),
            updated_at=float(updated_at),
        )
        self.upsert_peers(scheme, [record])

    def upsert_peers(self, scheme: str, records: Iterable[PeerRecord]) -> None:
        rows = [
            (
                scheme,
                int(record.subject),
                clamp_score(record.score),
                int(record.reports),
                int(record.adjustments),
                float(record.updated_at),
            )
            for record in records
        ]
        with self._lock:
            connection = self._connect()
            with connection:
                connection.executemany(
                    "INSERT INTO peer_reputation (scheme, subject, score,"
                    " reports, adjustments, updated_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT (scheme, subject) DO UPDATE SET"
                    " score = excluded.score, reports = excluded.reports,"
                    " adjustments = excluded.adjustments,"
                    " updated_at = excluded.updated_at",
                    rows,
                )

    def get_peer(self, scheme: str, subject: int) -> PeerRecord | None:
        with self._lock:
            row = (
                self._connect()
                .execute(
                    "SELECT score, reports, adjustments, updated_at"
                    " FROM peer_reputation WHERE scheme = ? AND subject = ?",
                    (scheme, int(subject)),
                )
                .fetchone()
            )
        if row is None:
            return None
        return PeerRecord(
            scheme=scheme,
            subject=int(subject),
            score=row[0],
            reports=row[1],
            adjustments=row[2],
            updated_at=row[3],
        )

    def list_peers(self, scheme: str) -> list[PeerRecord]:
        with self._lock:
            rows = self._connect().execute(
                "SELECT subject, score, reports, adjustments, updated_at"
                " FROM peer_reputation WHERE scheme = ? ORDER BY subject",
                (scheme,),
            )
            return [
                PeerRecord(
                    scheme=scheme,
                    subject=row[0],
                    score=row[1],
                    reports=row[2],
                    adjustments=row[3],
                    updated_at=row[4],
                )
                for row in rows
            ]

    def peer_schemes(self) -> list[str]:
        with self._lock:
            rows = self._connect().execute(
                "SELECT DISTINCT scheme FROM peer_reputation ORDER BY scheme"
            )
            return [row[0] for row in rows]


register_store_driver("sqlite", lambda rest: SqliteReputationStore(rest))
