"""Checkpoint/restore glue between reputation backends and durable stores.

:class:`BackendPersistence` owns the round-trip discipline:

* **checkpoint** exports the backend's state once, stamps it with
  ``state_digest()`` and writes it under a stable key, then derives the
  queryable per-peer table from the same payload in one batch upsert;
* **restore** loads the snapshot, refuses scheme mismatches, applies it via
  the backend's ``restore_state`` and verifies the restored digest against
  the stored one — a restore that is not bit-identical raises
  :class:`~repro.errors.PersistenceError` instead of silently continuing
  from drifted state.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import PersistenceError
from .base import PeerRecord, ReputationStore, clamp_score

__all__ = ["BackendPersistence", "derive_peer_records"]


def derive_peer_records(
    backend: Any, payload: Mapping[str, Any], time: float = 0.0
) -> list[PeerRecord]:
    """Per-peer rows for the queryable table, derived from an export payload.

    The payload (not a second export) supplies the subject universe and the
    report/adjustment tallies; the live backend supplies each subject's
    combined score.  Works for both shipped payload shapes:

    * ``rocq`` — subjects are every tracked record across managers, with
      reports/adjustments summed over replicas;
    * log-based schemes — subjects are the interaction log's peers plus
      anyone touched by an adjustment credit, with reports counted as
      times-rated.
    """
    scheme = str(payload.get("scheme", getattr(backend, "scheme", "")))
    reports: dict[int, int] = {}
    adjustments: dict[int, int] = {}
    if "managers" in payload:
        for manager_payload in payload["managers"].values():
            for subject_key, snapshot in manager_payload.get("records", {}).items():
                subject = int(subject_key)
                reports[subject] = reports.get(subject, 0) + int(
                    snapshot.get("reports", 0)
                )
                adjustments[subject] = adjustments.get(subject, 0) + int(
                    snapshot.get("adjustments", 0)
                )
    else:
        for side in ("positive", "negative"):
            for _, subject, count in payload.get(side, ()):
                subject = int(subject)
                reports[subject] = reports.get(subject, 0) + int(count)
        for peer in payload.get("peers", ()):
            reports.setdefault(int(peer), 0)
        for subject_key in payload.get("credit", {}):
            subject = int(subject_key)
            reports.setdefault(subject, 0)
            adjustments[subject] = adjustments.get(subject, 0) + 1
    return [
        PeerRecord(
            scheme=scheme,
            subject=subject,
            score=clamp_score(backend.global_reputation(subject)),
            reports=reports.get(subject, 0),
            adjustments=adjustments.get(subject, 0),
            updated_at=time,
        )
        for subject in sorted(set(reports) | set(adjustments))
    ]


class BackendPersistence:
    """Bind one reputation backend to one durable store key.

    Parameters
    ----------
    store:
        An initialised :class:`~repro.storage.base.ReputationStore`.
    key:
        Snapshot key; empty selects ``backend/<scheme>`` at use time.
    resume:
        When true, :meth:`repro.sim.engine.Simulation` restores the
        backend from the store before the run instead of starting cold.
    """

    def __init__(
        self, store: ReputationStore, key: str = "", resume: bool = False
    ) -> None:
        self.store = store
        self.key = key
        self.resume = resume

    def key_for(self, backend: Any) -> str:
        return self.key or f"backend/{backend.scheme}"

    def restore(self, backend: Any) -> bool:
        """Restore ``backend`` from its snapshot; ``False`` when none exists.

        Raises :class:`~repro.errors.PersistenceError` when the snapshot
        belongs to a different scheme or the restored ``state_digest()``
        does not match the digest recorded at checkpoint time.
        """
        snapshot = self.store.load_state(self.key_for(backend))
        if snapshot is None:
            return False
        if snapshot.scheme != backend.scheme:
            raise PersistenceError(
                f"snapshot {snapshot.key!r} holds scheme {snapshot.scheme!r} "
                f"state but the backend runs {backend.scheme!r}"
            )
        backend.restore_state(snapshot.payload)
        if snapshot.digest:
            restored = backend.state_digest()
            if restored != snapshot.digest:
                raise PersistenceError(
                    f"restore of {snapshot.key!r} is not bit-identical: "
                    f"digest {restored} != stored {snapshot.digest}"
                )
        return True

    def checkpoint(self, backend: Any, time: float = 0.0) -> str:
        """Persist ``backend``'s full state and per-peer table; return key."""
        key = self.key_for(backend)
        payload = backend.export_state()
        self.store.save_state(
            key,
            backend.scheme,
            payload,
            digest=backend.state_digest(),
            saved_at=time,
        )
        self.store.upsert_peers(
            str(payload.get("scheme", backend.scheme)),
            derive_peer_records(backend, payload, time=time),
        )
        return key
