"""Durable reputation storage: drivers, checkpoint/restore, persist facet.

The package persists the simulator's reputation state beyond one process:

* :class:`ReputationStore` — the abstract store interface, with an
  in-memory driver (:class:`MemoryReputationStore`) and a sqlite driver
  (:class:`SqliteReputationStore`, WAL mode, single-writer transactions);
  :func:`make_store` resolves ``memory://``/``sqlite://`` URLs and bare
  paths, and :func:`register_store_driver` lets a postgres driver slot in
  later;
* :class:`BackendPersistence` — binds a backend to a store key: checkpoint
  on finalize (full ``export_state()`` payload stamped with
  ``state_digest()`` plus a queryable per-peer table), digest-verified
  restore on construction;
* :class:`PersistSpec` — the ``persist=...`` facet of
  :class:`~repro.api.request.RunRequest`, carried through
  :class:`~repro.parallel.specs.RunSpec` like the trace facet.
"""

from .base import (
    PeerRecord,
    ReputationStore,
    StateSnapshot,
    clamp_score,
    make_store,
    register_store_driver,
    store_drivers,
)
from .memory import MemoryReputationStore
from .persistence import BackendPersistence, derive_peer_records
from .spec import PersistSpec
from .sqlite import SqliteReputationStore

__all__ = [
    "BackendPersistence",
    "MemoryReputationStore",
    "PeerRecord",
    "PersistSpec",
    "ReputationStore",
    "SqliteReputationStore",
    "StateSnapshot",
    "clamp_score",
    "derive_peer_records",
    "make_store",
    "register_store_driver",
    "store_drivers",
]
