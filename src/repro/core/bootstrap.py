"""Bootstrap strategies: how an admitted entrant obtains its initial standing.

The paper contrasts its lending mechanism with two families of alternatives
(§1): systems that give every newcomer the benefit of the doubt (admit it at
a neutral reputation — our ``OPEN`` mode) and systems that grant a flat
initial credit to get newcomers started, like BitTorrent's optimistic
unchoking slice or Scrivener's initial balance (our ``FIXED_CREDIT`` mode).

A bootstrap strategy answers a single question — *given that this peer is
being admitted right now, what should its score managers initially store?* —
and is deliberately unaware of the admission decision itself, which is the
:class:`~repro.core.admission.AdmissionController`'s job.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..config import BootstrapMode, SimulationParameters
from ..ids import PeerId
from ..reputation.backend import ReputationBackend
from ..rocq.protocol import AdjustmentKind, ReputationAdjustment

__all__ = [
    "BootstrapStrategy",
    "LendingBootstrap",
    "OpenBootstrap",
    "FixedCreditBootstrap",
    "make_bootstrap_strategy",
]


class BootstrapStrategy(abc.ABC):
    """Establishes the initial reputation standing of an admitted entrant."""

    name: str = "abstract"

    @abc.abstractmethod
    def grant_initial_standing(
        self, store: ReputationBackend, entrant: PeerId, time: float
    ) -> None:
        """Install whatever initial reputation the mode grants the entrant."""


@dataclass
class LendingBootstrap(BootstrapStrategy):
    """The paper's mechanism: the entrant's standing comes from the lender.

    Nothing to do here — the credit is applied by the
    :class:`~repro.core.lending.LendingManager` as part of the lend/settle
    cycle, so the strategy is intentionally a no-op.  It exists so every mode
    flows through the same code path in the admission controller.
    """

    name: str = "lending"

    def grant_initial_standing(
        self, store: ReputationBackend, entrant: PeerId, time: float
    ) -> None:
        return None


@dataclass
class OpenBootstrap(BootstrapStrategy):
    """Open admission at a neutral reputation (the "no introductions" baseline)."""

    initial_reputation: float = 0.5
    name: str = "open"

    def grant_initial_standing(
        self, store: ReputationBackend, entrant: PeerId, time: float
    ) -> None:
        store.set_reputation(entrant, self.initial_reputation, time)


@dataclass
class FixedCreditBootstrap(BootstrapStrategy):
    """Flat initial credit à la BitTorrent / Scrivener.

    Unlike :class:`OpenBootstrap` the credit is applied as an adjustment
    message, so it travels the same score-manager path as lending credits and
    shows up in the store's adjustment counters.
    """

    credit: float = 0.3
    name: str = "fixed_credit"

    def grant_initial_standing(
        self, store: ReputationBackend, entrant: PeerId, time: float
    ) -> None:
        store.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.BOOTSTRAP_CREDIT,
                issuer=entrant,
                subject=entrant,
                delta=self.credit,
                time=time,
            )
        )


def make_bootstrap_strategy(params: SimulationParameters) -> BootstrapStrategy:
    """Build the strategy matching ``params.bootstrap_mode``.

    ``CLOSED`` has no strategy (nobody is ever admitted); asking for one is a
    programming error, hence the ValueError.
    """
    mode = params.bootstrap_mode
    if mode == BootstrapMode.LENDING:
        return LendingBootstrap()
    if mode == BootstrapMode.OPEN:
        return OpenBootstrap(initial_reputation=params.open_initial_reputation)
    if mode == BootstrapMode.FIXED_CREDIT:
        return FixedCreditBootstrap(credit=params.fixed_initial_credit)
    raise ValueError(f"no bootstrap strategy exists for mode {mode!r}")
