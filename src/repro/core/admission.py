"""Admission control: the front door of the community.

:class:`AdmissionController` ties the whole pipeline together.  For every
arriving peer it

1. selects a prospective introducer according to the interaction topology
   (the paper's worst-case "random assignment of introducers");
2. records the introducer's decision — unwilling (selective refusal),
   unable (reputation below ``minIntroRep``), or willing;
3. enforces the waiting period: the answer only takes effect
   ``waiting_period`` time units later, when :meth:`resolve` is called by the
   simulation engine;
4. on a positive answer, performs the lend (via the
   :class:`~repro.core.lending.LendingManager`) and reports that the peer
   should be admitted;
5. under the baseline bootstrap modes (open / fixed credit / closed) it
   skips the introduction machinery and admits (or rejects) immediately.

The controller never mutates the population, topology or overlay — the
engine owns those side effects — which keeps it independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import BootstrapMode, SimulationParameters
from ..errors import DuplicateIntroductionError
from ..ids import PeerId
from ..peers.peer import Peer
from ..reputation.backend import ReputationBackend
from ..topology.base import TopologyModel
from .bootstrap import BootstrapStrategy, make_bootstrap_strategy
from .introduction import (
    IntroductionDecision,
    IntroductionRegistry,
    RefusalReason,
)
from .lending import LendingContract, LendingManager

__all__ = ["AdmissionRequest", "AdmissionResult", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionRequest:
    """An arrival's admission attempt, waiting for its response time."""

    applicant: PeerId
    introducer: PeerId | None
    decision: IntroductionDecision
    requested_at: float
    respond_at: float

    @property
    def accepted(self) -> bool:
        """Whether the (pending) decision is positive."""
        return self.decision.accepted


@dataclass(frozen=True)
class AdmissionResult:
    """Final outcome of an admission attempt."""

    applicant: PeerId
    admitted: bool
    introducer: PeerId | None = None
    refusal_reason: RefusalReason | None = None
    contract: LendingContract | None = None
    time: float = 0.0


@dataclass
class AdmissionController:
    """Decides who gets in, and orchestrates lending when they do."""

    params: SimulationParameters
    topology: TopologyModel
    store: ReputationBackend
    lending: LendingManager
    rng: np.random.Generator
    registry: IntroductionRegistry = field(init=False)
    bootstrap: BootstrapStrategy | None = field(init=False)
    _peers_by_id: dict[PeerId, Peer] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.registry = IntroductionRegistry(waiting_period=self.params.waiting_period)
        if self.params.bootstrap_mode == BootstrapMode.CLOSED:
            self.bootstrap = None
        else:
            self.bootstrap = make_bootstrap_strategy(self.params)

    # ------------------------------------------------------------------ #
    # Phase 1: the arrival asks for admission                              #
    # ------------------------------------------------------------------ #
    def request_admission(
        self, applicant: Peer, introducer: Peer | None, time: float
    ) -> AdmissionRequest:
        """Open an admission attempt for ``applicant`` at ``time``.

        ``introducer`` is the member the applicant asked (chosen by the
        caller from the topology; ``None`` when the community is empty or the
        mode does not use introducers).  The decision is computed now and
        applied at ``respond_at``.
        """
        mode = self.params.bootstrap_mode
        self._peers_by_id[applicant.peer_id] = applicant
        if mode == BootstrapMode.CLOSED:
            decision = IntroductionDecision(
                accepted=False, reason=RefusalReason.ADMISSION_CLOSED
            )
            return AdmissionRequest(
                applicant=applicant.peer_id,
                introducer=None,
                decision=decision,
                requested_at=time,
                respond_at=time,
            )
        if mode in (BootstrapMode.OPEN, BootstrapMode.FIXED_CREDIT):
            decision = IntroductionDecision(accepted=True)
            return AdmissionRequest(
                applicant=applicant.peer_id,
                introducer=None,
                decision=decision,
                requested_at=time,
                respond_at=time,
            )
        # Lending mode: the full introduction protocol.
        decision = self._decide_introduction(applicant, introducer)
        request = self.registry.open_request(
            applicant=applicant.peer_id,
            introducer=introducer.peer_id if introducer is not None else None,
            decision=decision,
            time=time,
        )
        return AdmissionRequest(
            applicant=applicant.peer_id,
            introducer=request.introducer,
            decision=decision,
            requested_at=time,
            respond_at=request.respond_at,
        )

    def _decide_introduction(
        self, applicant: Peer, introducer: Peer | None
    ) -> IntroductionDecision:
        """The introducer's deliberation, following §3 of the paper."""
        if introducer is None:
            return IntroductionDecision(
                accepted=False, reason=RefusalReason.NO_INTRODUCER
            )
        if not self.lending.can_lend(introducer.peer_id):
            return IntroductionDecision(
                accepted=False, reason=RefusalReason.INSUFFICIENT_REPUTATION
            )
        policy = introducer.introducer_policy
        if policy is None:
            return IntroductionDecision(
                accepted=False, reason=RefusalReason.SELECTIVE_REFUSAL
            )
        willing = policy.is_willing(applicant.behavior, self.rng)
        if not willing:
            return IntroductionDecision(
                accepted=False, reason=RefusalReason.SELECTIVE_REFUSAL
            )
        return IntroductionDecision(accepted=True)

    # ------------------------------------------------------------------ #
    # Phase 2: the waiting period elapses                                  #
    # ------------------------------------------------------------------ #
    def resolve(self, request: AdmissionRequest, time: float) -> AdmissionResult:
        """Apply the decision of ``request`` once its response time arrives."""
        mode = self.params.bootstrap_mode
        applicant_id = request.applicant
        if mode == BootstrapMode.CLOSED:
            return AdmissionResult(
                applicant=applicant_id,
                admitted=False,
                refusal_reason=RefusalReason.ADMISSION_CLOSED,
                time=time,
            )
        if mode in (BootstrapMode.OPEN, BootstrapMode.FIXED_CREDIT):
            return AdmissionResult(applicant=applicant_id, admitted=True, time=time)

        try:
            intro = self.registry.resolve(applicant_id, time)
        except DuplicateIntroductionError:
            # The score managers noticed two introductions for the same peer:
            # zero its reputation and refuse admission.
            self.lending.sanction(applicant_id, time)
            return AdmissionResult(
                applicant=applicant_id,
                admitted=False,
                refusal_reason=RefusalReason.DUPLICATE_REQUEST,
                time=time,
            )
        if not intro.accepted:
            return AdmissionResult(
                applicant=applicant_id,
                admitted=False,
                introducer=intro.introducer,
                refusal_reason=intro.decision.reason,
                time=time,
            )
        # A re-check at response time: the introducer may have lost reputation
        # while the waiting period ran (e.g. other lends, failed audits).
        assert intro.introducer is not None
        if not self.lending.can_lend(intro.introducer):
            return AdmissionResult(
                applicant=applicant_id,
                admitted=False,
                introducer=intro.introducer,
                refusal_reason=RefusalReason.INSUFFICIENT_REPUTATION,
                time=time,
            )
        contract = self.lending.lend(
            introducer=intro.introducer,
            entrant=applicant_id,
            time=time,
            reference=intro.request_id,
        )
        return AdmissionResult(
            applicant=applicant_id,
            admitted=True,
            introducer=intro.introducer,
            contract=contract,
            time=time,
        )

    # ------------------------------------------------------------------ #
    # Post-admission standing                                              #
    # ------------------------------------------------------------------ #
    def grant_initial_standing(self, entrant: PeerId, time: float) -> None:
        """Install the mode's initial reputation for a just-admitted entrant."""
        if self.bootstrap is not None:
            self.bootstrap.grant_initial_standing(self.store, entrant, time)
