"""The introduction protocol.

§2 of the paper ("Multiple introduction requests") specifies the protocol in
detail:

* a new peer asks **one** existing peer for an introduction;
* a waiting period ``T_w`` must elapse between the request and the response,
  whatever the decision, so a new peer cannot bombard the system with
  requests;
* the introduction message carries the identities of both parties and a
  unique id to prevent duplicate requests;
* if the new peer manages to obtain **two** concurrent introductions (by
  asking a second peer before hearing back from the first), its score
  managers detect the duplicate, reset its reputation to zero and may flag it
  as malicious.

:class:`IntroductionRegistry` owns all of that bookkeeping; the decision
itself (willing or not) is made by the admission controller using the
introducer's policy, and stored on the :class:`IntroductionRequest` so it can
be applied when the waiting period expires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..errors import DuplicateIntroductionError, WaitingPeriodError
from ..ids import PeerId

__all__ = [
    "RefusalReason",
    "IntroductionDecision",
    "IntroductionRequest",
    "IntroductionRegistry",
]


class RefusalReason(str, Enum):
    """Why an applicant was not admitted.

    The paper's Figure 4 and Figure 6 break refusals down into "entry refused
    due to introducer reputation" and "entry refused to uncooperative peer"
    (a selective introducer's judgment); the remaining members cover the
    no-member corner case, the duplicate-introduction sanction and the closed
    baseline.
    """

    NO_INTRODUCER = "no_introducer"
    INSUFFICIENT_REPUTATION = "insufficient_reputation"
    SELECTIVE_REFUSAL = "selective_refusal"
    DUPLICATE_REQUEST = "duplicate_request"
    ADMISSION_CLOSED = "admission_closed"


@dataclass(frozen=True)
class IntroductionDecision:
    """Outcome of the introducer's deliberation (made at request time)."""

    accepted: bool
    reason: RefusalReason | None = None

    def __post_init__(self) -> None:
        if self.accepted and self.reason is not None:
            raise ValueError("an accepted decision cannot carry a refusal reason")
        if not self.accepted and self.reason is None:
            raise ValueError("a refusal must carry a reason")


@dataclass
class IntroductionRequest:
    """One introduction request and its (pending) resolution."""

    request_id: str
    applicant: PeerId
    introducer: PeerId | None
    requested_at: float
    respond_at: float
    decision: IntroductionDecision
    resolved: bool = False

    @property
    def accepted(self) -> bool:
        """Whether the introducer agreed (meaningful even before resolution)."""
        return self.decision.accepted


@dataclass
class IntroductionRegistry:
    """Tracks introduction requests, waiting periods and duplicate grants."""

    waiting_period: float
    _counter: "itertools.count[int]" = field(default_factory=itertools.count)
    _pending_by_applicant: dict[PeerId, IntroductionRequest] = field(default_factory=dict)
    _granted_applicants: set[PeerId] = field(default_factory=set)
    _next_request_allowed: dict[PeerId, float] = field(default_factory=dict)
    _all_requests: list[IntroductionRequest] = field(default_factory=list)
    duplicate_attempts: int = 0

    # ------------------------------------------------------------------ #
    # Request lifecycle                                                    #
    # ------------------------------------------------------------------ #
    def open_request(
        self,
        applicant: PeerId,
        introducer: PeerId | None,
        decision: IntroductionDecision,
        time: float,
    ) -> IntroductionRequest:
        """Register a new introduction request made at ``time``.

        Raises
        ------
        WaitingPeriodError
            If the applicant already has a request whose waiting period has
            not elapsed (the protocol forbids a second request before the
            response to the first arrives).
        """
        ready_at = self._next_request_allowed.get(applicant)
        if ready_at is not None and time < ready_at:
            raise WaitingPeriodError(applicant, ready_at, time)
        request = IntroductionRequest(
            request_id=f"intro-{next(self._counter)}",
            applicant=applicant,
            introducer=introducer,
            requested_at=time,
            respond_at=time + self.waiting_period,
            decision=decision,
        )
        self._pending_by_applicant[applicant] = request
        self._next_request_allowed[applicant] = request.respond_at
        self._all_requests.append(request)
        return request

    def resolve(self, applicant: PeerId, time: float) -> IntroductionRequest:
        """Mark the applicant's pending request as answered.

        Raises
        ------
        DuplicateIntroductionError
            If the applicant was already granted an introduction previously —
            the score managers have received two introductions for the same
            peer and must sanction it.
        """
        request = self._pending_by_applicant.pop(applicant)
        request.resolved = True
        if request.accepted:
            if applicant in self._granted_applicants:
                self.duplicate_attempts += 1
                raise DuplicateIntroductionError(applicant)
            self._granted_applicants.add(applicant)
        return request

    def pending_request(self, applicant: PeerId) -> IntroductionRequest | None:
        """The applicant's unresolved request, if any."""
        return self._pending_by_applicant.get(applicant)

    def has_been_granted(self, applicant: PeerId) -> bool:
        """Whether the applicant has already received an introduction."""
        return applicant in self._granted_applicants

    def can_request_at(self, applicant: PeerId, time: float) -> bool:
        """Whether the applicant may open a new request at ``time``."""
        ready_at = self._next_request_allowed.get(applicant)
        return ready_at is None or time >= ready_at

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    def pending_requests(self) -> list[IntroductionRequest]:
        """All currently unresolved requests (ordered by response time)."""
        return sorted(self._pending_by_applicant.values(), key=lambda r: r.respond_at)

    def all_requests(self) -> list[IntroductionRequest]:
        """Every request ever opened, in request order."""
        return list(self._all_requests)

    def granted_count(self) -> int:
        """Number of applicants that received an introduction."""
        return len(self._granted_applicants)
