"""Introducer decision policies.

The paper models two kinds of introducers (§3, "Types of introducers"):

* **naive** — "indiscriminate and will give an introduction to any new
  entrant that asks for one";
* **selective** — "only give introductions to peers that they believe will
  behave in a cooperative fashion", but "make mistakes in their judgment and
  introduce a small percentage ``errSel`` of the dishonest nodes".

A third policy, :class:`RefusingPolicy`, never introduces anyone; it is not in
the paper but is useful as a degenerate baseline and in tests.

Policies only answer the *willingness* question.  Whether the introducer is
*allowed* to lend (reputation above ``minIntroRep``) is checked separately by
the admission controller, because the paper treats the two refusal reasons as
distinct outcomes (see Figure 4 and Figure 6).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..config import SimulationParameters
from ..peers.behavior import BehaviorModel

__all__ = [
    "IntroducerPolicy",
    "NaivePolicy",
    "SelectivePolicy",
    "RefusingPolicy",
    "assign_policy",
]


class IntroducerPolicy(abc.ABC):
    """Decides whether an introducer is willing to vouch for an applicant."""

    #: Short machine-readable label used by metrics and logs.
    name: str = "abstract"

    @abc.abstractmethod
    def is_willing(
        self,
        applicant_behavior: BehaviorModel,
        rng: np.random.Generator,
    ) -> bool:
        """Return True if the introducer agrees to introduce the applicant.

        The decision may use the applicant's (perceived) behaviour — the
        paper models selective introducers as judges of the applicant's
        honesty who err with a fixed probability — and randomness for that
        error.
        """


@dataclass
class NaivePolicy(IntroducerPolicy):
    """Introduces every applicant, no questions asked."""

    name: str = "naive"

    def is_willing(
        self, applicant_behavior: BehaviorModel, rng: np.random.Generator
    ) -> bool:
        return True


@dataclass
class SelectivePolicy(IntroducerPolicy):
    """Introduces cooperative applicants; errs on uncooperative ones.

    ``error_rate`` is the paper's ``errSel``: the probability that an
    uncooperative applicant slips past the introducer's judgment.
    """

    error_rate: float = 0.1
    name: str = "selective"

    def is_willing(
        self, applicant_behavior: BehaviorModel, rng: np.random.Generator
    ) -> bool:
        if applicant_behavior.is_cooperative:
            return True
        return bool(rng.random() < self.error_rate)


@dataclass
class RefusingPolicy(IntroducerPolicy):
    """Never introduces anyone (degenerate baseline)."""

    name: str = "refusing"

    def is_willing(
        self, applicant_behavior: BehaviorModel, rng: np.random.Generator
    ) -> bool:
        return False


def assign_policy(
    behavior: BehaviorModel,
    params: SimulationParameters,
    rng: np.random.Generator,
) -> IntroducerPolicy:
    """Assign an introducer policy to a peer, following §4 of the paper.

    * Uncooperative peers are always naive introducers ("we assume that all
      new peers that are uncooperative are naive introducers").
    * Cooperative peers are naive with probability ``fraction_naive`` and
      selective otherwise.
    """
    if not behavior.is_cooperative:
        return NaivePolicy()
    if rng.random() < params.fraction_naive:
        return NaivePolicy()
    return SelectivePolicy(error_rate=params.selective_error_rate)
