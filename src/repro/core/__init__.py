"""Reputation lending — the paper's primary contribution.

This package implements the full admission pipeline described in §2-3 of the
paper:

* **introduction protocol** (:mod:`~repro.core.introduction`): a new entrant
  asks exactly one existing member for an introduction, a waiting period
  elapses before the answer, and duplicate concurrent introductions are
  detected and punished;
* **introducer policies** (:mod:`~repro.core.policies`): *naive* introducers
  accept anyone, *selective* introducers refuse uncooperative applicants
  except with a small error rate;
* **lending accounting** (:mod:`~repro.core.lending`): the introducer stakes
  ``introAmt`` of its reputation, the entrant is credited the same amount,
  and the stake is settled at audit time (returned with a reward, or lost);
* **audits** (:mod:`~repro.core.audit`): after ``auditTrans`` transactions the
  entrant's score managers judge its behaviour and settle the contract;
* **admission control** (:mod:`~repro.core.admission`): ties the above
  together and also implements the baseline bootstrap policies (open
  admission, fixed initial credit, closed) used for comparison experiments.
"""

from .introduction import (
    IntroductionDecision,
    IntroductionRegistry,
    IntroductionRequest,
    RefusalReason,
)
from .policies import (
    IntroducerPolicy,
    NaivePolicy,
    RefusingPolicy,
    SelectivePolicy,
    assign_policy,
)
from .lending import LendingContract, LendingManager, LendingStats
from .audit import AuditOutcome, AuditResult
from .admission import AdmissionController, AdmissionRequest, AdmissionResult

__all__ = [
    "IntroductionDecision",
    "IntroductionRegistry",
    "IntroductionRequest",
    "RefusalReason",
    "IntroducerPolicy",
    "NaivePolicy",
    "RefusingPolicy",
    "SelectivePolicy",
    "assign_policy",
    "LendingContract",
    "LendingManager",
    "LendingStats",
    "AuditOutcome",
    "AuditResult",
    "AdmissionController",
    "AdmissionRequest",
    "AdmissionResult",
]
