"""Performance audits of newly introduced peers.

§3 ("Performance audit"): after a new entrant has completed ``auditTrans``
transactions, its score managers audit its performance.  If the reputation is
deemed satisfactory the introducer gets the lent amount back plus a reward
``rewardAmt``; otherwise the introducer loses the stake and the entrant's
stored reputation is reduced by ``introAmt`` (floored at zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..ids import PeerId

__all__ = ["AuditOutcome", "AuditResult", "evaluate_audit"]


class AuditOutcome(str, Enum):
    """Verdict of a performance audit."""

    PASSED = "passed"
    FAILED = "failed"


@dataclass(frozen=True)
class AuditResult:
    """Record of one settled audit."""

    entrant: PeerId
    introducer: PeerId
    outcome: AuditOutcome
    entrant_reputation: float
    time: float
    #: Amount actually returned to the introducer (stake + reward, clamped).
    returned_to_introducer: float = 0.0
    #: Amount actually removed from the entrant on a failed audit.
    deducted_from_entrant: float = 0.0

    @property
    def passed(self) -> bool:
        """Convenience flag for filtering."""
        return self.outcome == AuditOutcome.PASSED


def evaluate_audit(entrant_reputation: float, pass_threshold: float) -> AuditOutcome:
    """Judge an entrant's performance from its current reputation.

    The paper leaves "deemed satisfactory based on its reputation value"
    unspecified; we use a configurable threshold (default 0.5, the midpoint
    that separates mostly-good from mostly-bad service under ROCQ).
    """
    if entrant_reputation >= pass_threshold:
        return AuditOutcome.PASSED
    return AuditOutcome.FAILED
