"""Lending accounting: stakes, credits, audits, rewards and penalties.

:class:`LendingManager` is the bookkeeping heart of the paper's mechanism.
It talks to the ROCQ :class:`~repro.rocq.store.ReputationStore` exclusively
through :class:`~repro.rocq.protocol.ReputationAdjustment` messages — the
same messages the introducer's and entrant's score managers would exchange in
a deployment — and keeps one :class:`LendingContract` per outstanding
introduction so the stake can be settled when the audit fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SimulationParameters
from ..ids import PeerId
from ..reputation.backend import ReputationBackend
from ..rocq.protocol import AdjustmentKind, ReputationAdjustment
from .audit import AuditOutcome, AuditResult, evaluate_audit

__all__ = ["LendingContract", "LendingStats", "LendingManager"]


@dataclass
class LendingContract:
    """An open introduction: who vouched for whom, and for how much."""

    entrant: PeerId
    introducer: PeerId
    amount: float
    granted_at: float
    #: Transactions the entrant still has to complete before the audit.
    transactions_until_audit: int
    settled: bool = False

    def note_transaction(self) -> bool:
        """Count one completed transaction; return True when the audit is due."""
        if self.settled:
            return False
        if self.transactions_until_audit > 0:
            self.transactions_until_audit -= 1
        return self.transactions_until_audit == 0


@dataclass
class LendingStats:
    """Aggregate counters describing lending activity in a run."""

    introductions_granted: int = 0
    audits_passed: int = 0
    audits_failed: int = 0
    total_reputation_lent: float = 0.0
    total_rewards_paid: float = 0.0
    total_stakes_lost: float = 0.0
    sanctions_applied: int = 0

    @property
    def audits_settled(self) -> int:
        """Number of contracts settled so far."""
        return self.audits_passed + self.audits_failed


@dataclass
class LendingManager:
    """Implements the lend / audit / settle cycle over the reputation store."""

    store: ReputationBackend
    params: SimulationParameters
    stats: LendingStats = field(default_factory=LendingStats)
    _contracts: dict[PeerId, LendingContract] = field(default_factory=dict)
    _audit_history: list[AuditResult] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Eligibility                                                          #
    # ------------------------------------------------------------------ #
    def can_lend(self, introducer: PeerId) -> bool:
        """Whether ``introducer`` currently holds enough reputation to lend.

        The paper forbids peers below ``minIntroRep`` from introducing anyone,
        which both keeps uncooperative/new peers from vouching and guarantees
        reputations never go negative.
        """
        reputation = self.store.global_reputation(introducer)
        return reputation >= self.params.effective_min_intro_reputation()

    def introducer_reputation(self, introducer: PeerId) -> float:
        """Convenience passthrough used by the admission controller."""
        return self.store.global_reputation(introducer)

    # ------------------------------------------------------------------ #
    # Lending                                                              #
    # ------------------------------------------------------------------ #
    def lend(
        self, introducer: PeerId, entrant: PeerId, time: float, reference: str = ""
    ) -> LendingContract:
        """Stake ``introAmt`` of the introducer's reputation on the entrant.

        Issues the two adjustment messages of the protocol — a debit against
        the introducer's score managers and a credit to the entrant's — and
        opens the contract that the audit will later settle.
        """
        amount = self.params.intro_amount
        self.store.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.LEND_DEBIT,
                issuer=introducer,
                subject=introducer,
                delta=-amount,
                time=time,
                reference=reference,
            )
        )
        self.store.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.LEND_CREDIT,
                issuer=introducer,
                subject=entrant,
                delta=amount,
                time=time,
                reference=reference,
            )
        )
        contract = LendingContract(
            entrant=entrant,
            introducer=introducer,
            amount=amount,
            granted_at=time,
            transactions_until_audit=self.params.audit_transactions,
        )
        self._contracts[entrant] = contract
        self.stats.introductions_granted += 1
        self.stats.total_reputation_lent += amount
        return contract

    def contract_for(self, entrant: PeerId) -> LendingContract | None:
        """The outstanding contract of ``entrant``, if any."""
        return self._contracts.get(entrant)

    def outstanding_contracts(self) -> list[LendingContract]:
        """All contracts not yet settled."""
        return [c for c in self._contracts.values() if not c.settled]

    # ------------------------------------------------------------------ #
    # Audits                                                               #
    # ------------------------------------------------------------------ #
    def note_transaction(self, entrant: PeerId, time: float) -> AuditResult | None:
        """Count one transaction of ``entrant``; settle the audit when due."""
        contract = self._contracts.get(entrant)
        if contract is None or contract.settled:
            return None
        if contract.note_transaction():
            return self.settle(entrant, time)
        return None

    def settle(self, entrant: PeerId, time: float) -> AuditResult | None:
        """Run the audit for ``entrant`` and settle its contract."""
        contract = self._contracts.get(entrant)
        if contract is None or contract.settled:
            return None
        reputation = self.store.global_reputation(entrant)
        outcome = evaluate_audit(reputation, self.params.audit_pass_threshold)
        returned = 0.0
        deducted = 0.0
        if outcome == AuditOutcome.PASSED:
            returned = self.store.apply_adjustment(
                ReputationAdjustment(
                    kind=AdjustmentKind.AUDIT_RETURN,
                    issuer=entrant,
                    subject=contract.introducer,
                    delta=contract.amount + self.params.reward_amount,
                    time=time,
                )
            )
            self.stats.audits_passed += 1
            self.stats.total_rewards_paid += self.params.reward_amount
        else:
            # The introducer's stake is simply never returned; the entrant is
            # additionally stripped of the lent amount (floored at zero).
            deducted = -self.store.apply_adjustment(
                ReputationAdjustment(
                    kind=AdjustmentKind.AUDIT_PENALTY,
                    issuer=contract.introducer,
                    subject=entrant,
                    delta=-contract.amount,
                    time=time,
                )
            )
            self.stats.audits_failed += 1
            self.stats.total_stakes_lost += contract.amount
        contract.settled = True
        result = AuditResult(
            entrant=entrant,
            introducer=contract.introducer,
            outcome=outcome,
            entrant_reputation=reputation,
            time=time,
            returned_to_introducer=returned,
            deducted_from_entrant=deducted,
        )
        self._audit_history.append(result)
        return result

    def settle_all(self, time: float) -> list[AuditResult]:
        """Settle every outstanding contract (end-of-run cleanup)."""
        results = []
        for entrant in list(self._contracts):
            result = self.settle(entrant, time)
            if result is not None:
                results.append(result)
        return results

    def audit_history(self) -> list[AuditResult]:
        """All settled audits in settlement order."""
        return list(self._audit_history)

    # ------------------------------------------------------------------ #
    # Sanctions                                                            #
    # ------------------------------------------------------------------ #
    def sanction(self, peer: PeerId, time: float, reference: str = "") -> None:
        """Reset a peer's reputation to zero (duplicate-introduction attack).

        Implemented as a full-range negative adjustment so it reaches every
        score-manager replica through the normal message path.
        """
        self.store.apply_adjustment(
            ReputationAdjustment(
                kind=AdjustmentKind.SANCTION,
                issuer=peer,
                subject=peer,
                delta=-1.0,
                time=time,
                reference=reference,
            )
        )
        self.stats.sanctions_applied += 1
