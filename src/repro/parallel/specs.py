"""Run specifications — the unit of work the executors operate on.

A :class:`RunSpec` pins down one simulation completely: the fully resolved
:class:`~repro.config.SimulationParameters` and the seed the run must use.
The seed is derived by the sweep machinery through
:func:`repro.rng.derive_seed` from (master seed, sweep name, point label,
repeat index), exactly as the serial harness always did, so executing the
same spec serially, on a thread pool, or in a worker process produces the
same :class:`~repro.metrics.summary.RunSummary` bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..config import SimulationParameters

__all__ = ["RunSpec", "params_fingerprint"]


def params_fingerprint(params: SimulationParameters) -> str:
    """Stable hexadecimal digest identifying a parameter set.

    Computed over the sorted-key JSON form of the parameters, so it is
    insensitive to construction order and identical across processes and
    interpreter invocations (unlike ``hash()``).
    """
    text = params.to_json()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunSpec:
    """One simulation to execute: resolved parameters plus a derived seed.

    Instances are small, hashable and picklable, which is what lets the
    process backend ship them to worker processes unchanged.

    Attributes
    ----------
    params:
        The fully resolved configuration (overrides and scaling applied).
    seed:
        The exact seed :func:`repro.sim.engine.run_simulation` must use.
    sweep:
        Name of the sweep the spec belongs to (progress/debugging only).
    label:
        Label of the sweep point the spec belongs to.
    repeat:
        Zero-based repeat index at that point.
    total_repeats:
        Number of repeats at that point (progress rendering only).
    trace_mode:
        ``None`` for a plain run, ``"record"`` to capture this run's event
        trace, ``"replay"`` to re-inject a recorded one (see
        :mod:`repro.trace`).  Carried as plain strings/paths so specs stay
        picklable for the process backend.
    trace_path:
        The trace file: destination when recording, source when replaying.
    trace_record_to:
        Replay only — also record the replayed run's trace to this path.
    trace_digest_every:
        State-digest cadence while recording (1 = every record).
    shards:
        Number of ring arcs the sharded engine partitions the run into;
        ``1`` (the default) runs the plain serial engine.  An *execution*
        knob like ``--jobs``, not part of the run's identity: results are
        bit-identical for every value, so it is excluded from
        :func:`params_fingerprint` (which hashes only ``params``) and
        sharded specs bypass the run cache (see
        :func:`repro.parallel.executor.run_specs`).
    epoch_length:
        Epoch window of the sharded engine, in transaction steps; ``None``
        uses :data:`repro.sim.sharded.DEFAULT_EPOCH_LENGTH`.
    persist_path:
        Durable-store URL (``sqlite://...``, ``memory://name``) or bare
        sqlite path the run checkpoints its backend state to on finalize
        (see :mod:`repro.storage`).  Like the trace facet, an execution
        side-effect rather than part of the run's identity — excluded from
        :func:`params_fingerprint`, and persisted specs bypass the run
        cache (a cache hit would skip the state write).
    persist_key:
        Snapshot key inside the store; ``None`` lets the persistence layer
        derive ``backend/<scheme>``.
    persist_resume:
        Restore the backend from the store before the run instead of
        starting cold (digest-verified; see
        :class:`repro.storage.BackendPersistence`).
    """

    params: SimulationParameters
    seed: int
    sweep: str = ""
    label: str = ""
    repeat: int = 0
    total_repeats: int = 1
    trace_mode: str | None = None
    trace_path: str | None = None
    trace_record_to: str | None = None
    trace_digest_every: int = 1
    shards: int = 1
    epoch_length: int | None = None
    persist_path: str | None = None
    persist_key: str | None = None
    persist_resume: bool = False

    def describe(self) -> str:
        """Short human-readable progress line for this run."""
        return (
            f"[{self.sweep}] point={self.label} "
            f"repeat={self.repeat + 1}/{self.total_repeats}"
        )
