"""Persistent cache of simulation runs keyed by (parameter fingerprint, seed).

The cache is a thin layer over :class:`~repro.analysis.storage.ResultStore`:
one JSON document per run, named after the parameter fingerprint and the
seed.  Because the key depends only on *what* would be simulated — never on
which experiment asked for it — any two sweeps that resolve to the same
(params, seed) pair share work, regardless of experiment ordering or of
whether they run in the same process, the same invocation, or days apart.
"""

from __future__ import annotations

from pathlib import Path

from ..analysis.storage import ResultStore
from ..config import SimulationParameters
from ..errors import ReproError
from ..metrics.summary import RunSummary
from .specs import params_fingerprint

__all__ = ["CACHE_VERSION", "RunCache"]

#: Version tag folded into every cache key.  Bump it whenever the simulation
#: engine's semantics change (new dynamics, bug fixes that alter results), so
#: documents computed by older code are never served as current results.
CACHE_VERSION = 1


class RunCache:
    """Stores and retrieves :class:`RunSummary` objects by (params, seed).

    Parameters
    ----------
    store:
        A :class:`ResultStore`, or a directory path one is created over.

    Attributes
    ----------
    hits / misses:
        In-process counters of :meth:`get` outcomes, for tests and progress
        reporting.
    """

    def __init__(self, store: ResultStore | Path | str) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(Path(store))
        self.store = store
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(params: SimulationParameters, seed: int) -> str:
        """The document name caching a run of ``params`` with ``seed``."""
        return f"run-v{CACHE_VERSION}-{params_fingerprint(params)}-{seed}"

    def get(self, params: SimulationParameters, seed: int) -> RunSummary | None:
        """Return the cached summary for (params, seed), or ``None``.

        A document that fails to load (truncated file, schema drift from an
        older version) is treated as a miss rather than an error, so a stale
        cache directory can never break an experiment run.
        """
        name = self.key_for(params, seed)
        if not self.store.exists(name):
            self.misses += 1
            return None
        try:
            summary = RunSummary.from_dict(self.store.load_json(name))
        except (AttributeError, KeyError, TypeError, ValueError, ReproError):
            # Malformed JSON, missing fields, wrong shapes, or parameters
            # that no longer validate (ConfigurationError) — all schema
            # drift, all misses.
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, params: SimulationParameters, seed: int, summary: RunSummary) -> Path:
        """Persist ``summary`` under the (params, seed) key."""
        return self.store.save_json(self.key_for(params, seed), summary.to_dict())
