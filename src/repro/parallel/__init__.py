"""Parallel execution of simulation runs.

The experiment harness describes every simulation it needs as a
:class:`~repro.parallel.specs.RunSpec` — a fully resolved parameter set plus
a deterministic seed derived through :func:`repro.rng.derive_seed`.  Batches
of specs are handed to an executor (serial, thread pool, or process pool via
:mod:`concurrent.futures`); because each spec carries its own seed, results
are bit-identical no matter which backend ran them or in which order they
finished.

A :class:`~repro.parallel.cache.RunCache` can be layered in front of any
executor to skip runs whose (parameter fingerprint, seed) pair has already
been computed — by an earlier experiment in the same invocation or by a
previous invocation entirely.
"""

from .cache import CACHE_VERSION, RunCache
from .executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    execute_spec,
    run_specs,
)
from .specs import RunSpec, params_fingerprint

__all__ = [
    "BACKENDS",
    "CACHE_VERSION",
    "Executor",
    "ProcessExecutor",
    "RunCache",
    "RunSpec",
    "SerialExecutor",
    "ThreadExecutor",
    "create_executor",
    "execute_spec",
    "params_fingerprint",
    "run_specs",
]
