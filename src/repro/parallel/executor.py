"""Executor backends that run batches of :class:`RunSpec`.

Three interchangeable backends are provided:

``serial``
    Runs every spec inline, in order — the reference behaviour.
``thread``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  The simulation kernel
    is pure Python, so threads mostly help when something else (I/O, a future
    native kernel) releases the GIL; the backend exists so callers can trade
    memory for isolation without paying process start-up costs.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor`; the backend that
    actually scales sweeps across cores.

Every backend returns results in *spec order*, whatever order the runs
finished in, and each spec carries its own derived seed — so results are
bit-identical across backends and job counts.
"""

from __future__ import annotations

import os
from concurrent import futures
from typing import Callable, Sequence

from ..metrics.summary import RunSummary
from ..sim.engine import run_simulation
from .cache import RunCache
from .specs import RunSpec

__all__ = [
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "create_executor",
    "execute_spec",
    "run_specs",
]

#: Names accepted by :func:`create_executor` (and the CLI ``--backend`` flag).
BACKENDS = ("serial", "thread", "process")

ProgressFn = Callable[[str], None]
ResultFn = Callable[[int, RunSummary], None]


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run the simulation a spec describes.

    Module-level (not a method) so the process backend can pickle a reference
    to it for worker processes.  Specs carrying a trace facet dispatch to the
    trace engine (imported lazily — tracing is the exception, not the rule);
    recording/replaying works identically on every backend because the trace
    file lives on the shared filesystem, not in worker memory.
    """
    if spec.trace_mode == "record":
        from ..trace import record_simulation

        assert spec.trace_path is not None
        summary, log = record_simulation(
            spec.params, seed=spec.seed, digest_every=spec.trace_digest_every
        )
        log.save(spec.trace_path)
        return summary
    if spec.trace_mode == "replay":
        from ..trace import TraceLog, replay_simulation

        assert spec.trace_path is not None
        log = TraceLog.load(spec.trace_path)
        summary, new_log = replay_simulation(
            log,
            params=spec.params,
            seed=spec.seed,
            record=spec.trace_record_to is not None,
            digest_every=spec.trace_digest_every,
            shards=spec.shards,
            epoch_length=spec.epoch_length,
        )
        if new_log is not None:
            assert spec.trace_record_to is not None
            new_log.save(spec.trace_record_to)
        return summary
    if spec.persist_path is not None:
        # Durable persistence (imported lazily, like tracing).  The store is
        # opened per spec execution — sqlite in WAL mode arbitrates between
        # pool workers hitting the same file, and ``memory://name`` URLs
        # resolve to the process-shared instance for in-process executors.
        from ..storage import BackendPersistence, make_store

        store = make_store(spec.persist_path)
        try:
            persistence = BackendPersistence(
                store,
                key=spec.persist_key or "",
                resume=spec.persist_resume,
            )
            return run_simulation(
                spec.params, seed=spec.seed, persistence=persistence
            )
        finally:
            store.close()
    if spec.shards > 1:
        # The sharded driver produces bit-identical results (pinned by the
        # golden-digest tests); plan fan-out runs inline here because a spec
        # may already be executing inside a pool worker, where nesting
        # another pool would oversubscribe the host.
        from ..sim.sharded import run_sharded_simulation

        return run_sharded_simulation(
            spec.params,
            seed=spec.seed,
            shards=spec.shards,
            epoch_length=spec.epoch_length,
        )
    return run_simulation(spec.params, seed=spec.seed)


class Executor:
    """Executes batches of specs; subclasses choose the concurrency model."""

    backend: str = "abstract"
    jobs: int = 1

    def map_specs(
        self,
        specs: Sequence[RunSpec],
        progress: ProgressFn | None = None,
        on_result: ResultFn | None = None,
    ) -> list[RunSummary]:
        """Run every spec and return the summaries in spec order.

        ``on_result`` (if given) is invoked in the calling process with
        ``(index, summary)`` as each run completes — in completion order,
        not spec order — so callers can persist results incrementally.
        """
        raise NotImplementedError

    def map_calls(self, fn: Callable, payloads: Sequence[tuple]) -> list:
        """Apply ``fn`` to every payload tuple; results in payload order.

        The generic sibling of :meth:`map_specs` for non-``RunSpec`` work —
        the sharded engine fans its per-arc epoch plans out through it.
        ``fn`` must be a module-level callable and every payload picklable so
        the process backend can ship them to workers.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled workers (no-op for stateless executors)."""

    def prepare(self) -> None:
        """Eagerly create any worker pool (no-op for stateless executors).

        Pooled backends create their pool lazily on first use; callers that
        will issue :meth:`map_specs` from several threads (the service layer's
        :class:`~repro.api.handle.RunHandle`) call this once up front so the
        lazy creation never races.
        """


class SerialExecutor(Executor):
    """Runs specs inline, one after the other."""

    backend = "serial"

    def map_specs(
        self,
        specs: Sequence[RunSpec],
        progress: ProgressFn | None = None,
        on_result: ResultFn | None = None,
    ) -> list[RunSummary]:
        results: list[RunSummary] = []
        for index, spec in enumerate(specs):
            if progress is not None:
                progress(spec.describe())
            summary = execute_spec(spec)
            if on_result is not None:
                on_result(index, summary)
            results.append(summary)
        return results

    def map_calls(self, fn: Callable, payloads: Sequence[tuple]) -> list:
        return [fn(*payload) for payload in payloads]


class _PoolExecutor(Executor):
    """Shared submit/collect logic for the thread and process backends.

    The underlying worker pool is created lazily on first use and reused
    across :meth:`map_specs` calls, so a whole multi-experiment invocation
    pays worker start-up (interpreter spawn, imports) only once.  Call
    :meth:`close` — or rely on interpreter exit — to release the workers.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self._pool: futures.Executor | None = None

    def _make_pool(self) -> futures.Executor:
        raise NotImplementedError

    def _get_pool(self) -> futures.Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def prepare(self) -> None:
        self._get_pool()

    def close(self) -> None:
        if self._pool is not None:
            # cancel_futures drops queued work so an error path (run_all's
            # finally) is not stalled behind the rest of an abandoned sweep.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def map_specs(
        self,
        specs: Sequence[RunSpec],
        progress: ProgressFn | None = None,
        on_result: ResultFn | None = None,
    ) -> list[RunSummary]:
        if not specs:
            return []
        results: list[RunSummary | None] = [None] * len(specs)
        pool = self._get_pool()
        index_of = {
            pool.submit(execute_spec, spec): index
            for index, spec in enumerate(specs)
        }
        done = 0
        try:
            for future in futures.as_completed(index_of):
                index = index_of[future]
                summary = future.result()
                results[index] = summary
                if on_result is not None:
                    on_result(index, summary)
                done += 1
                if progress is not None:
                    progress(f"{specs[index].describe()} done ({done}/{len(specs)})")
        except BaseException:
            for future in index_of:
                future.cancel()
            raise
        return results  # type: ignore[return-value]  # every slot filled above

    def map_calls(self, fn: Callable, payloads: Sequence[tuple]) -> list:
        if not payloads:
            return []
        pool = self._get_pool()
        submitted = [pool.submit(fn, *payload) for payload in payloads]
        try:
            return [future.result() for future in submitted]
        except BaseException:
            for future in submitted:
                future.cancel()
            raise


class ThreadExecutor(_PoolExecutor):
    """Runs specs on a thread pool."""

    backend = "thread"

    def _make_pool(self) -> futures.Executor:
        return futures.ThreadPoolExecutor(max_workers=self.jobs)


class ProcessExecutor(_PoolExecutor):
    """Runs specs on a process pool — one simulation per worker at a time."""

    backend = "process"

    def _make_pool(self) -> futures.Executor:
        return futures.ProcessPoolExecutor(max_workers=self.jobs)


def create_executor(backend: str | None = None, jobs: int = 1) -> Executor:
    """Build an executor from a backend name and a job count.

    ``backend=None`` picks ``serial`` for ``jobs <= 1`` and ``process``
    otherwise, which is what the experiment CLI exposes as ``--jobs N``.
    """
    if backend is None:
        backend = "serial" if jobs <= 1 else "process"
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(jobs)
    if backend == "process":
        return ProcessExecutor(jobs)
    raise ValueError(f"unknown executor backend {backend!r}; known: {BACKENDS}")


def run_specs(
    specs: Sequence[RunSpec],
    executor: Executor | None = None,
    cache: RunCache | None = None,
    progress: ProgressFn | None = None,
    on_result: ResultFn | None = None,
    on_cache_hit: ResultFn | None = None,
) -> list[RunSummary]:
    """Run a batch of specs through ``executor``, consulting ``cache`` first.

    Cache lookups and stores happen in the calling process, so the cache
    needs no cross-process coordination; only cache misses are submitted to
    the executor, and each miss is persisted the moment it completes — an
    interrupted sweep keeps every run that finished.  Results come back in
    spec order.

    ``on_result`` (if given) is invoked in the calling process with the
    batch index and summary of every run — cache hits at lookup time,
    computed runs as they complete.  An exception raised from it aborts the
    batch (pooled backends cancel their still-queued work), which is how the
    service layer implements cooperative cancellation.  ``on_cache_hit``
    (if given) is additionally invoked — before ``on_result`` — for runs
    served from the cache, so callers can attribute hits per spec without
    relying on the cache's shared counters.
    """
    if executor is None:
        executor = SerialExecutor()
    results: list[RunSummary | None] = [None] * len(specs)
    pending: list[RunSpec] = []
    pending_indices: list[int] = []
    for index, spec in enumerate(specs):
        # Traced specs bypass the cache entirely: a cache-served "recording"
        # would never write its trace file, and a cache-served replay would
        # mask what the replay actually produced.  Sharded specs bypass it
        # too — results are bit-identical to serial, but the summary carries
        # the run's sharding telemetry, which a cached serial document lacks
        # (and which must never leak *into* the shared cache).  Persisted
        # specs bypass it as well: the checkpoint into the durable store is
        # the point of the run, and a cache hit would skip the state write.
        if (
            cache is not None
            and spec.trace_mode is None
            and spec.shards <= 1
            and spec.persist_path is None
        ):
            cached = cache.get(spec.params, spec.seed)
            if cached is not None:
                if progress is not None:
                    progress(f"{spec.describe()} (cached)")
                results[index] = cached
                if on_cache_hit is not None:
                    on_cache_hit(index, cached)
                if on_result is not None:
                    on_result(index, cached)
                continue
        pending.append(spec)
        pending_indices.append(index)

    def store_result(pending_index: int, summary: RunSummary) -> None:
        spec = pending[pending_index]
        if (
            cache is not None
            and spec.trace_mode is None
            and spec.shards <= 1
            and spec.persist_path is None
        ):
            cache.put(spec.params, spec.seed, summary)
        if on_result is not None:
            on_result(pending_indices[pending_index], summary)

    computed = executor.map_specs(pending, progress=progress, on_result=store_result)
    for index, summary in zip(pending_indices, computed):
        results[index] = summary
    return results  # type: ignore[return-value]  # every slot filled above
