"""Threshold-free ranking metrics, pure numpy (no sklearn).

Every function follows the standard convention: a **higher score predicts
the positive class**.  Detection callers therefore pass *suspicion*
(negated reputation) with ``is_adversary`` as the positive label — see
:meth:`repro.detection.labels.LabelSet.suspicion` — so an AUC of 1.0 means
the scheme ranked every adversary below every honest peer.

Tie handling is deterministic everywhere: samples sharing a score move
through the ranking as one group (the ROC curve gains one vertex per
distinct score, and the trapezoidal AUC equals the Mann-Whitney statistic
with half credit for ties), and top-k selection breaks score ties by input
position.  Results depend only on the input arrays, never on iteration
order or hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "RocCurve",
    "ThresholdPoint",
    "roc_curve",
    "auc",
    "average_precision",
    "precision_at_k",
    "precision_recall_f1",
    "operating_point_auc",
    "threshold_sweep",
    "time_to_detection",
]


def _validate(
    scores: Iterable[float], labels: Iterable[Any]
) -> tuple[np.ndarray, np.ndarray]:
    score_array = np.asarray(list(scores), dtype=float)
    label_array = np.asarray(list(labels), dtype=bool)
    if score_array.shape != label_array.shape:
        raise ValueError(
            f"scores and labels must align: {score_array.shape} vs {label_array.shape}"
        )
    if score_array.ndim != 1:
        raise ValueError("scores must be one-dimensional")
    return score_array, label_array


@dataclass(frozen=True)
class RocCurve:
    """One ROC curve: the (FPR, TPR) staircase and its area.

    ``thresholds[i]`` is the score at-or-above which a sample is called
    positive to reach operating point ``(fpr[i], tpr[i])``; index 0 is the
    call-nothing point ``(0, 0)`` with threshold ``inf``.
    """

    fpr: tuple[float, ...]
    tpr: tuple[float, ...]
    thresholds: tuple[float, ...]
    auc: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "fpr": list(self.fpr),
            "tpr": list(self.tpr),
            "thresholds": list(self.thresholds),
            "auc": self.auc,
        }


@dataclass(frozen=True)
class ThresholdPoint:
    """Precision/recall/F1 of the call-positive-at-or-above rule."""

    threshold: float
    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
        }


def _tie_grouped_counts(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cumulative (TP, FP) after each distinct-score group, descending.

    Returns ``(thresholds, tps, fps)`` where ``thresholds`` are the
    distinct scores in descending order and ``tps[i]``/``fps[i]`` count the
    positives/negatives with score >= ``thresholds[i]``.
    """
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    # The last index of every tie group of equal scores.
    boundaries = np.nonzero(np.diff(sorted_scores))[0]
    group_ends = np.concatenate([boundaries, [sorted_scores.size - 1]])
    tps = np.cumsum(sorted_labels.astype(np.int64))[group_ends]
    fps = (group_ends + 1) - tps
    return sorted_scores[group_ends], tps, fps


def roc_curve(scores: Sequence[float], labels: Sequence[Any]) -> RocCurve:
    """ROC curve of ``scores`` against boolean ``labels``.

    Tied scores form a single vertex (the whole tie group is called
    positive together), so the curve — and its trapezoidal area — is
    invariant under any reordering of the inputs.  With no positives or no
    negatives the curve degenerates and the AUC is NaN.
    """
    score_array, label_array = _validate(scores, labels)
    if score_array.size == 0:
        return RocCurve(
            fpr=(0.0,), tpr=(0.0,), thresholds=(float("inf"),), auc=float("nan")
        )
    thresholds, tps, fps = _tie_grouped_counts(score_array, label_array)
    positives = int(tps[-1])
    negatives = int(fps[-1])
    if positives == 0 or negatives == 0:
        area = float("nan")
        tpr = np.zeros(tps.size) if positives == 0 else tps / positives
        fpr = np.zeros(fps.size) if negatives == 0 else fps / negatives
    else:
        tpr = tps / positives
        fpr = fps / negatives
        full_tpr = np.concatenate([[0.0], tpr])
        full_fpr = np.concatenate([[0.0], fpr])
        # Trapezoidal rule, spelled out (np.trapz was deprecated in numpy 2).
        area = float(
            np.sum(np.diff(full_fpr) * (full_tpr[1:] + full_tpr[:-1]) / 2.0)
        )
    return RocCurve(
        fpr=tuple(np.concatenate([[0.0], fpr]).tolist()),
        tpr=tuple(np.concatenate([[0.0], tpr]).tolist()),
        thresholds=tuple(np.concatenate([[np.inf], thresholds]).tolist()),
        auc=area,
    )


def auc(scores: Sequence[float], labels: Sequence[Any]) -> float:
    """Area under the ROC curve (ties get half credit; NaN if one-class)."""
    return roc_curve(scores, labels).auc


def average_precision(scores: Sequence[float], labels: Sequence[Any]) -> float:
    """Average precision: precision-weighted recall increments.

    ``AP = Σ_k (R_k − R_{k−1}) · P_k`` over the distinct-score groups in
    descending order — the tie-grouped form of the area under the
    precision-recall curve, deterministic under input reordering.  NaN when
    there are no positive labels.
    """
    score_array, label_array = _validate(scores, labels)
    if score_array.size == 0 or not label_array.any():
        return float("nan")
    _, tps, fps = _tie_grouped_counts(score_array, label_array)
    positives = int(tps[-1])
    recall = tps / positives
    precision = tps / (tps + fps)
    previous_recall = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - previous_recall) * precision))


def precision_at_k(scores: Sequence[float], labels: Sequence[Any], k: int) -> float:
    """Fraction of the top-``k`` scored samples that are positive.

    Ties at the k-th position break by input order (stable sort), so the
    result is deterministic for a fixed input ordering.
    """
    score_array, label_array = _validate(scores, labels)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if score_array.size == 0:
        return float("nan")
    top = np.argsort(-score_array, kind="stable")[: min(k, score_array.size)]
    return float(np.mean(label_array[top]))


def precision_recall_f1(
    scores: Sequence[float], labels: Sequence[Any], threshold: float
) -> ThresholdPoint:
    """Precision/recall/F1 of calling every score >= ``threshold`` positive.

    Empty-denominator conventions: precision is NaN when nothing is called
    positive, recall is NaN when there are no positives, and F1 is 0.0
    when precision + recall is 0 (and NaN when either side is NaN).
    """
    score_array, label_array = _validate(scores, labels)
    called = score_array >= threshold
    true_positives = int(np.sum(called & label_array))
    false_positives = int(np.sum(called & ~label_array))
    false_negatives = int(np.sum(~called & label_array))
    precision = (
        true_positives / (true_positives + false_positives)
        if true_positives + false_positives
        else float("nan")
    )
    recall = (
        true_positives / (true_positives + false_negatives)
        if true_positives + false_negatives
        else float("nan")
    )
    if precision != precision or recall != recall:
        f1 = float("nan")
    elif precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return ThresholdPoint(
        threshold=float(threshold),
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )


def threshold_sweep(
    scores: Sequence[float],
    labels: Sequence[Any],
    thresholds: Sequence[float] | None = None,
) -> tuple[ThresholdPoint, ...]:
    """Precision/recall/F1 at each threshold (default: distinct scores)."""
    score_array, label_array = _validate(scores, labels)
    if thresholds is None:
        sweep: Sequence[float] = np.unique(score_array)[::-1].tolist()
    else:
        sweep = [float(value) for value in thresholds]
    return tuple(
        precision_recall_f1(score_array, label_array, threshold)
        for threshold in sweep
    )


def operating_point_auc(
    scores: Sequence[float], labels: Sequence[Any], threshold: float
) -> float:
    """AUC of the *thresholded* classifier: balanced accuracy at one cut.

    The area under the two-segment ROC curve through the single operating
    point ``score >= threshold``, i.e. ``(TPR + (1 − FPR)) / 2``.  Unlike
    the full :func:`auc` this is **not** invariant under monotone rescaling
    — it measures whether the separation is usable at a fixed threshold
    (for reputation schemes: the admission threshold), which is exactly
    where a ranking with a vanishing margin scores no better than chance
    (0.5).  NaN when either class is empty.
    """
    score_array, label_array = _validate(scores, labels)
    positives = int(np.sum(label_array))
    negatives = score_array.size - positives
    if positives == 0 or negatives == 0:
        return float("nan")
    called = score_array >= threshold
    tpr = float(np.sum(called & label_array)) / positives
    fpr = float(np.sum(called & ~label_array)) / negatives
    return (tpr + 1.0 - fpr) / 2.0


def time_to_detection(
    history: Sequence[tuple[float, float]], threshold: float
) -> float | None:
    """First sample time at which a score drops below ``threshold``.

    ``history`` is the ``(time, score)`` sequence of one identity (e.g.
    :attr:`repro.detection.labels.PeerLabel.history`).  Returns ``None``
    when the score never fell below the threshold — the identity was never
    "detected" at this operating point.
    """
    for time, score in history:
        if score < threshold:
            return float(time)
    return None
