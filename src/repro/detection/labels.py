"""Ground-truth adversary labels extracted from finished runs.

The simulation engine knows exactly which identities the configured
:class:`~repro.config.AdversarySpec` injected — sybil waves, whitewash
rebirths, colluders, slanderers — and attaches that ground truth to the
:class:`~repro.metrics.summary.RunSummary` of every adversary run
(``summary.adversary_identities`` and the ``summary.detection`` payload).
:class:`LabelSet` turns the payload into one
``(peer_id, final_score, score_history, is_adversary)`` tuple per labelled
peer, the unit every metric in :mod:`repro.detection.ranking` and
:mod:`repro.detection.calibration` consumes.

Labels are also recoverable from a recorded trace
(:meth:`LabelSet.from_trace`): peers allocated during setup beyond the
founding population were installed by the adversary, and every peer
allocated while an ``adversary`` event was being handled was injected by
it — the trace recorder attributes both.  Traces carry no reputation
scores (state digests are hashes), so trace-derived labels have no score
or history columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..metrics.summary import RunSummary
    from ..trace.log import TraceLog

__all__ = ["PeerLabel", "LabelSet"]

#: Behaviour kinds whose peers serve cooperatively (mirrors
#: ``Behavior.is_cooperative`` for the kinds a trace records).
_COOPERATIVE_KINDS = frozenset({"cooperative"})


@dataclass(frozen=True)
class PeerLabel:
    """One labelled identity: who it was, how it scored, what it was."""

    peer_id: int
    #: Ground truth: was this identity created/controlled by the adversary?
    is_adversary: bool
    #: Ground truth: does this peer serve cooperatively?  (Not the negation
    #: of :attr:`is_adversary`: slanderers serve honestly while lying about
    #: others, churn-storm joiners are cooperative identities the adversary
    #: merely schedules.)  ``None`` when the source cannot tell (trace-
    #: derived labels for setup-time peers).
    cooperative: bool | None
    #: Reputation score at the end of the run (``None`` for trace labels).
    final_score: float | None = None
    #: ``(time, score)`` samples, one per periodic snapshot the peer was an
    #: active member for.  Empty for trace labels.
    history: tuple[tuple[float, float], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "peer_id": self.peer_id,
            "is_adversary": self.is_adversary,
            "cooperative": self.cooperative,
            "final_score": self.final_score,
            "history": [[time, score] for time, score in self.history],
        }


@dataclass(frozen=True)
class LabelSet:
    """Every labelled identity of one finished run."""

    labels: tuple[PeerLabel, ...]
    #: The run's admission threshold (``effective_min_intro_reputation``):
    #: the score below which a member could no longer vouch for anyone —
    #: the operating point time-to-detection is measured against.
    threshold: float
    scheme: str
    #: Where the labels came from: ``"summary"`` or ``"trace"``.
    source: str

    def __len__(self) -> int:
        return len(self.labels)

    # ------------------------------------------------------------------ #
    # Views                                                                #
    # ------------------------------------------------------------------ #
    def cells(
        self,
    ) -> list[tuple[int, float | None, tuple[tuple[float, float], ...], bool]]:
        """``(peer_id, final_score, score_history, is_adversary)`` per peer."""
        return [
            (label.peer_id, label.final_score, label.history, label.is_adversary)
            for label in self.labels
        ]

    def adversary_ids(self) -> list[int]:
        """Ids of every adversary-controlled identity, sorted."""
        return sorted(label.peer_id for label in self.labels if label.is_adversary)

    def scored(self) -> tuple[np.ndarray, np.ndarray]:
        """``(final_scores, is_adversary)`` arrays over peers with a score."""
        scored = [label for label in self.labels if label.final_score is not None]
        scores = np.array([label.final_score for label in scored], dtype=float)
        flags = np.array([label.is_adversary for label in scored], dtype=bool)
        return scores, flags

    def suspicion(self) -> tuple[np.ndarray, np.ndarray]:
        """``(suspicion, is_adversary)``: negated scores, so the ranking
        metrics' higher-score-is-more-positive convention means "a scheme
        detects well when adversaries sit at the *bottom* of the reputation
        ranking"."""
        scores, flags = self.scored()
        return -scores, flags

    def service_probabilities(self) -> tuple[np.ndarray, np.ndarray]:
        """``(probability, outcome)`` pairs for calibration metrics.

        Reads each reputation score as the predicted probability of good
        service (clipped into [0, 1]) against the ground-truth cooperative
        flag.  Peers with no score or unknown behaviour are skipped.
        """
        usable = [
            label
            for label in self.labels
            if label.final_score is not None and label.cooperative is not None
        ]
        probabilities = np.clip(
            np.array([label.final_score for label in usable], dtype=float), 0.0, 1.0
        )
        outcomes = np.array([label.cooperative for label in usable], dtype=bool)
        return probabilities, outcomes

    # ------------------------------------------------------------------ #
    # Construction                                                         #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_summary(cls, summary: "RunSummary") -> "LabelSet":
        """Labels of a finished adversary run, from its summary payload."""
        payload = summary.detection
        if payload is None:
            raise ValueError(
                "summary carries no detection payload — it was produced by a "
                "run without an adversary (params.adversary is None)"
            )
        histories: dict[int, list[tuple[float, float]]] = {}
        for time, ids, values in payload.get("snapshots", []):
            for peer_id, value in zip(ids, values):
                histories.setdefault(int(peer_id), []).append(
                    (float(time), float(value))
                )
        labels = tuple(
            PeerLabel(
                peer_id=int(peer_id),
                is_adversary=bool(is_adversary),
                cooperative=bool(cooperative),
                final_score=float(final_score),
                history=tuple(histories.get(int(peer_id), ())),
            )
            for peer_id, final_score, is_adversary, cooperative in payload["peers"]
        )
        return cls(
            labels=labels,
            threshold=float(payload["threshold"]),
            scheme=str(payload["scheme"]),
            source="summary",
        )

    @classmethod
    def from_trace(cls, log: "TraceLog") -> "LabelSet":
        """Recover identity labels from a recorded trace.

        Adversary identities are those allocated during setup beyond the
        founding population (installing strategies run inside ``setup()``)
        plus every peer allocated while an ``adversary`` event was handled
        (the recorder attributes allocations to the record that caused
        them).  Scores and histories are not recorded in traces, so those
        columns are ``None``/empty here.
        """
        params = log.parameters()
        founders = params.num_initial_peers
        labels: dict[int, PeerLabel] = {}

        def add(peer_id: int, is_adversary: bool, cooperative: bool | None) -> None:
            labels[peer_id] = PeerLabel(
                peer_id=peer_id, is_adversary=is_adversary, cooperative=cooperative
            )

        for record in log.records:
            if record.kind == "setup":
                # The setup record stores allocation counts, not behaviour
                # kinds, so founder cooperativeness is unknown here.
                for peer_id in range(founders):
                    add(peer_id, False, None)
                for peer_id in range(founders, int(record.payload["peers"])):
                    add(peer_id, True, None)
                continue
            injected = record.kind == "adversary"
            for document in record.payload.get("new_peers", ()):
                add(
                    int(document["id"]),
                    injected,
                    document["kind"] in _COOPERATIVE_KINDS,
                )
        ordered = tuple(labels[peer_id] for peer_id in sorted(labels))
        return cls(
            labels=ordered,
            threshold=float(params.effective_min_intro_reputation()),
            scheme=params.reputation_scheme,
            source="trace",
        )

    # ------------------------------------------------------------------ #
    # Serialisation                                                        #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "scheme": self.scheme,
            "source": self.source,
            "labels": [label.to_dict() for label in self.labels],
        }
