"""Detection-quality evaluation: did the scheme actually *find* the bad guys?

The paper's figures report aggregate outcomes (community composition,
success rates); this subsystem asks the classifier question behind them —
how well each reputation scheme ranks known adversary identities below
honest peers, and whether a reputation score is usable as a calibrated
probability of good service.  Three modules:

:mod:`repro.detection.labels`
    Ground-truth labelling: :class:`LabelSet` extracts per-identity
    adversary labels, final scores and score histories from a finished
    run's :class:`~repro.metrics.summary.RunSummary` (the engine records
    which identities the configured ``AdversarySpec`` injected, including
    burned whitewash identities) or recovers the identity labels from a
    recorded trace.
:mod:`repro.detection.ranking`
    Threshold-free ranking metrics, pure numpy: ROC curve + AUC with
    deterministic tie handling, precision/recall/F1 threshold sweeps,
    average precision, precision@k, time-to-detection.
:mod:`repro.detection.calibration`
    Reputation-as-probability metrics: Brier score, expected calibration
    error and reliability diagrams with fixed binning.

The ``detection_eval`` experiment (:mod:`repro.experiments.detection_eval`)
runs these metrics over the scheme × attack grid, and ``python -m repro
report`` folds the results into the consolidated report.
"""

from .calibration import (
    ReliabilityBin,
    ReliabilityDiagram,
    brier_score,
    expected_calibration_error,
    reliability_diagram,
)
from .labels import LabelSet, PeerLabel
from .ranking import (
    RocCurve,
    ThresholdPoint,
    auc,
    average_precision,
    operating_point_auc,
    precision_at_k,
    precision_recall_f1,
    roc_curve,
    threshold_sweep,
    time_to_detection,
)

__all__ = [
    "LabelSet",
    "PeerLabel",
    "RocCurve",
    "ThresholdPoint",
    "roc_curve",
    "auc",
    "average_precision",
    "precision_at_k",
    "precision_recall_f1",
    "operating_point_auc",
    "threshold_sweep",
    "time_to_detection",
    "ReliabilityBin",
    "ReliabilityDiagram",
    "brier_score",
    "expected_calibration_error",
    "reliability_diagram",
]
