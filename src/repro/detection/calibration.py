"""Calibration metrics: reputation as a probability of good service.

Ranking quality and calibration are separate axes — a scheme can order
adversaries perfectly below honest peers while its absolute scores mean
nothing as probabilities (and vice versa), so both must be reported.  The
functions here read each reputation score as the predicted probability
that the peer serves cooperatively and compare against the ground-truth
cooperative flag:

* :func:`brier_score` — mean squared error of the probability forecast;
* :func:`reliability_diagram` — predicted probability vs observed
  cooperative frequency over **fixed** equal-width bins (binning never
  adapts to the data, so two runs bin identically);
* :func:`expected_calibration_error` — bin-weighted mean absolute gap
  between confidence and observed frequency.

Pure numpy, JSON-serialisable dataclasses, no sklearn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "ReliabilityBin",
    "ReliabilityDiagram",
    "brier_score",
    "expected_calibration_error",
    "reliability_diagram",
]


def _validate(
    probabilities: Iterable[float], outcomes: Iterable[Any]
) -> tuple[np.ndarray, np.ndarray]:
    probability_array = np.asarray(list(probabilities), dtype=float)
    outcome_array = np.asarray(list(outcomes), dtype=bool)
    if probability_array.shape != outcome_array.shape:
        raise ValueError(
            "probabilities and outcomes must align: "
            f"{probability_array.shape} vs {outcome_array.shape}"
        )
    if probability_array.size and (
        probability_array.min() < 0.0 or probability_array.max() > 1.0
    ):
        raise ValueError("probabilities must lie within [0, 1]")
    return probability_array, outcome_array


@dataclass(frozen=True)
class ReliabilityBin:
    """One fixed-width bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    #: Mean predicted probability of the samples in the bin (NaN if empty).
    mean_confidence: float
    #: Observed positive (cooperative) frequency in the bin (NaN if empty).
    observed_frequency: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "lower": self.lower,
            "upper": self.upper,
            "count": self.count,
            "mean_confidence": self.mean_confidence,
            "observed_frequency": self.observed_frequency,
        }


@dataclass(frozen=True)
class ReliabilityDiagram:
    """A full reliability diagram plus its headline scores."""

    bins: tuple[ReliabilityBin, ...]
    ece: float
    brier: float
    samples: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "bins": [bin.to_dict() for bin in self.bins],
            "ece": self.ece,
            "brier": self.brier,
            "samples": self.samples,
        }


def brier_score(probabilities: Sequence[float], outcomes: Sequence[Any]) -> float:
    """Mean squared error of the probability forecast (NaN when empty).

    0 is a perfect forecast; 0.25 is what the uninformative constant 0.5
    scores; a forecast can be worse than 1/4 only by being anti-calibrated.
    """
    probability_array, outcome_array = _validate(probabilities, outcomes)
    if probability_array.size == 0:
        return float("nan")
    return float(np.mean((probability_array - outcome_array) ** 2))


def _bin_indices(probability_array: np.ndarray, num_bins: int) -> np.ndarray:
    """Fixed equal-width bin index per sample; 1.0 lands in the last bin."""
    return np.minimum(
        (probability_array * num_bins).astype(np.int64), num_bins - 1
    )


def reliability_diagram(
    probabilities: Sequence[float],
    outcomes: Sequence[Any],
    num_bins: int = 10,
) -> ReliabilityDiagram:
    """Reliability diagram over ``num_bins`` fixed equal-width bins."""
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    probability_array, outcome_array = _validate(probabilities, outcomes)
    indices = _bin_indices(probability_array, num_bins)
    bins = []
    weighted_gap = 0.0
    total = probability_array.size
    for index in range(num_bins):
        members = indices == index
        count = int(np.sum(members))
        if count:
            confidence = float(np.mean(probability_array[members]))
            frequency = float(np.mean(outcome_array[members]))
            weighted_gap += (count / total) * abs(confidence - frequency)
        else:
            confidence = float("nan")
            frequency = float("nan")
        bins.append(
            ReliabilityBin(
                lower=index / num_bins,
                upper=(index + 1) / num_bins,
                count=count,
                mean_confidence=confidence,
                observed_frequency=frequency,
            )
        )
    return ReliabilityDiagram(
        bins=tuple(bins),
        ece=weighted_gap if total else float("nan"),
        brier=brier_score(probability_array, outcome_array),
        samples=int(total),
    )


def expected_calibration_error(
    probabilities: Sequence[float],
    outcomes: Sequence[Any],
    num_bins: int = 10,
) -> float:
    """ECE: bin-weighted |mean confidence − observed frequency| (NaN empty)."""
    return reliability_diagram(probabilities, outcomes, num_bins=num_bins).ece
