"""Simulation parameters (Table 1 of the paper) and validation.

:class:`SimulationParameters` captures every knob the paper's evaluation
turns, with defaults matching Table 1.  A handful of additional knobs that
the paper fixes implicitly (seed, satisfaction noise, ROCQ constants, the
scale-free attachment exponent) are exposed too so the experiments and the
ablation benches can vary them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from enum import Enum
from typing import Any, Mapping

from .errors import ConfigurationError

__all__ = [
    "Topology",
    "BootstrapMode",
    "REPUTATION_SCHEMES",
    "parse_reputation_scheme",
    "ADVERSARY_STRATEGIES",
    "parse_adversary_name",
    "AdversarySpec",
    "SimulationParameters",
    "PAPER_DEFAULTS",
]

#: Canonical names of the pluggable reputation backends.  ``rocq`` is the
#: paper's scheme (the replicated score-manager store); the others are the
#: baseline systems from :mod:`repro.reputation` adapted to run inside the
#: full discrete-event simulation.  The registry in
#: :mod:`repro.reputation.backend` must provide a factory for every name
#: listed here (a test keeps the two in sync).
REPUTATION_SCHEMES = (
    "rocq",
    "eigentrust",
    "beta",
    "tit_for_tat",
    "complaints",
    "positive_only",
)

_SCHEME_ALIASES = {
    "eigen_trust": "eigentrust",
    "tft": "tit_for_tat",
    "positive": "positive_only",
    "complaints_based": "complaints",
}


def parse_reputation_scheme(value: str) -> str:
    """Normalise a scheme name, raising on anything the registry cannot build."""
    text = str(value).strip().lower().replace("-", "_")
    text = _SCHEME_ALIASES.get(text, text)
    if text not in REPUTATION_SCHEMES:
        raise ConfigurationError(
            f"unknown reputation scheme: {value!r}; known: {list(REPUTATION_SCHEMES)}"
        )
    return text


#: Canonical names of the pluggable adversary strategies.  The registry in
#: :mod:`repro.adversary` must provide a factory for every name listed here
#: (a test keeps the two in sync, mirroring :data:`REPUTATION_SCHEMES`).
ADVERSARY_STRATEGIES = (
    "sybil_swarm",
    "collusion_ring",
    "slander",
    "whitewash_waves",
    "churn_storm",
)

_ADVERSARY_ALIASES = {
    "sybil": "sybil_swarm",
    "collusion": "collusion_ring",
    "bad_mouthing": "slander",
    "badmouthing": "slander",
    "whitewash": "whitewash_waves",
    "whitewashing": "whitewash_waves",
    "churn": "churn_storm",
}


def parse_adversary_name(value: str) -> str:
    """Normalise an adversary strategy name, raising on unknown names."""
    text = str(value).strip().lower().replace("-", "_")
    text = _ADVERSARY_ALIASES.get(text, text)
    if text not in ADVERSARY_STRATEGIES:
        raise ConfigurationError(
            f"unknown adversary strategy: {value!r}; "
            f"known: {list(ADVERSARY_STRATEGIES)}"
        )
    return text


@dataclass(frozen=True)
class AdversarySpec:
    """Declarative description of one adversary workload.

    The spec is part of :class:`SimulationParameters` — it is validated at
    construction, serialised into the parameter fingerprint (so cached runs
    of different attacks never collide) and resolved into a concrete
    :class:`~repro.adversary.AdversaryStrategy` by the simulation engine.

    Attributes
    ----------
    name:
        Registry name of the strategy (see :data:`ADVERSARY_STRATEGIES`).
    count:
        How many attacker identities the strategy controls (per wave, where
        the strategy is wave-based).
    start_time:
        Simulated time of the first adversary action event.  Initial attacker
        injection happens at setup regardless; ``start_time`` only governs
        the recurring action schedule.
    interval:
        Time units between consecutive adversary action events.
    options:
        Strategy-specific knobs as a sorted tuple of ``(name, value)`` pairs
        (kept a tuple so the spec stays hashable).  Mappings are accepted at
        construction and canonicalised.  Unknown knob names are rejected when
        the strategy is built.
    """

    name: str = "sybil_swarm"
    count: int = 4
    start_time: float = 0.0
    interval: float = 500.0
    options: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", parse_adversary_name(self.name))
        raw = self.options
        if isinstance(raw, Mapping):
            pairs = raw.items()
        else:
            pairs = tuple(raw)
        try:
            canonical = tuple(
                sorted((str(key), float(value)) for key, value in pairs)
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"adversary option values must be numeric: {exc}"
            ) from exc
        object.__setattr__(self, "options", canonical)
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any field is out of range."""
        if self.count < 1:
            raise ConfigurationError("adversary count must be >= 1")
        if self.start_time < 0:
            raise ConfigurationError("adversary start_time must be >= 0")
        if self.interval <= 0:
            raise ConfigurationError("adversary interval must be > 0")
        seen = set()
        for key, _ in self.options:
            if not key:
                raise ConfigurationError("adversary option names must be non-empty")
            if key in seen:
                raise ConfigurationError(f"duplicate adversary option: {key!r}")
            seen.add(key)

    def option(self, key: str, default: float) -> float:
        """The value of knob ``key``, or ``default`` when unset."""
        for name, value in self.options:
            if name == key:
                return value
        return default

    def with_options(self, **overrides: float) -> "AdversarySpec":
        """Return a copy with the given knobs replaced or added."""
        merged = dict(self.options)
        merged.update({key: float(value) for key, value in overrides.items()})
        return replace(self, options=tuple(sorted(merged.items())))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "count": self.count,
            "start_time": self.start_time,
            "interval": self.interval,
            "options": {key: value for key, value in self.options},
        }

    @classmethod
    def parse(
        cls, value: "AdversarySpec | str | Mapping[str, Any] | None"
    ) -> "AdversarySpec | None":
        """Coerce ``value`` into a validated spec (``None`` stays ``None``).

        Accepts a ready spec, a bare strategy name (all defaults), or a
        mapping as produced by :meth:`to_dict`.  Unknown mapping keys are
        rejected loudly: a knob placed at the top level instead of under
        ``options`` must not silently run a weaker attack.
        """
        if value is None or isinstance(value, AdversarySpec):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            known = {f.name for f in fields(cls)}
            unknown = sorted(set(value) - known)
            if unknown:
                raise ConfigurationError(
                    f"unknown adversary spec field(s) {unknown}; "
                    f"strategy knobs belong under 'options' "
                    f"(accepted fields: {sorted(known)})"
                )
            return cls(**dict(value))
        raise ConfigurationError(
            f"cannot interpret adversary spec from {type(value).__name__}"
        )


class Topology(str, Enum):
    """Interaction topology used to pick the respondent of each transaction."""

    RANDOM = "random"
    SCALE_FREE = "scale_free"

    @classmethod
    def parse(cls, value: "Topology | str") -> "Topology":
        """Accept either an enum member or its (case-insensitive) name/value."""
        if isinstance(value, Topology):
            return value
        text = str(value).strip().lower().replace("-", "_")
        aliases = {
            "random": cls.RANDOM,
            "uniform": cls.RANDOM,
            "scale_free": cls.SCALE_FREE,
            "scalefree": cls.SCALE_FREE,
            "powerlaw": cls.SCALE_FREE,
            "power_law": cls.SCALE_FREE,
        }
        try:
            return aliases[text]
        except KeyError as exc:
            raise ConfigurationError(f"unknown topology: {value!r}") from exc


class BootstrapMode(str, Enum):
    """How new entrants obtain their initial standing in the community.

    ``LENDING`` is the paper's contribution.  ``OPEN`` admits everyone with a
    neutral reputation (the "without introductions" comparison in §4.1).
    ``FIXED_CREDIT`` models BitTorrent/Scrivener-style systems that grant a
    flat initial credit.  ``CLOSED`` admits nobody (a degenerate baseline used
    in tests).
    """

    LENDING = "lending"
    OPEN = "open"
    FIXED_CREDIT = "fixed_credit"
    CLOSED = "closed"

    @classmethod
    def parse(cls, value: "BootstrapMode | str") -> "BootstrapMode":
        if isinstance(value, BootstrapMode):
            return value
        text = str(value).strip().lower().replace("-", "_")
        try:
            return cls(text)
        except ValueError as exc:
            raise ConfigurationError(f"unknown bootstrap mode: {value!r}") from exc


@dataclass(frozen=True)
class SimulationParameters:
    """All parameters of a simulation run.

    The first block mirrors Table 1 of the paper; the second block exposes
    modelling constants the paper keeps fixed; the third block controls the
    reproduction harness itself (seed, scaling, bootstrap policy).

    Attributes
    ----------
    num_initial_peers:
        ``numInit`` — peers present (all cooperative) at time zero.
    num_transactions:
        ``numTrans`` — simulated time units; exactly one resource transaction
        is scheduled per unit.
    num_score_managers:
        ``numSM`` — score-manager replicas per peer.
    arrival_rate:
        ``lambda`` — Poisson rate of new-peer arrivals per time unit.
    fraction_uncooperative:
        ``f_u`` — fraction of arriving peers that are uncooperative.
    fraction_naive:
        ``f_n`` — fraction of cooperative peers that are naive introducers.
    selective_error_rate:
        ``errSel`` — probability that a selective introducer mistakenly
        introduces an uncooperative applicant.
    topology:
        Interaction topology (random or scale-free).
    waiting_period:
        ``T_w`` — time units between an introduction request and its response.
    audit_transactions:
        ``auditTrans`` — transactions a new entrant completes before its score
        managers audit it and settle the stake.
    intro_amount:
        ``introAmt`` — reputation the introducer lends to the new entrant.
    reward_amount:
        ``rewardAmt`` — reward paid to the introducer after a successful audit.
    min_intro_reputation:
        ``minIntroRep`` — minimum reputation required to introduce a peer.
        ``None`` means "use the paper's rule": a margin above ``intro_amount``
        (see :meth:`effective_min_intro_reputation`).
    """

    # ------------------------------------------------------------------ #
    # Table 1 parameters                                                   #
    # ------------------------------------------------------------------ #
    num_initial_peers: int = 500
    num_transactions: int = 500_000
    num_score_managers: int = 6
    arrival_rate: float = 0.01
    fraction_uncooperative: float = 0.25
    fraction_naive: float = 0.3
    selective_error_rate: float = 0.10
    topology: Topology = Topology.SCALE_FREE
    waiting_period: float = 1000.0
    audit_transactions: int = 20
    intro_amount: float = 0.1
    reward_amount: float = 0.02
    min_intro_reputation: float | None = None

    # ------------------------------------------------------------------ #
    # Modelling constants fixed by the paper                               #
    # ------------------------------------------------------------------ #
    #: Reputation every founding member starts with (cooperative peers tend
    #: towards 1 under ROCQ, so the initial community is fully trusted).
    initial_member_reputation: float = 1.0
    #: Audit passes when the entrant's reputation is at least this value.
    audit_pass_threshold: float = 0.5
    #: Probability that a cooperative peer provides satisfactory service.
    cooperative_service_quality: float = 0.95
    #: Probability that an uncooperative peer provides satisfactory service.
    uncooperative_service_quality: float = 0.05
    #: Exponent of the power-law used for scale-free respondent selection.
    scale_free_exponent: float = 1.0
    #: Number of attachment edges per node in the Barabási–Albert graph.
    scale_free_attachment: int = 2
    #: ROCQ: weight given to a brand-new reporter's credibility.
    rocq_initial_credibility: float = 0.5
    #: ROCQ: learning rate for credibility updates.
    rocq_credibility_gain: float = 0.1
    #: ROCQ: exponential smoothing factor for per-source opinions.
    rocq_opinion_smoothing: float = 0.3
    #: Whether ROCQ aggregation weighs reports by reporter credibility.
    rocq_use_credibility: bool = True
    #: Whether ROCQ aggregation weighs reports by opinion quality.
    rocq_use_quality: bool = True

    # ------------------------------------------------------------------ #
    # Harness controls                                                     #
    # ------------------------------------------------------------------ #
    #: Which reputation backend the simulation runs on (see
    #: :data:`REPUTATION_SCHEMES`).  ``rocq`` is the paper's scheme; the
    #: baseline names swap in the systems from :mod:`repro.reputation` so the
    #: comparative claims can be evaluated under the full dynamics.
    reputation_scheme: str = "rocq"
    #: Optional adversary workload driven alongside the honest dynamics (see
    #: :class:`AdversarySpec` and :mod:`repro.adversary`).  ``None`` — the
    #: default — runs the seed engine's exact behaviour: no adversary events
    #: are scheduled and no extra random draws happen.
    adversary: AdversarySpec | None = None
    bootstrap_mode: BootstrapMode = BootstrapMode.LENDING
    #: Initial credit granted under ``BootstrapMode.FIXED_CREDIT``.
    fixed_initial_credit: float = 0.3
    #: Reputation new entrants start with under ``BootstrapMode.OPEN`` (the
    #: "without introductions" comparison admits everyone at a neutral value).
    open_initial_reputation: float = 0.5
    #: Master seed for all random streams.
    seed: int = 1
    #: How often (in time units) reputation time series are sampled.
    sample_interval: float = 5000.0
    #: Independent repetitions averaged by the experiment harness.
    repeats: int = 10

    # ------------------------------------------------------------------ #
    # Construction helpers                                                 #
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        object.__setattr__(self, "topology", Topology.parse(self.topology))
        object.__setattr__(
            self, "bootstrap_mode", BootstrapMode.parse(self.bootstrap_mode)
        )
        object.__setattr__(
            self,
            "reputation_scheme",
            parse_reputation_scheme(self.reputation_scheme),
        )
        object.__setattr__(self, "adversary", AdversarySpec.parse(self.adversary))
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any parameter is out of range."""
        if self.num_initial_peers < 1:
            raise ConfigurationError("num_initial_peers must be >= 1")
        if self.num_transactions < 0:
            raise ConfigurationError("num_transactions must be >= 0")
        if self.num_score_managers < 1:
            raise ConfigurationError("num_score_managers must be >= 1")
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be >= 0")
        for name in (
            "fraction_uncooperative",
            "fraction_naive",
            "selective_error_rate",
            "audit_pass_threshold",
            "cooperative_service_quality",
            "uncooperative_service_quality",
            "rocq_initial_credibility",
            "rocq_credibility_gain",
            "rocq_opinion_smoothing",
            "initial_member_reputation",
            "fixed_initial_credit",
            "open_initial_reputation",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be within [0, 1], got {value}")
        if not 0.0 < self.intro_amount <= 1.0:
            raise ConfigurationError("intro_amount must be within (0, 1]")
        if self.reward_amount < 0.0 or self.reward_amount > 1.0:
            raise ConfigurationError("reward_amount must be within [0, 1]")
        if self.min_intro_reputation is not None and not (
            0.0 <= self.min_intro_reputation <= 1.0
        ):
            raise ConfigurationError("min_intro_reputation must be within [0, 1]")
        if self.waiting_period < 0:
            raise ConfigurationError("waiting_period must be >= 0")
        if self.audit_transactions < 1:
            raise ConfigurationError("audit_transactions must be >= 1")
        if self.scale_free_attachment < 1:
            raise ConfigurationError("scale_free_attachment must be >= 1")
        if self.scale_free_exponent < 0:
            raise ConfigurationError("scale_free_exponent must be >= 0")
        if self.sample_interval <= 0:
            raise ConfigurationError("sample_interval must be > 0")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        if self.effective_min_intro_reputation() < self.intro_amount:
            raise ConfigurationError(
                "min_intro_reputation must be >= intro_amount so lending can "
                "never drive a reputation below zero"
            )

    # ------------------------------------------------------------------ #
    # Derived values                                                       #
    # ------------------------------------------------------------------ #
    def effective_min_intro_reputation(self) -> float:
        """Minimum reputation an introducer must hold before lending.

        Table 1 expresses ``minIntroRep`` as a function of ``introAmt`` (the
        stake plus a safety margin).  When the user does not override it we
        use ``max(intro_amount + 0.05, 2 * intro_amount)`` capped at 1.0,
        which keeps the invariant ``minIntroRep > introAmt`` the paper relies
        on to stop reputations from going negative.
        """
        if self.min_intro_reputation is not None:
            return self.min_intro_reputation
        return min(1.0, max(self.intro_amount + 0.05, 2.0 * self.intro_amount))

    def expected_arrivals(self) -> float:
        """Expected number of new peers over the whole run."""
        return self.arrival_rate * self.num_transactions

    def cooperative_arrival_rate(self) -> float:
        """Poisson rate of cooperative new-peer arrivals (``lambda_c``)."""
        return self.arrival_rate * (1.0 - self.fraction_uncooperative)

    def uncooperative_arrival_rate(self) -> float:
        """Poisson rate of uncooperative new-peer arrivals (``lambda_u``)."""
        return self.arrival_rate * self.fraction_uncooperative

    # ------------------------------------------------------------------ #
    # Convenience API                                                      #
    # ------------------------------------------------------------------ #
    def with_overrides(self, **overrides: Any) -> "SimulationParameters":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides)

    def scaled(self, factor: float) -> "SimulationParameters":
        """Return a copy whose run length is scaled by ``factor``.

        Only the horizon (``num_transactions``), the sampling interval and —
        when an adversary is configured — the adversary's action schedule are
        scaled; rates are left untouched so the *density* of arrivals per time
        unit — and therefore the dynamics — stay the same.  Used by the
        benchmark harness to run paper experiments at laptop scale.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be > 0")
        overrides: dict[str, Any] = {
            "num_transactions": max(1, int(round(self.num_transactions * factor))),
            "sample_interval": max(1.0, self.sample_interval * factor),
        }
        if self.adversary is not None:
            overrides["adversary"] = replace(
                self.adversary,
                start_time=self.adversary.start_time * factor,
                interval=max(1.0, self.adversary.interval * factor),
            )
        return self.with_overrides(**overrides)

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable dictionary of all parameters."""
        data = asdict(self)
        data["topology"] = self.topology.value
        data["bootstrap_mode"] = self.bootstrap_mode.value
        data["adversary"] = (
            self.adversary.to_dict() if self.adversary is not None else None
        )
        return data

    def to_json(self, indent: int = 2) -> str:
        """Serialise the parameters to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationParameters":
        """Build parameters from a mapping, ignoring unknown keys."""
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SimulationParameters":
        """Build parameters from a JSON document produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


#: The exact Table 1 operating point of the paper.
PAPER_DEFAULTS = SimulationParameters()
