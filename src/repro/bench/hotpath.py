"""Hot-path benchmarks: membership changes, assignment lookups, throughput.

The community-growth experiments sweep thousands of admissions, so the cost
of one join/leave — ring rewiring plus reputation-store cache invalidation —
bounds how far any run scales.  This module measures that cost three ways:

* **end-to-end** — full simulation runs of growth-heavy workloads, reported
  as transactions/sec, once on the legacy membership path (O(n) whole-ring
  rewiring + blanket cache invalidation, as the seed engine behaved) and
  once on the incremental path (O(log n) rewiring + targeted invalidation);
* **ring ops** — join/leave microbenchmarks at several ring sizes;
* **assignment lookups** — cold vs cached score-manager resolution and the
  cost of one targeted eviction pass.

Every end-to-end pair also cross-checks determinism: both modes must produce
bit-identical :class:`~repro.metrics.summary.RunSummary` documents (modulo
wall-clock time), which is asserted into the report as ``bit_identical``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..config import SimulationParameters
from ..ids import PeerId
from ..overlay.assignment import ScoreManagerAssignment
from ..overlay.ring import ChordRing
from ..rocq.store import ReputationStore
from ..sim.engine import run_simulation
from ..workloads.scenarios import paper_default

__all__ = [
    "HotpathBenchConfig",
    "legacy_membership_path",
    "bench_end_to_end",
    "bench_ring_ops",
    "bench_assignment_lookup",
    "run_hotpath_benchmarks",
    "write_report",
]

#: The paper's full horizon; workload sizes are expressed against it.
_PAPER_HORIZON = 500_000

#: Growth-heavy end-to-end workloads: (name, arrival_rate).  The first is the
#: paper's Figure 1 operating point; the second raises the arrival rate into
#: the overload regime so membership changes dominate, which is exactly the
#: hot path the incremental refactor targets.
_WORKLOADS: tuple[tuple[str, float], ...] = (
    ("figure1_growth", 0.01),
    ("growth_stress", 0.2),
)


@dataclass(frozen=True)
class HotpathBenchConfig:
    """Knobs of one benchmark invocation."""

    num_transactions: int = 5_000
    seed: int = 1
    ring_sizes: tuple[int, ...] = (1_000, 4_000)
    churn_ops: int = 200
    lookup_ring_size: int = 2_000
    lookups: int = 2_000
    #: Untimed end-to-end runs executed before each timed one (on both
    #: membership paths), so allocator/cache warm-up does not pollute the
    #: before/after comparison.  ``0`` disables warm-up entirely — the CI
    #: smoke configuration, where wall-clock budget beats measurement polish.
    warmup: int = 1

    @classmethod
    def quick(cls) -> "HotpathBenchConfig":
        """A seconds-scale configuration for CI smoke runs (no warm-up)."""
        return cls(
            num_transactions=600,
            ring_sizes=(256,),
            churn_ops=50,
            lookup_ring_size=256,
            lookups=400,
            warmup=0,
        )


# --------------------------------------------------------------------- #
# Legacy membership path                                                  #
# --------------------------------------------------------------------- #
@contextmanager
def legacy_membership_path() -> Iterator[None]:
    """Temporarily restore the seed's O(n) membership-change behaviour.

    Inside the context, every :class:`ChordRing` join/leave rewires the whole
    ring (as the seed's ``_rewire_neighbours`` did) and every
    :class:`ReputationStore` membership notification degrades to the blanket
    ``invalidate_assignments()``.  Used to measure the *before* side of the
    before/after comparison without keeping a second engine around; the
    patches are process-global, so never run simulations concurrently with
    this context active.
    """
    original_join = ChordRing.join
    original_leave = ChordRing.leave
    original_changed = ReputationStore.membership_changed

    def legacy_join(self: ChordRing, peer_id: PeerId):
        node = original_join(self, peer_id)
        self.rewire_all()
        return node

    def legacy_leave(self: ChordRing, peer_id: PeerId):
        node = original_leave(self, peer_id)
        self.rewire_all()
        return node

    def legacy_changed(self: ReputationStore, change: object | None) -> None:
        self.invalidate_assignments()

    ChordRing.join = legacy_join  # type: ignore[method-assign]
    ChordRing.leave = legacy_leave  # type: ignore[method-assign]
    ReputationStore.membership_changed = legacy_changed  # type: ignore[method-assign]
    try:
        yield
    finally:
        ChordRing.join = original_join  # type: ignore[method-assign]
        ChordRing.leave = original_leave  # type: ignore[method-assign]
        ReputationStore.membership_changed = original_changed  # type: ignore[method-assign]


# --------------------------------------------------------------------- #
# End-to-end throughput                                                   #
# --------------------------------------------------------------------- #
def _summary_digest(summary_doc: dict[str, Any]) -> str:
    """Digest of a run-summary document, ignoring wall-clock time."""
    doc = dict(summary_doc)
    doc.pop("elapsed_seconds", None)
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _timed_run(params: SimulationParameters) -> tuple[float, str]:
    """One simulation run: (elapsed seconds, result digest)."""
    started = time.perf_counter()
    summary = run_simulation(params)
    elapsed = time.perf_counter() - started
    return elapsed, _summary_digest(summary.to_dict())


def bench_end_to_end(config: HotpathBenchConfig) -> list[dict[str, Any]]:
    """Run each growth workload on both membership paths; return rows."""
    rows: list[dict[str, Any]] = []
    for name, arrival_rate in _WORKLOADS:
        params = (
            paper_default(seed=config.seed)
            .scaled(config.num_transactions / _PAPER_HORIZON)
            .with_overrides(arrival_rate=arrival_rate)
        )
        with legacy_membership_path():
            for _ in range(config.warmup):
                _timed_run(params)
            before_elapsed, before_digest = _timed_run(params)
        for _ in range(config.warmup):
            _timed_run(params)
        after_elapsed, after_digest = _timed_run(params)
        rows.append(
            {
                "workload": name,
                "num_transactions": params.num_transactions,
                "arrival_rate": arrival_rate,
                "expected_arrivals": params.expected_arrivals(),
                "before": {
                    "elapsed_seconds": round(before_elapsed, 4),
                    "tx_per_sec": round(params.num_transactions / before_elapsed, 1),
                },
                "after": {
                    "elapsed_seconds": round(after_elapsed, 4),
                    "tx_per_sec": round(params.num_transactions / after_elapsed, 1),
                },
                "speedup": round(before_elapsed / after_elapsed, 2),
                "bit_identical": before_digest == after_digest,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Microbenchmarks                                                         #
# --------------------------------------------------------------------- #
def _build_ring(size: int) -> ChordRing:
    ring = ChordRing()
    for peer_id in range(size):
        ring.join(peer_id)
    return ring


def _time_churn_cycle(ring: ChordRing, first_id: PeerId, ops: int) -> float:
    """Mean seconds per membership op over ``ops`` join+leave cycles."""
    started = time.perf_counter()
    for offset in range(ops):
        ring.join(first_id + offset)
        ring.leave(first_id + offset)
    return (time.perf_counter() - started) / (2 * ops)


def bench_ring_ops(config: HotpathBenchConfig) -> list[dict[str, Any]]:
    """Join/leave cost per op at each ring size, legacy vs incremental."""
    rows: list[dict[str, Any]] = []
    for size in config.ring_sizes:
        ring = _build_ring(size)
        with legacy_membership_path():
            before = _time_churn_cycle(ring, size, config.churn_ops)
        after = _time_churn_cycle(ring, size, config.churn_ops)
        rows.append(
            {
                "ring_size": size,
                "ops": 2 * config.churn_ops,
                "before_us_per_op": round(before * 1e6, 2),
                "after_us_per_op": round(after * 1e6, 2),
                "speedup": round(before / after, 2) if after > 0 else None,
            }
        )
    return rows


def bench_assignment_lookup(config: HotpathBenchConfig) -> dict[str, Any]:
    """Cold vs cached manager resolution, and one targeted eviction pass."""
    size = config.lookup_ring_size
    ring = _build_ring(size)
    assignment = ScoreManagerAssignment(ring=ring, num_score_managers=6)
    store = ReputationStore(assignment=assignment)

    subjects = [subject % size for subject in range(config.lookups)]
    started = time.perf_counter()
    for subject in subjects:
        assignment.managers_for(subject)
    cold = (time.perf_counter() - started) / len(subjects)

    for subject in range(size):  # populate the cache completely
        store.managers_for(subject)
    started = time.perf_counter()
    for subject in subjects:
        store.managers_for(subject)
    warm = (time.perf_counter() - started) / len(subjects)

    evicted_before = store.targeted_evictions
    started = time.perf_counter()
    ring.join(size)
    store.membership_changed(ring.last_change)
    eviction_elapsed = time.perf_counter() - started
    return {
        "ring_size": size,
        "num_score_managers": 6,
        "lookups": len(subjects),
        "cold_us_per_lookup": round(cold * 1e6, 2),
        "cached_us_per_lookup": round(warm * 1e6, 2),
        "cache_speedup": round(cold / warm, 1) if warm > 0 else None,
        "targeted_eviction": {
            "cached_subjects": size,
            "evicted_by_one_join": store.targeted_evictions - evicted_before,
            "elapsed_us": round(eviction_elapsed * 1e6, 2),
        },
    }


# --------------------------------------------------------------------- #
# Report assembly                                                         #
# --------------------------------------------------------------------- #
def run_hotpath_benchmarks(config: HotpathBenchConfig) -> dict[str, Any]:
    """Run every benchmark and assemble the report document."""
    end_to_end = bench_end_to_end(config)
    report = {
        "benchmark": "hotpath",
        "description": (
            "Membership-change hot path: incremental overlay rewiring + "
            "targeted assignment invalidation vs the seed's full "
            "rewire/blanket invalidation"
        ),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "num_transactions": config.num_transactions,
            "seed": config.seed,
            "ring_sizes": list(config.ring_sizes),
            "churn_ops": config.churn_ops,
            "lookup_ring_size": config.lookup_ring_size,
            "lookups": config.lookups,
            "warmup": config.warmup,
        },
        "end_to_end": end_to_end,
        "micro": {
            "ring_ops": bench_ring_ops(config),
            "assignment_lookup": bench_assignment_lookup(config),
        },
        "max_end_to_end_speedup": max(row["speedup"] for row in end_to_end),
        "all_bit_identical": all(row["bit_identical"] for row in end_to_end),
    }
    return report


def write_report(report: dict[str, Any], out_path: str | Path) -> Path:
    """Write the report as JSON and return the path."""
    path = Path(out_path)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
