"""Hot-path benchmarks: membership changes, assignment lookups, throughput.

The community-growth experiments sweep thousands of admissions, so the cost
of one join/leave — ring rewiring plus reputation-store cache invalidation —
bounds how far any run scales.  This module measures that cost three ways:

* **end-to-end** — full simulation runs of growth-heavy workloads, reported
  as transactions/sec, once on the legacy membership path (O(n) whole-ring
  rewiring + blanket cache invalidation, as the seed engine behaved) and
  once on the incremental path (O(log n) rewiring + targeted invalidation);
* **ring ops** — join/leave microbenchmarks at several ring sizes;
* **assignment lookups** — cold vs cached score-manager resolution and the
  cost of one targeted eviction pass.

Every end-to-end pair also cross-checks determinism: both modes must produce
bit-identical :class:`~repro.metrics.summary.RunSummary` documents (modulo
wall-clock time), which is asserted into the report as ``bit_identical``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..config import SimulationParameters
from ..ids import PeerId
from ..overlay.assignment import ScoreManagerAssignment
from ..overlay.ring import ChordRing
from ..rocq.store import ReputationStore
from ..sim.engine import run_simulation
from ..workloads.scenarios import paper_default

__all__ = [
    "HotpathBenchConfig",
    "legacy_membership_path",
    "bench_end_to_end",
    "bench_quick_reference",
    "bench_sharding",
    "bench_ring_ops",
    "bench_assignment_lookup",
    "bench_event_queue",
    "bench_eigentrust_refresh",
    "run_hotpath_benchmarks",
    "compare_reports",
    "format_compare_table",
    "write_report",
]

#: The paper's full horizon; workload sizes are expressed against it.
_PAPER_HORIZON = 500_000

#: Growth-heavy end-to-end workloads: (name, arrival_rate).  The first is the
#: paper's Figure 1 operating point; the second raises the arrival rate into
#: the overload regime so membership changes dominate, which is exactly the
#: hot path the incremental refactor targets.
_WORKLOADS: tuple[tuple[str, float], ...] = (
    ("figure1_growth", 0.01),
    ("growth_stress", 0.2),
)


@dataclass(frozen=True)
class HotpathBenchConfig:
    """Knobs of one benchmark invocation."""

    num_transactions: int = 5_000
    seed: int = 1
    ring_sizes: tuple[int, ...] = (1_000, 4_000)
    churn_ops: int = 200
    lookup_ring_size: int = 2_000
    lookups: int = 2_000
    #: Untimed end-to-end runs executed before each timed one (on both
    #: membership paths), so allocator/cache warm-up does not pollute the
    #: before/after comparison.  ``0`` disables warm-up entirely — the CI
    #: smoke configuration, where wall-clock budget beats measurement polish.
    warmup: int = 1
    #: Timed end-to-end runs per side; the *best* (minimum elapsed) one is
    #: reported.  Scheduler noise only ever slows a run down, so best-of-N
    #: on both sides of the before/after pair estimates each path's true
    #: cost; a single sample can easily swing ±30% on a busy host.
    samples: int = 3

    @classmethod
    def quick(cls) -> "HotpathBenchConfig":
        """A seconds-scale configuration for CI smoke runs (no warm-up)."""
        return cls(
            num_transactions=600,
            ring_sizes=(256,),
            churn_ops=50,
            lookup_ring_size=256,
            lookups=400,
            warmup=0,
            samples=1,
        )


# --------------------------------------------------------------------- #
# Legacy membership path                                                  #
# --------------------------------------------------------------------- #
@contextmanager
def legacy_membership_path() -> Iterator[None]:
    """Temporarily restore the seed's O(n) membership-change behaviour.

    Inside the context, every :class:`ChordRing` join/leave rewires the whole
    ring (as the seed's ``_rewire_neighbours`` did) and every
    :class:`ReputationStore` membership notification degrades to the blanket
    ``invalidate_assignments()``.  Used to measure the *before* side of the
    before/after comparison without keeping a second engine around; the
    patches are process-global, so never run simulations concurrently with
    this context active.
    """
    original_join = ChordRing.join
    original_leave = ChordRing.leave
    original_changed = ReputationStore.membership_changed

    def legacy_join(self: ChordRing, peer_id: PeerId):
        node = original_join(self, peer_id)
        self.rewire_all()
        return node

    def legacy_leave(self: ChordRing, peer_id: PeerId):
        node = original_leave(self, peer_id)
        self.rewire_all()
        return node

    def legacy_changed(self: ReputationStore, change: object | None) -> None:
        self.invalidate_assignments()

    ChordRing.join = legacy_join  # type: ignore[method-assign]
    ChordRing.leave = legacy_leave  # type: ignore[method-assign]
    ReputationStore.membership_changed = legacy_changed  # type: ignore[method-assign]
    try:
        yield
    finally:
        ChordRing.join = original_join  # type: ignore[method-assign]
        ChordRing.leave = original_leave  # type: ignore[method-assign]
        ReputationStore.membership_changed = original_changed  # type: ignore[method-assign]


# --------------------------------------------------------------------- #
# End-to-end throughput                                                   #
# --------------------------------------------------------------------- #
def _summary_digest(summary_doc: dict[str, Any]) -> str:
    """Digest of a run-summary document, ignoring execution metadata.

    Wall-clock time and sharding telemetry both describe how a run executed,
    not what it computed — stripping them is what lets the serial, legacy
    and sharded paths assert bit-identity against each other.
    """
    doc = dict(summary_doc)
    doc.pop("elapsed_seconds", None)
    doc.pop("sharding", None)
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _timed_run(params: SimulationParameters) -> tuple[float, str]:
    """One simulation run: (elapsed seconds, result digest)."""
    started = time.perf_counter()
    summary = run_simulation(params)
    elapsed = time.perf_counter() - started
    return elapsed, _summary_digest(summary.to_dict())


def _best_timed_run(params: SimulationParameters, samples: int) -> tuple[float, str]:
    """Best (minimum) elapsed time over ``samples`` runs, plus the digest."""
    best_elapsed = float("inf")
    digest = ""
    for _ in range(max(1, samples)):
        elapsed, digest = _timed_run(params)
        if elapsed < best_elapsed:
            best_elapsed = elapsed
    return best_elapsed, digest


def bench_end_to_end(config: HotpathBenchConfig) -> list[dict[str, Any]]:
    """Run each growth workload on both membership paths; return rows.

    Both sides take the best of ``config.samples`` timed runs (same
    treatment, so the comparison stays fair); see the field's comment for
    why single samples are not trustworthy on shared hosts.
    """
    rows: list[dict[str, Any]] = []
    for name, arrival_rate in _WORKLOADS:
        params = (
            paper_default(seed=config.seed)
            .scaled(config.num_transactions / _PAPER_HORIZON)
            .with_overrides(arrival_rate=arrival_rate)
        )
        with legacy_membership_path():
            for _ in range(config.warmup):
                _timed_run(params)
            before_elapsed, before_digest = _best_timed_run(params, config.samples)
        for _ in range(config.warmup):
            _timed_run(params)
        after_elapsed, after_digest = _best_timed_run(params, config.samples)
        rows.append(
            {
                "workload": name,
                "num_transactions": params.num_transactions,
                "arrival_rate": arrival_rate,
                "expected_arrivals": params.expected_arrivals(),
                "before": {
                    "elapsed_seconds": round(before_elapsed, 4),
                    "tx_per_sec": round(params.num_transactions / before_elapsed, 1),
                },
                "after": {
                    "elapsed_seconds": round(after_elapsed, 4),
                    "tx_per_sec": round(params.num_transactions / after_elapsed, 1),
                },
                "speedup": round(before_elapsed / after_elapsed, 2),
                "bit_identical": before_digest == after_digest,
            }
        )
    return rows


def bench_quick_reference(samples: int = 3) -> list[dict[str, Any]]:
    """Optimised-path throughput at the CI gate's quick sizes.

    Short runs do not amortise per-run set-up costs, so the full-size
    ``end_to_end`` tx/s is not a valid yardstick for a ``--quick`` run.
    The committed baseline embeds these rows so the perf gate can compare
    its quick run against numbers measured at the same scale.

    Quick runs finish in well under a second, where single-sample timings
    swing by double-digit percentages, so each row records two numbers:
    ``tx_per_sec`` — the *minimum* over ``samples`` timed runs, the
    slowest plausible good run, used as the baseline yardstick — and
    ``best_tx_per_sec`` — the maximum, the machine's demonstrated
    capability, used as the current side of the gate.  Scheduler noise
    only ever lowers a sample, so comparing current-best against
    baseline-worst means a gate failure requires a *sustained* slowdown,
    not an unlucky scheduling quantum; a genuine 2x slowdown still lands
    far below the yardstick.
    """
    quick = HotpathBenchConfig.quick()
    rows: list[dict[str, Any]] = []
    for name, arrival_rate in _WORKLOADS:
        params = (
            paper_default(seed=quick.seed)
            .scaled(quick.num_transactions / _PAPER_HORIZON)
            .with_overrides(arrival_rate=arrival_rate)
        )
        _timed_run(params)  # one warm-up run; cheap at quick size
        rates = []
        for _ in range(max(1, samples)):
            elapsed, _ = _timed_run(params)
            rates.append(round(params.num_transactions / elapsed, 1))
        rows.append(
            {
                "workload": name,
                "num_transactions": params.num_transactions,
                "tx_per_sec": min(rates),
                "best_tx_per_sec": max(rates),
                "samples": rates,
            }
        )
    return rows


def bench_sharding(samples: int = 3) -> dict[str, Any]:
    """Sharded-engine and SoA-column throughput at the CI gate's quick size.

    Like ``quick_reference``, these rows are measured at the quick scale in
    *every* report — the committed full-size baseline and the CI ``--quick``
    run alike — so the perf gate always has a same-scale yardstick.  Each
    row records ``tx_per_sec`` (the minimum over ``samples`` runs, the
    baseline side of the gate) and ``best_tx_per_sec`` (the maximum, the
    current side), the quick-reference noise discipline.  Every row also
    asserts bit-identity against the serial digest: a sharded engine that is
    fast but wrong must fail the benchmark, not pass it quietly.

    Row names: ``serial`` (plain engine, SoA columns on — the reference),
    ``shards_k{1,2,4}`` (sharded epoch loop at each arc count) and
    ``object_rows`` (SoA columns disabled via ``legacy_rows_path`` — the
    per-object baseline the columnar layout replaced).
    """
    from ..peers.columns import legacy_rows_path
    from ..sim.sharded import run_sharded_simulation

    quick = HotpathBenchConfig.quick()
    params = (
        paper_default(seed=quick.seed)
        .scaled(quick.num_transactions / _PAPER_HORIZON)
        .with_overrides(arrival_rate=0.2)  # growth_stress operating point
    )
    samples = max(1, samples)

    def row_from(rates: list[float], name: str, **extra: Any) -> dict[str, Any]:
        return {
            "name": name,
            "tx_per_sec": min(rates),
            "best_tx_per_sec": max(rates),
            "samples": rates,
            **extra,
        }

    _timed_run(params)  # one warm-up run; cheap at quick size
    serial_rates: list[float] = []
    serial_digest = ""
    for _ in range(samples):
        elapsed, serial_digest = _timed_run(params)
        serial_rates.append(round(params.num_transactions / elapsed, 1))
    rows = [row_from(serial_rates, "serial", bit_identical=True)]

    for shards in (1, 2, 4):
        rates = []
        digest = ""
        stats: dict[str, Any] = {}
        for _ in range(samples):
            started = time.perf_counter()
            summary = run_sharded_simulation(params, shards=shards)
            elapsed = time.perf_counter() - started
            rates.append(round(params.num_transactions / elapsed, 1))
            digest = _summary_digest(summary.to_dict())
            stats = summary.sharding or {}
        rows.append(
            row_from(
                rates,
                f"shards_k{shards}",
                bit_identical=digest == serial_digest,
                epochs=stats.get("epochs"),
                barriers=stats.get("barriers"),
                cross_arc_messages=stats.get("cross_arc_messages"),
            )
        )

    with legacy_rows_path():
        object_rates = []
        object_digest = ""
        for _ in range(samples):
            elapsed, object_digest = _timed_run(params)
            object_rates.append(round(params.num_transactions / elapsed, 1))
    rows.append(
        row_from(
            object_rates, "object_rows", bit_identical=object_digest == serial_digest
        )
    )
    return {
        "workload": "growth_stress",
        "num_transactions": params.num_transactions,
        "arrival_rate": params.arrival_rate,
        "all_bit_identical": all(row["bit_identical"] for row in rows),
        "rows": rows,
    }


# --------------------------------------------------------------------- #
# Microbenchmarks                                                         #
# --------------------------------------------------------------------- #
def _build_ring(size: int) -> ChordRing:
    ring = ChordRing()
    for peer_id in range(size):
        ring.join(peer_id)
    return ring


def _time_churn_cycle(ring: ChordRing, first_id: PeerId, ops: int) -> float:
    """Mean seconds per membership op over ``ops`` join+leave cycles."""
    started = time.perf_counter()
    for offset in range(ops):
        ring.join(first_id + offset)
        ring.leave(first_id + offset)
    return (time.perf_counter() - started) / (2 * ops)


def bench_ring_ops(config: HotpathBenchConfig) -> list[dict[str, Any]]:
    """Join/leave cost per op at each ring size, legacy vs incremental."""
    rows: list[dict[str, Any]] = []
    for size in config.ring_sizes:
        ring = _build_ring(size)
        with legacy_membership_path():
            before = _time_churn_cycle(ring, size, config.churn_ops)
        after = _time_churn_cycle(ring, size, config.churn_ops)
        rows.append(
            {
                "ring_size": size,
                "ops": 2 * config.churn_ops,
                "before_us_per_op": round(before * 1e6, 2),
                "after_us_per_op": round(after * 1e6, 2),
                "speedup": round(before / after, 2) if after > 0 else None,
            }
        )
    return rows


def bench_assignment_lookup(config: HotpathBenchConfig) -> dict[str, Any]:
    """Cold vs cached manager resolution, and one targeted eviction pass."""
    size = config.lookup_ring_size
    ring = _build_ring(size)
    assignment = ScoreManagerAssignment(ring=ring, num_score_managers=6)
    store = ReputationStore(assignment=assignment)

    subjects = [subject % size for subject in range(config.lookups)]
    started = time.perf_counter()
    for subject in subjects:
        assignment.managers_for(subject)
    cold = (time.perf_counter() - started) / len(subjects)

    for subject in range(size):  # populate the cache completely
        store.managers_for(subject)
    started = time.perf_counter()
    for subject in subjects:
        store.managers_for(subject)
    warm = (time.perf_counter() - started) / len(subjects)

    evicted_before = store.targeted_evictions
    started = time.perf_counter()
    ring.join(size)
    store.membership_changed(ring.last_change)
    eviction_elapsed = time.perf_counter() - started
    return {
        "ring_size": size,
        "num_score_managers": 6,
        "lookups": len(subjects),
        "cold_us_per_lookup": round(cold * 1e6, 2),
        "cached_us_per_lookup": round(warm * 1e6, 2),
        "cache_speedup": round(cold / warm, 1) if warm > 0 else None,
        "targeted_eviction": {
            "cached_subjects": size,
            "evicted_by_one_join": store.targeted_evictions - evicted_before,
            "elapsed_us": round(eviction_elapsed * 1e6, 2),
        },
    }


def bench_event_queue(config: HotpathBenchConfig) -> dict[str, Any]:
    """Push/pop throughput of the calendar queue vs the heapq reference.

    Both queues are driven through the identical schedule/pop_due sequence a
    simulation produces (monotone batched pops over jittered arrival times),
    so the comparison isolates the queue data structure itself.
    """
    from ..sim.event_queue import CalendarEventQueue, EventQueue
    from ..sim.events import EventKind

    ops = max(1_000, config.lookups * 5)

    def drive(queue: Any) -> float:
        started = time.perf_counter()
        time_base = 0.0
        scheduled = 0
        while scheduled < ops:
            # A burst of near-future events, then drain everything due —
            # the dense-arrival pattern growth workloads produce.
            for offset in range(8):
                queue.schedule(
                    time_base + (offset * 0.37) % 3.0, EventKind.SAMPLE
                )
                scheduled += 1
            time_base += 1.0
            for _ in queue.pop_due(time_base):
                pass
        while queue:
            queue.pop()
        return time.perf_counter() - started

    heapq_elapsed = drive(EventQueue())
    calendar_elapsed = drive(CalendarEventQueue())
    return {
        "ops": ops,
        "heapq_us_per_op": round(heapq_elapsed / ops * 1e6, 3),
        "calendar_us_per_op": round(calendar_elapsed / ops * 1e6, 3),
        "speedup": round(heapq_elapsed / calendar_elapsed, 2)
        if calendar_elapsed > 0
        else None,
    }


def bench_eigentrust_refresh(config: HotpathBenchConfig) -> dict[str, Any]:
    """Incremental EigenTrust refresh vs the full-rebuild path.

    Seeds one interaction log, then measures the per-refresh cost of
    ``score_table`` when each refresh only dirties a single rater row —
    once on a system allowed to update incrementally and once on a system
    forced to rebuild the local-trust matrix every call
    (``full_recompute_every=1`` after priming).  Both produce bit-identical
    matrices; only the time differs.
    """
    from ..reputation.eigentrust import EigenTrust

    peers = min(200, max(40, config.lookup_ring_size // 10))
    seed_reports = peers * 4
    refreshes = max(10, config.churn_ops // 2)

    def build(full_recompute_every: int) -> EigenTrust:
        system = EigenTrust(full_recompute_every=full_recompute_every)
        state = 12345
        for index in range(seed_reports):
            state = (state * 1103515245 + 12345) % (1 << 31)
            rater = state % peers
            state = (state * 1103515245 + 12345) % (1 << 31)
            subject = state % peers
            if rater != subject:
                system.record_interaction(rater, subject, index % 3 != 0)
        system.score_table()  # prime the matrix and warm vector
        return system

    def drive(system: EigenTrust) -> float:
        started = time.perf_counter()
        for index in range(refreshes):
            system.record_interaction(index % peers, (index + 1) % peers, True)
            system.score_table()
        return (time.perf_counter() - started) / refreshes

    incremental = drive(build(full_recompute_every=1_000_000))
    full = drive(build(full_recompute_every=1))
    return {
        "peers": peers,
        "seed_reports": seed_reports,
        "refreshes": refreshes,
        "full_rebuild_us_per_refresh": round(full * 1e6, 2),
        "incremental_us_per_refresh": round(incremental * 1e6, 2),
        "speedup": round(full / incremental, 2) if incremental > 0 else None,
    }


# --------------------------------------------------------------------- #
# Report assembly                                                         #
# --------------------------------------------------------------------- #
def run_hotpath_benchmarks(
    config: HotpathBenchConfig, include_profile: bool = True
) -> dict[str, Any]:
    """Run every benchmark and assemble the report document."""
    from .profiling import profile_workload

    end_to_end = bench_end_to_end(config)
    report = {
        "benchmark": "hotpath",
        "description": (
            "Simulation-core hot path: incremental overlay rewiring, "
            "targeted assignment invalidation, batched ROCQ aggregation, "
            "incremental EigenTrust and the slimmed event loop vs the "
            "seed's implementations"
        ),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "num_transactions": config.num_transactions,
            "seed": config.seed,
            "ring_sizes": list(config.ring_sizes),
            "churn_ops": config.churn_ops,
            "lookup_ring_size": config.lookup_ring_size,
            "lookups": config.lookups,
            "warmup": config.warmup,
            "samples": config.samples,
        },
        "end_to_end": end_to_end,
        "quick_reference": bench_quick_reference(samples=config.samples),
        "sharding": bench_sharding(samples=config.samples),
        "micro": {
            "ring_ops": bench_ring_ops(config),
            "assignment_lookup": bench_assignment_lookup(config),
            "event_queue": bench_event_queue(config),
            "eigentrust_refresh": bench_eigentrust_refresh(config),
        },
        "max_end_to_end_speedup": max(row["speedup"] for row in end_to_end),
        "all_bit_identical": all(row["bit_identical"] for row in end_to_end),
    }
    if include_profile:
        report["profile"] = profile_workload(
            num_transactions=config.num_transactions,
            seed=config.seed,
            top=10,
            warmup=config.warmup > 0,
        )
    return report


# --------------------------------------------------------------------- #
# Baseline comparison (the CI perf gate's primitive)                      #
# --------------------------------------------------------------------- #
def compare_reports(
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float = 0.25,
) -> dict[str, Any]:
    """Compare per-workload end-to-end throughput against a baseline report.

    A workload regresses when its current throughput falls more than
    ``tolerance`` (fractional) below the baseline's number *at the same
    scale*: the baseline row's own ``end_to_end`` entry when the transaction
    counts match, else the reports' ``quick_reference`` rows (the committed
    full-size report embeds quick-size measurements precisely so the CI
    gate's ``--quick`` run has a like-for-like yardstick).  On the
    quick-reference path the baseline side is the recorded worst good run
    (``tx_per_sec``) and the current side the best observed run
    (``best_tx_per_sec``), so sub-second timing noise cannot trip the gate
    but a sustained slowdown still does.  When no same-scale number exists
    the delta is reported but never gated — short runs do not amortise
    set-up costs, so cross-scale tx/s comparisons are meaningless.
    Workloads present in only one report are listed but never counted as
    regressions.  Faster-than-baseline results always pass.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be within [0, 1)")
    baseline_rows = {row["workload"]: row for row in baseline.get("end_to_end", [])}
    baseline_quick = {
        row["workload"]: row for row in baseline.get("quick_reference", [])
    }
    current_rows = {row["workload"]: row for row in current.get("end_to_end", [])}
    current_quick = {
        row["workload"]: row for row in current.get("quick_reference", [])
    }
    rows: list[dict[str, Any]] = []
    for workload in sorted(baseline_rows | current_rows):
        base = baseline_rows.get(workload)
        new = current_rows.get(workload)
        if base is None or new is None:
            rows.append(
                {
                    "workload": workload,
                    "baseline_tx_per_sec": base["after"]["tx_per_sec"] if base else None,
                    "current_tx_per_sec": new["after"]["tx_per_sec"] if new else None,
                    "baseline_source": None,
                    "delta": None,
                    "regression": False,
                }
            )
            continue
        new_tx = new["after"]["tx_per_sec"]
        new_scale = new.get("num_transactions")
        quick = baseline_quick.get(workload)
        new_quick = current_quick.get(workload)
        if base.get("num_transactions") == new_scale:
            base_tx, source, gated = base["after"]["tx_per_sec"], "end_to_end", True
        elif (
            quick is not None
            and new_quick is not None
            and quick.get("num_transactions") == new_quick.get("num_transactions")
        ):
            base_tx, source, gated = quick["tx_per_sec"], "quick_reference", True
            new_tx = new_quick.get("best_tx_per_sec", new_quick["tx_per_sec"])
        elif quick is not None and quick.get("num_transactions") == new_scale:
            base_tx, source, gated = quick["tx_per_sec"], "quick_reference", True
        else:
            base_tx, source, gated = (
                base["after"]["tx_per_sec"],
                "scale_mismatch",
                False,
            )
        delta = (new_tx - base_tx) / base_tx if base_tx > 0 else 0.0
        rows.append(
            {
                "workload": workload,
                "baseline_tx_per_sec": base_tx,
                "current_tx_per_sec": new_tx,
                "baseline_source": source,
                "delta": round(delta, 4),
                "regression": gated and new_tx < base_tx * (1.0 - tolerance),
            }
        )
    # Sharding rows gate exactly like quick_reference: both reports measure
    # them at the quick scale, baseline-worst vs current-best; a scale
    # mismatch (a baseline from before the section changed size) is reported
    # but never gated.
    baseline_sharding = baseline.get("sharding") or {}
    current_sharding = current.get("sharding") or {}
    base_rows = {row["name"]: row for row in baseline_sharding.get("rows", [])}
    new_rows = {row["name"]: row for row in current_sharding.get("rows", [])}
    same_scale = baseline_sharding.get("num_transactions") == current_sharding.get(
        "num_transactions"
    )
    for name in sorted(base_rows | new_rows):
        base = base_rows.get(name)
        new = new_rows.get(name)
        if base is None or new is None:
            rows.append(
                {
                    "workload": f"sharding:{name}",
                    "baseline_tx_per_sec": base["tx_per_sec"] if base else None,
                    "current_tx_per_sec": new["tx_per_sec"] if new else None,
                    "baseline_source": None,
                    "delta": None,
                    "regression": False,
                }
            )
            continue
        base_tx = base["tx_per_sec"]
        new_tx = new.get("best_tx_per_sec", new["tx_per_sec"])
        delta = (new_tx - base_tx) / base_tx if base_tx > 0 else 0.0
        rows.append(
            {
                "workload": f"sharding:{name}",
                "baseline_tx_per_sec": base_tx,
                "current_tx_per_sec": new_tx,
                "baseline_source": "sharding" if same_scale else "scale_mismatch",
                "delta": round(delta, 4),
                "regression": same_scale and new_tx < base_tx * (1.0 - tolerance),
            }
        )
    return {
        "tolerance": tolerance,
        "baseline_machine": baseline.get("platform", baseline.get("machine")),
        "current_machine": current.get("platform", current.get("machine")),
        "workloads": rows,
        "regressed": any(row["regression"] for row in rows),
    }


def format_compare_table(comparison: dict[str, Any]) -> str:
    """Render a :func:`compare_reports` result as an aligned text table."""
    lines = [
        f"{'workload':<18} {'baseline':>12} {'current':>12} {'delta':>8}  verdict"
    ]
    for row in comparison["workloads"]:
        base = row["baseline_tx_per_sec"]
        new = row["current_tx_per_sec"]
        delta = row["delta"]
        verdict = "REGRESSION" if row["regression"] else "ok"
        if delta is None:
            verdict = "n/a"
        elif row.get("baseline_source") == "scale_mismatch":
            verdict = "n/a (scale)"
        lines.append(
            f"{row['workload']:<18} "
            f"{base if base is not None else '-':>12} "
            f"{new if new is not None else '-':>12} "
            f"{f'{delta:+.1%}' if delta is not None else '-':>8}  {verdict}"
        )
    lines.append(
        f"tolerance: -{comparison['tolerance']:.0%} -> "
        + ("FAIL" if comparison["regressed"] else "PASS")
    )
    return "\n".join(lines)


def write_report(report: dict[str, Any], out_path: str | Path) -> Path:
    """Write the report as JSON and return the path."""
    path = Path(out_path)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
