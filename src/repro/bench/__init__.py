"""The performance-benchmark subsystem (``python -m repro.bench``).

Measures the membership-change hot path this library's scalability hinges on
— end-to-end transactions/sec on growth-heavy workloads, plus ring-operation
and assignment-lookup microbenchmarks — and writes a machine-readable report
(``BENCH_hotpath.json``) that seeds the repo's performance trajectory: every
future change to the hot path can be compared against these numbers, and CI
runs a tiny smoke configuration on every push.

Each end-to-end workload is run twice: once with the **legacy** membership
path (the seed's O(n) whole-ring rewiring and blanket assignment-cache
invalidation, restored by :func:`~repro.bench.hotpath.legacy_membership_path`)
and once with the current **incremental** path (O(log n) rewiring plus
targeted invalidation).  The report records both timings, the speedup, and —
because performance work must never change results — whether the two modes
produced bit-identical run summaries.
"""

from .hotpath import (
    HotpathBenchConfig,
    bench_assignment_lookup,
    bench_end_to_end,
    bench_quick_reference,
    bench_ring_ops,
    compare_reports,
    format_compare_table,
    legacy_membership_path,
    run_hotpath_benchmarks,
    write_report,
)

__all__ = [
    "HotpathBenchConfig",
    "bench_assignment_lookup",
    "bench_end_to_end",
    "bench_quick_reference",
    "bench_ring_ops",
    "compare_reports",
    "format_compare_table",
    "legacy_membership_path",
    "run_hotpath_benchmarks",
    "write_report",
]
