"""Profile-guided hotspot reporting for the simulation core.

Every performance claim in this repo starts from data: ``python -m repro
bench profile`` runs a growth-heavy workload under :mod:`cProfile`,
aggregates time by subsystem (overlay / rocq / reputation / sim / metrics),
and emits both a JSON document (machine-readable, uploaded by CI) and a text
hotspot table (human-readable).  The subsystem split answers the question the
raw profiler output obscures — *which layer* owns the next optimisation —
while the top-function list pinpoints the exact loop inside it.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from pathlib import Path
from typing import Any

from ..config import SimulationParameters
from ..sim.engine import run_simulation
from ..workloads.scenarios import paper_default

__all__ = [
    "SUBSYSTEMS",
    "profile_workload",
    "profile_params",
    "format_profile_text",
    "write_profile_report",
]

#: Subsystem buckets, matched against the path of each profiled function by
#: the substring ``/repro/<name>/`` (the package layout is the ground
#: truth).  Match order matters for nested packages: ``sim/sharded`` must
#: precede ``sim`` or the sharded engine's frames would be lumped into the
#: core engine bucket and the per-layer shares would lie.
SUBSYSTEMS: tuple[str, ...] = (
    "overlay",
    "rocq",
    "reputation",
    "sim/sharded",
    "sim",
    "metrics",
    "peers",
    "topology",
    "core",
    "parallel",
)

#: The profiled workload: growth_stress, the arrival-heavy operating point
#: whose hot path the optimisation rounds target.
_PAPER_HORIZON = 500_000


def _subsystem_of(filename: str, funcname: str = "") -> str:
    """Map a profiled function's source path (and name) to a subsystem bucket.

    numpy frames get their own bucket: the struct-of-arrays columns route
    batch phases through vectorised kernels, and attributing those to
    ``stdlib/other`` (Python-level numpy wrappers) or hiding them among
    built-ins (the C ufuncs, whose "filename" is ``~``) would understate
    exactly the layer the SoA migration moved work into.
    """
    normalised = filename.replace("\\", "/")
    if "/repro/" not in normalised:
        if "/numpy/" in normalised or "numpy" in funcname:
            return "numpy"
        return "stdlib/other"
    for name in SUBSYSTEMS:
        if f"/repro/{name}/" in normalised:
            return name
    return "repro/other"


def profile_params(
    num_transactions: int = 5_000,
    seed: int = 1,
    arrival_rate: float = 0.2,
) -> SimulationParameters:
    """The growth_stress parameters profiled by :func:`profile_workload`."""
    return (
        paper_default(seed=seed)
        .scaled(num_transactions / _PAPER_HORIZON)
        .with_overrides(arrival_rate=arrival_rate)
    )


def profile_workload(
    num_transactions: int = 5_000,
    seed: int = 1,
    top: int = 20,
    warmup: bool = True,
) -> dict[str, Any]:
    """Profile one growth_stress run; return the hotspot report document.

    The report carries three views of the same run: total wall/profile time,
    per-subsystem aggregation of internal (``tottime``) seconds with their
    share of the total, and the ``top`` functions by internal time.  An
    untimed warm-up run precedes the profiled one by default so allocator
    and bytecode-cache effects do not pollute the numbers.
    """
    params = profile_params(num_transactions=num_transactions, seed=seed)
    if warmup:
        run_simulation(params)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    summary = run_simulation(params)
    profiler.disable()
    elapsed = time.perf_counter() - started

    stats = pstats.Stats(profiler)
    subsystems: dict[str, dict[str, float]] = {}
    functions: list[dict[str, Any]] = []
    total_internal = 0.0
    for (filename, lineno, name), (
        primitive_calls,
        total_calls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        total_internal += tottime
        subsystem = _subsystem_of(filename, name)
        bucket = subsystems.setdefault(subsystem, {"tottime": 0.0, "calls": 0})
        bucket["tottime"] += tottime
        bucket["calls"] += total_calls
        functions.append(
            {
                "function": f"{Path(filename).name}:{lineno}({name})",
                "subsystem": subsystem,
                "calls": total_calls,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    functions.sort(key=lambda row: row["tottime"], reverse=True)
    subsystem_rows = [
        {
            "subsystem": name,
            "tottime": round(data["tottime"], 6),
            "share": round(data["tottime"] / total_internal, 4)
            if total_internal > 0
            else 0.0,
            "calls": int(data["calls"]),
        }
        for name, data in sorted(
            subsystems.items(), key=lambda item: item[1]["tottime"], reverse=True
        )
    ]
    return {
        "benchmark": "profile",
        "workload": "growth_stress",
        "num_transactions": params.num_transactions,
        "arrival_rate": params.arrival_rate,
        "seed": seed,
        "elapsed_seconds": round(elapsed, 4),
        "tx_per_sec": round(params.num_transactions / elapsed, 1)
        if elapsed > 0
        else None,
        "transactions_attempted": summary.transactions_attempted,
        "total_internal_seconds": round(total_internal, 4),
        "subsystems": subsystem_rows,
        "top_functions": functions[:top],
    }


def format_profile_text(report: dict[str, Any]) -> str:
    """Render the hotspot report as an aligned text table."""
    lines = [
        (
            f"profile: {report['workload']} "
            f"({report['num_transactions']:,} transactions, "
            f"seed {report['seed']}) — {report['elapsed_seconds']:.3f}s, "
            f"{report['tx_per_sec']:,.0f} tx/s"
        ),
        "",
        f"{'subsystem':<14} {'seconds':>9} {'share':>7} {'calls':>10}",
    ]
    for row in report["subsystems"]:
        lines.append(
            f"{row['subsystem']:<14} {row['tottime']:>9.4f} "
            f"{row['share']:>6.1%} {row['calls']:>10,}"
        )
    lines.append("")
    lines.append(f"{'top functions by internal time':<50} {'calls':>9} "
                 f"{'tottime':>9} {'cumtime':>9}")
    for row in report["top_functions"]:
        lines.append(
            f"{row['function'][:50]:<50} {row['calls']:>9,} "
            f"{row['tottime']:>9.4f} {row['cumtime']:>9.4f}"
        )
    return "\n".join(lines)


def write_profile_report(report: dict[str, Any], out_path: str | Path) -> Path:
    """Write the profile report as JSON and return the path."""
    path = Path(out_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
