"""Deprecated entry point: ``python -m repro.bench``.

The benchmark CLI moved into the consolidated front door — ``python -m
repro bench`` (see :mod:`repro.cli`), which runs the suite through
:meth:`repro.api.SimulationService.bench`.  This shim forwards every flag
unchanged, so existing automation (CI, ``benchmarks/bench_hotpath.py``)
keeps working with byte-identical stdout; only a deprecation note is added,
on stderr.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    # Imported here, not at module top: the CLI imports the bench package.
    from .. import cli

    argv = list(sys.argv[1:] if argv is None else argv)
    print(
        "note: `python -m repro.bench` is deprecated; use "
        "`python -m repro bench` (same flags)",
        file=sys.stderr,
    )
    return cli.main(["bench", *argv])


if __name__ == "__main__":
    raise SystemExit(main())
