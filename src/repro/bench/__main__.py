"""Command-line entry point: ``python -m repro.bench``.

Runs the hot-path benchmark suite and writes ``BENCH_hotpath.json`` (see
:mod:`repro.bench.hotpath` for what is measured).  ``--quick`` selects a
seconds-scale configuration used by the CI smoke job; the default sizes are
what the committed repo-root report was produced with.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from .hotpath import HotpathBenchConfig, run_hotpath_benchmarks, write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the membership-change hot path and write a "
        "JSON report",
    )
    parser.add_argument(
        "--out",
        default="BENCH_hotpath.json",
        help="where to write the JSON report (default: ./BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=5_000,
        help="horizon of each end-to-end workload run (default: 5000)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes for CI smoke runs (overrides --transactions; "
        "runs with 0 warmup iterations)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="untimed end-to-end runs before each timed one "
        "(default: 1, or 0 with --quick)",
    )
    args = parser.parse_args(argv)
    if args.warmup is not None and args.warmup < 0:
        parser.error("--warmup must be >= 0")

    if args.quick:
        config = HotpathBenchConfig.quick()
    else:
        config = HotpathBenchConfig(
            num_transactions=args.transactions, seed=args.seed
        )
    if args.warmup is not None:
        config = replace(config, warmup=args.warmup)

    print(
        f"benchmarking hot path ({config.num_transactions:,} transactions "
        f"per end-to-end run, ring sizes {list(config.ring_sizes)}) ...",
        file=sys.stderr,
    )
    report = run_hotpath_benchmarks(config)
    path = write_report(report, args.out)

    for row in report["end_to_end"]:
        print(
            f"{row['workload']:16s} {row['before']['tx_per_sec']:>10,.0f} -> "
            f"{row['after']['tx_per_sec']:>10,.0f} tx/s "
            f"({row['speedup']:.2f}x, bit_identical={row['bit_identical']})"
        )
    for row in report["micro"]["ring_ops"]:
        print(
            f"ring n={row['ring_size']:<6d} {row['before_us_per_op']:>8.1f} -> "
            f"{row['after_us_per_op']:>6.1f} us/op ({row['speedup']:.0f}x)"
        )
    lookup = report["micro"]["assignment_lookup"]
    print(
        f"assignment lookup: cold {lookup['cold_us_per_lookup']:.1f} us, "
        f"cached {lookup['cached_us_per_lookup']:.1f} us "
        f"({lookup['cache_speedup']:.0f}x); one join evicted "
        f"{lookup['targeted_eviction']['evicted_by_one_join']} of "
        f"{lookup['targeted_eviction']['cached_subjects']} cached subjects"
    )
    print(f"report written to {path}")
    if not report["all_bit_identical"]:
        print("ERROR: legacy and incremental paths diverged!", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
