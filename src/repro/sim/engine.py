"""The simulation orchestrator.

:class:`Simulation` wires every subsystem together — population, topology,
overlay ring, reputation backend, lending manager, admission controller,
metrics — and advances simulated time one transaction per unit, processing
arrivals, delayed admission responses and periodic samples through a
discrete-event queue exactly as the paper's simulator does.

The reputation system is pluggable: ``params.reputation_scheme`` selects a
backend from the registry in :mod:`repro.reputation.backend` (the paper's
ROCQ store by default; EigenTrust, beta, tit-for-tat, complaints-based and
positive-only reputation as comparison baselines), and the engine only ever
talks to it through the :class:`~repro.reputation.backend.ReputationBackend`
protocol.

Typical use::

    from repro import SimulationParameters, run_simulation

    params = SimulationParameters(num_transactions=50_000)
    summary = run_simulation(params, seed=7)
    print(summary.final_cooperative, summary.final_uncooperative)
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..adversary import make_adversary
from ..config import SimulationParameters
from ..core.admission import AdmissionController, AdmissionRequest
from ..core.lending import LendingManager
from ..errors import SimulationError
from ..ids import PeerId
from ..metrics.collector import MetricsCollector
from ..metrics.summary import RunSummary
from ..overlay.assignment import ScoreManagerAssignment
from ..overlay.ring import ChordRing
from ..peers.peer import Peer, PeerStatus
from ..peers.population import Population
from ..reputation.backend import make_reputation_backend, notify_membership_change
from ..rng import RandomStreams
from ..topology.factory import make_topology
from .arrivals import ArrivalFactory, PoissonArrivalProcess
from .clock import SimulationClock
from .event_queue import CalendarEventQueue
from .events import Event, EventKind
from .transactions import TransactionEngine

if TYPE_CHECKING:
    from ..storage import BackendPersistence

__all__ = ["Simulation", "run_simulation"]


@dataclass
class _ArrivalPayload:
    """Payload of an ARRIVAL event (empty: the peer is created on arrival)."""


class Simulation:
    """One complete simulation run of the reputation-lending community."""

    def __init__(
        self,
        params: SimulationParameters,
        seed: int | None = None,
        persistence: "BackendPersistence | None" = None,
    ) -> None:
        self.params = params
        self.seed = params.seed if seed is None else seed
        self.streams = RandomStreams(self.seed)
        self.clock = SimulationClock()
        self.population = Population()
        self.topology = make_topology(params, self.streams.stream("topology"))
        self.ring = ChordRing()
        self.assignment = ScoreManagerAssignment(
            ring=self.ring, num_score_managers=params.num_score_managers
        )
        self.store = make_reputation_backend(params, assignment=self.assignment)
        # Optional durable persistence (repro.storage): restore the backend
        # from its checkpoint now — before setup() seeds founders — so a
        # resumed run starts from exactly the state the last run saved, and
        # checkpoint it again in _finalize().
        self.persistence = persistence
        if persistence is not None and persistence.resume:
            persistence.restore(self.store)
        self.lending = LendingManager(store=self.store, params=params)
        self.admission = AdmissionController(
            params=params,
            topology=self.topology,
            store=self.store,
            lending=self.lending,
            rng=self.streams.stream("admission"),
        )
        self.metrics = MetricsCollector()
        self.arrivals = PoissonArrivalProcess(
            rate=params.arrival_rate, rng=self.streams.stream("arrivals")
        )
        self.factory = ArrivalFactory(
            params=params,
            population=self.population,
            rng=self.streams.stream("behaviour"),
        )
        self.transactions = TransactionEngine(
            params=params,
            population=self.population,
            topology=self.topology,
            store=self.store,
            lending=self.lending,
            metrics=self.metrics,
            rng=self.streams.stream("transactions"),
        )
        self.events = CalendarEventQueue()
        self._introducer_rng = self.streams.stream("introducer_choice")
        # The adversary workload, if any.  With ``params.adversary is None``
        # (the default) nothing is built, no events are scheduled and no
        # extra random streams exist — the seed engine's exact behaviour.
        self.adversary = (
            make_adversary(params.adversary) if params.adversary is not None else None
        )
        # Adversary runs keep the per-peer scores every periodic sample
        # already reads, so the detection subsystem (repro.detection) can
        # label score histories against ground truth.  Plain runs leave the
        # flag off and stay byte-identical to the seed engine.
        self.metrics.capture_scores = self.adversary is not None
        self._initialized = False
        self._finished = False
        # Observers of the event dispatch (see :meth:`attach_tracer`).  The
        # hot path stays branch-free apart from one truthiness check when the
        # list is empty — untraced runs behave exactly as before.
        self._tracers: list = []

    # ------------------------------------------------------------------ #
    # Tracing                                                              #
    # ------------------------------------------------------------------ #
    def attach_tracer(self, tracer) -> None:
        """Attach an observer of the engine's event dispatch.

        A tracer is any object implementing (all optional, duck-typed):

        * ``on_setup(sim)`` — called once at the end of :meth:`setup`, after
          founders, initial events and the adversary are installed;
        * ``on_event(sim, event)`` — called after each dispatched
          :class:`~repro.sim.events.Event` has been fully handled;
        * ``on_transaction(sim, now, outcome)`` — called after the
          transaction slot of each time unit (``outcome`` is the
          :class:`~repro.sim.transactions.TransactionOutcome`, or ``None``
          when no transaction could take place);
        * ``on_finalize(sim)`` — called at the end of the run, after the
          final metrics sample.

        Tracers are notified in attachment order.  This is the hook the
        trace recorder (:mod:`repro.trace`) builds on; tests use it for
        fault injection.
        """
        self._tracers.append(tracer)

    # ------------------------------------------------------------------ #
    # Setup                                                                #
    # ------------------------------------------------------------------ #
    def setup(self) -> None:
        """Create the founding community and schedule the initial events."""
        if self._initialized:
            return
        founders = [
            self.factory.create_founder()
            for _ in range(self.params.num_initial_peers)
        ]
        for founder in founders:
            self._join_community(founder, time=0.0, introducer=None)
        # Reputations are installed only after the whole founding ring exists,
        # so every founder's score managers are their final assignment.
        for founder in founders:
            self.store.set_reputation(
                founder.peer_id, self.params.initial_member_reputation, 0.0
            )
        self.metrics.sample(0.0, self.population, self.store)
        first_arrival = self.arrivals.next_arrival_after(0.0)
        if first_arrival <= self.params.num_transactions:
            self.events.schedule(first_arrival, EventKind.ARRIVAL)
        if self.params.sample_interval <= self.params.num_transactions:
            self.events.schedule(self.params.sample_interval, EventKind.SAMPLE)
        self._initialized = True
        if self.adversary is not None:
            # Installed last, so an installing strategy sees exactly the state
            # a hand-rolled scenario would after ``setup()`` returned.
            self.adversary.install(self, 0.0)
            first_action = self.params.adversary.start_time
            if first_action <= self.params.num_transactions:
                self.events.schedule(first_action, EventKind.ADVERSARY)
        for tracer in self._tracers:
            tracer.on_setup(self)

    # ------------------------------------------------------------------ #
    # Main loop                                                            #
    # ------------------------------------------------------------------ #
    def run(self) -> RunSummary:
        """Run the configured number of transactions and return the summary."""
        if self._finished:
            raise SimulationError("this Simulation has already been run")
        self.setup()
        started = _time.perf_counter()
        horizon = self.params.num_transactions
        for step in range(1, horizon + 1):
            self._advance_to(float(step))
        self._finalize()
        elapsed = _time.perf_counter() - started
        self._finished = True
        return self._summary(elapsed)

    def step(self, transactions: int = 1) -> None:
        """Advance the simulation by ``transactions`` time units (for tests)."""
        self.setup()
        for _ in range(transactions):
            self._advance_to(self.clock.now + 1.0)

    def _advance_to(self, now: float) -> None:
        """Advance to time ``now``: process due events, then the transaction.

        The single main-loop body shared by :meth:`run` and :meth:`step`, so
        the two cannot drift apart.
        """
        clock = self.clock
        if now >= clock.now:
            # Inlined ``SimulationClock.advance_to`` (forward moves only —
            # the monotonicity guard lives in the rare else branch).
            clock.now = now
        else:
            clock.advance_to(now)
        events = self.events
        if not self._tracers:
            # Inline pop loop: most time steps have no due event, and the
            # generator `pop_due` would allocate a frame per step anyway.
            # The outcome object is skipped outright — nothing reads it.
            while events.next_time() <= now:
                self._handle_event(events.pop())
            self.transactions.execute(now, build_outcome=False)
            return
        for event in self.events.pop_due(now):
            self._handle_event(event)
            for tracer in self._tracers:
                tracer.on_event(self, event)
        outcome = self.transactions.execute(now)
        for tracer in self._tracers:
            tracer.on_transaction(self, now, outcome)

    def _finalize(self) -> None:
        """End-of-run bookkeeping: take the final metrics sample.

        Outstanding lending contracts are deliberately left unsettled — the
        paper audits an entrant only after it completed ``auditTrans``
        transactions, so forcing an early audit at the end of the run would
        unfairly fail cooperative entrants that simply have not had enough
        opportunities to interact yet.
        """
        last_sample = (
            self.metrics.cooperative_count.times[-1]
            if self.metrics.cooperative_count
            else -1.0
        )
        if self.clock.now > last_sample:
            self.metrics.sample(self.clock.now, self.population, self.store)
        for tracer in self._tracers:
            tracer.on_finalize(self)
        if self.persistence is not None:
            self.persistence.checkpoint(self.store, time=self.clock.now)

    # ------------------------------------------------------------------ #
    # Event handling                                                       #
    # ------------------------------------------------------------------ #
    def _handle_event(self, event: Event) -> None:
        if event.kind == EventKind.ARRIVAL:
            self._handle_arrival(event.time)
        elif event.kind == EventKind.ADMISSION_RESPONSE:
            self._handle_admission_response(event.payload, event.time)
        elif event.kind == EventKind.SAMPLE:
            self._handle_sample(event.time)
        elif event.kind == EventKind.DEPARTURE:
            self._handle_departure(event.payload, event.time)
        elif event.kind == EventKind.ADVERSARY:
            self._handle_adversary_action(event.time)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled event kind: {event.kind}")

    def _handle_arrival(self, time: float) -> None:
        """A new peer arrives, picks an introducer, and requests admission."""
        peer = self.factory.create_arrival(time)
        self._request_admission(peer, time)
        next_arrival = self.arrivals.next_arrival_after(time)
        if next_arrival <= self.params.num_transactions:
            self.events.schedule(next_arrival, EventKind.ARRIVAL)

    def _request_admission(self, peer: Peer, time: float) -> None:
        """Send ``peer`` through the admission pipeline (shared arrival body)."""
        self.metrics.record_arrival(peer)
        introducer = self._choose_introducer(peer)
        request = self.admission.request_admission(peer, introducer, time)
        if request.respond_at <= time:
            self._handle_admission_response(request, time)
        else:
            self.events.schedule(
                request.respond_at, EventKind.ADMISSION_RESPONSE, payload=request
            )

    def _choose_introducer(self, applicant: Peer) -> Peer | None:
        """Pick the member the applicant asks, according to the topology."""
        introducer_id = self.topology.sample_introducer(
            self._introducer_rng, applicant.peer_id
        )
        if introducer_id is None:
            return None
        return self.population.get(introducer_id)

    def _handle_admission_response(self, request: AdmissionRequest, time: float) -> None:
        """The waiting period elapsed: apply the admission decision."""
        result = self.admission.resolve(request, time)
        peer = self.population.get(result.applicant)
        if result.admitted:
            self._join_community(peer, time, introducer=result.introducer)
            self.admission.grant_initial_standing(peer.peer_id, time)
            self.metrics.record_admission(peer)
        else:
            self.population.reject(peer.peer_id)
            if result.refusal_reason is not None:
                self.metrics.record_refusal(result.refusal_reason, peer)

    def _handle_sample(self, time: float) -> None:
        """Periodic metrics snapshot."""
        self.metrics.sample(time, self.population, self.store)
        next_sample = time + self.params.sample_interval
        if next_sample <= self.params.num_transactions:
            self.events.schedule(next_sample, EventKind.SAMPLE)

    def _handle_adversary_action(self, time: float) -> None:
        """One tick of the configured adversary's deterministic schedule."""
        assert self.adversary is not None  # only scheduled when configured
        self.adversary.act(self, time)
        next_action = time + self.params.adversary.interval
        if next_action <= self.params.num_transactions:
            self.events.schedule(next_action, EventKind.ADVERSARY)

    def _handle_departure(self, peer_id: PeerId, time: float) -> None:
        """A member leaves the community (whitewashing / churn scenarios)."""
        peer = self.population.get(peer_id)
        if not peer.is_active:
            return
        self.population.depart(peer_id)
        self.topology.remove_member(peer_id)
        if peer_id in self.ring:
            self.ring.leave(peer_id)
            notify_membership_change(self.store, self.ring.last_change)

    # ------------------------------------------------------------------ #
    # Membership side effects                                              #
    # ------------------------------------------------------------------ #
    def _join_community(
        self, peer: Peer, time: float, introducer: PeerId | None
    ) -> None:
        """Make ``peer`` an active member: population, overlay and topology."""
        self.population.admit(peer.peer_id, time, introduced_by=introducer)
        self.ring.join(peer.peer_id)
        if self.ring.last_change is not None:
            notify_membership_change(self.store, self.ring.last_change)
        self.topology.add_member(peer.peer_id)

    def schedule_departure(self, peer_id: PeerId, time: float) -> None:
        """Schedule a member's departure (public hook for churn scenarios)."""
        self.events.schedule(time, EventKind.DEPARTURE, payload=peer_id)

    def add_member(
        self,
        behavior,
        introducer_policy=None,
        initial_reputation: float | None = None,
        time: float | None = None,
    ) -> Peer:
        """Inject a custom member directly into the community.

        A scenario-building hook (collusion rings, whitewashing studies,
        hand-crafted populations): the peer bypasses the admission pipeline,
        joins the overlay and topology immediately, and optionally starts with
        an explicit reputation.  Returns the created :class:`Peer`.
        """
        self.setup()
        now = self.clock.now if time is None else time
        peer = self.population.create_peer(
            behavior=behavior,
            introducer_policy=introducer_policy,
            is_founder=False,
            arrived_at=now,
        )
        self._join_community(peer, now, introducer=None)
        if initial_reputation is not None:
            self.store.set_reputation(peer.peer_id, initial_reputation, now)
        return peer

    def inject_arrival(
        self,
        behavior,
        introducer_policy=None,
        time: float | None = None,
    ) -> Peer:
        """Inject a peer that must pass through the **real admission pipeline**.

        The counterpart of :meth:`add_member` for strangers: the peer is
        created in WAITING status, picks an introducer from the topology and
        requests admission exactly like a Poisson arrival — so the configured
        bootstrap mode (lending, open, fixed credit, closed) decides whether
        and with what standing it gets in.  Used by adversary strategies
        whose identities attack the front door (sybil swarms, reborn
        whitewashers).  Returns the created :class:`Peer`.
        """
        self.setup()
        now = self.clock.now if time is None else time
        peer = self.population.create_peer(
            behavior=behavior,
            introducer_policy=introducer_policy,
            is_founder=False,
            arrived_at=now,
        )
        self._request_admission(peer, now)
        return peer

    # ------------------------------------------------------------------ #
    # Results                                                              #
    # ------------------------------------------------------------------ #
    def _summary(self, elapsed_seconds: float) -> RunSummary:
        summary = RunSummary.from_run(
            params=self.params,
            seed=self.seed,
            collector=self.metrics,
            lending_stats=self.lending.stats,
            final_cooperative=self.population.count_active(cooperative=True),
            final_uncooperative=self.population.count_active(cooperative=False),
            final_waiting=len(self.population.waiting_peers()),
            final_rejected=len(self.population.peers_with_status(PeerStatus.REJECTED)),
            elapsed_seconds=elapsed_seconds,
        )
        if self.adversary is not None:
            summary.adversary_identities = sorted(
                {int(peer_id) for peer_id in self.adversary.attacker_ids}
            )
            summary.detection = self._detection_payload(summary.adversary_identities)
        return summary

    def _detection_payload(self, adversary_identities: list[int]) -> dict:
        """Ground-truth labelling data for :mod:`repro.detection`.

        One row per identity the run ever allocated — including WAITING and
        REJECTED peers: a whitewash rebirth refused at the door *is* a
        detected adversary, and dropping it would bias every detection
        metric toward the identities that got in — plus the raw score
        snapshots the metrics collector captured at every periodic sample.
        Runs *after* the final state digest and persistence checkpoint, so
        the extra backend reads cannot perturb trace bisection or
        checkpointed state.
        """
        adversary_ids = set(adversary_identities)
        reputation_of = self.store.global_reputation
        peers = [
            [
                int(peer.peer_id),
                float(reputation_of(peer.peer_id)),
                1 if peer.peer_id in adversary_ids else 0,
                1 if peer.is_cooperative else 0,
            ]
            for peer in sorted(self.population, key=lambda p: p.peer_id)
        ]
        return {
            "threshold": float(self.params.effective_min_intro_reputation()),
            "scheme": self.params.reputation_scheme,
            "peers": peers,
            "snapshots": [
                [time, list(ids), list(values)]
                for time, ids, values in self.metrics.score_snapshots
            ],
        }


def run_simulation(
    params: SimulationParameters,
    seed: int | None = None,
    persistence: "BackendPersistence | None" = None,
) -> RunSummary:
    """Convenience wrapper: build, run and summarise one simulation."""
    return Simulation(params, seed=seed, persistence=persistence).run()
