"""The simulation clock."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

__all__ = ["SimulationClock"]


@dataclass
class SimulationClock:
    """Monotonically advancing simulation time.

    The paper measures time in abstract "simulation time units"; exactly one
    resource transaction occurs per unit.  The clock enforces monotonicity so
    a mis-ordered event cannot silently rewind the simulation.
    """

    now: float = 0.0

    def advance_to(self, time: float) -> float:
        """Move the clock forward to ``time`` (backwards moves raise)."""
        if time < self.now:
            raise SimulationError(
                f"clock cannot move backwards (now={self.now:g}, asked={time:g})"
            )
        self.now = time
        return self.now

    def tick(self, delta: float = 1.0) -> float:
        """Advance by ``delta`` time units (must be non-negative)."""
        if delta < 0:
            raise SimulationError(f"tick delta must be non-negative, got {delta}")
        self.now += delta
        return self.now
