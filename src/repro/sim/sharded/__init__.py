"""Sharded simulation engine: contiguous ring arcs, epoch-barrier exchange.

See :mod:`repro.sim.sharded.engine` for the execution model and the
bit-identity argument, :mod:`repro.sim.sharded.plan` for the worker-side
planning payloads, and :class:`repro.overlay.arcs.ArcPartition` for the key
circle partition itself.
"""

from .engine import (
    DEFAULT_EPOCH_LENGTH,
    ShardedSimulation,
    ShardingStats,
    run_sharded_simulation,
)
from .plan import ShardPlan, merge_outbound, plan_epoch_shard

__all__ = [
    "DEFAULT_EPOCH_LENGTH",
    "ShardedSimulation",
    "ShardingStats",
    "run_sharded_simulation",
    "ShardPlan",
    "plan_epoch_shard",
    "merge_outbound",
]
