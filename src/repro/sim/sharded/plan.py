"""Per-shard epoch planning and the deterministic barrier merge.

Each epoch, the coordinator routes the already-scheduled events of the
window to their arcs (by the subject peer's overlay key) and hands every
arc's slice to a worker.  Workers classify their slice and compute its
*cross-arc manifest*: for each membership event — an admission response or a
departure — the destination arcs of the subject's score-manager replica
keys, i.e. every arc whose reputation state the event will touch.  Replica
keys are pure hashes, so workers need no ring state and the payloads stay
tiny and picklable for the process backend.

The merge at the epoch barrier orders all cross-arc messages by
``(time, sequence, destination arc)`` — the same total order the serial
engine dispatches the originating events in — so the merged exchange stream
never depends on worker completion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...ids import replica_key
from ...overlay.arcs import ArcPartition

__all__ = ["PlannedEvent", "ShardPlan", "plan_epoch_shard", "merge_outbound"]

#: One event as shipped to a shard worker: ``(time, sequence, kind value,
#: subject peer id)``.  The subject is ``-1`` for events with no subject peer
#: (arrivals draw their peer only on execution; samples and adversary ticks
#: are global), which the coordinator routes to arc 0.
PlannedEvent = tuple[float, int, str, int]

#: One cross-arc message: ``(time, sequence, destination arc)``.
OutboundMessage = tuple[float, int, int]


@dataclass(frozen=True)
class ShardPlan:
    """What one arc's worker learned about its slice of an epoch."""

    #: The arc this plan covers.
    shard: int
    #: Total events routed to this arc in the window.
    events: int
    #: Arrivals in the slice (subject peer unknown until the factory draws it).
    arrivals: int
    #: Admission responses + departures — the events that move reputation
    #: records between score managers.
    membership_events: int
    #: Cross-arc messages this arc's events will emit, each a
    #: ``(time, sequence, destination arc)`` triple.
    outbound: tuple[OutboundMessage, ...]


def plan_epoch_shard(
    shard: int,
    shards: int,
    num_score_managers: int,
    events: Sequence[PlannedEvent],
) -> ShardPlan:
    """Classify one arc's event slice and build its cross-arc manifest.

    Module-level (not a method) so the process backend can pickle a
    reference to it for worker processes — the same constraint
    :func:`repro.parallel.executor.execute_spec` lives under.
    """
    partition = ArcPartition(shards)
    arc_of_key = partition.arc_of_key
    arrivals = 0
    membership = 0
    outbound: list[OutboundMessage] = []
    for time, sequence, kind, subject in events:
        if subject < 0:
            if kind == "arrival":
                arrivals += 1
            continue
        membership += 1
        for index in range(num_score_managers):
            destination = arc_of_key(replica_key(subject, index))
            if destination != shard:
                outbound.append((time, sequence, destination))
    return ShardPlan(
        shard=shard,
        events=len(events),
        arrivals=arrivals,
        membership_events=membership,
        outbound=tuple(outbound),
    )


def merge_outbound(plans: Sequence[ShardPlan]) -> list[OutboundMessage]:
    """Merge every shard's cross-arc messages into the canonical order.

    The sort key ``(time, sequence, destination arc)`` reproduces the serial
    engine's dispatch order of the originating events, extended with a fixed
    tie-break over destinations — so two runs with different worker timing
    (or different backends) always produce the identical exchange stream.
    """
    merged: list[OutboundMessage] = []
    for plan in plans:
        merged.extend(plan.outbound)
    merged.sort()
    return merged
