"""Sharded simulation driver: arc-partitioned epochs, deterministic barriers.

The driver wraps an ordinary :class:`~repro.sim.engine.Simulation` and runs
it as a bulk-synchronous loop over fixed-length *epochs*:

1. **Plan (fan-out)** — the events already scheduled inside the epoch window
   are routed to the :class:`~repro.overlay.arcs.ArcPartition` arc owning
   their subject peer's overlay key, and each arc's slice goes to its own
   worker (any :mod:`repro.parallel.executor` backend).  Workers classify
   their stream and emit the cross-arc manifest of every membership event.
2. **Exchange barrier** — the per-arc manifests are merged into the canonical
   ``(time, sequence)`` order, independent of worker completion order.
3. **Commit barrier** — the coordinator executes the epoch's merged stream
   serially, events interleaved with each step's transaction slot, in exactly
   the serial engine's order.

Because every state mutation is applied at the commit barrier in canonical
order, the merged event order — and therefore every RNG draw and every
digest — is **bit-identical to the serial engine** for any shard count,
epoch length and executor backend.  What sharding buys is the fan-out of the
read-only routing/classification phase; what it costs is the per-epoch
snapshot and barrier overhead.  On a single core the plan phase is pure
overhead, so ``--shards`` helps only when workers have real parallelism
(process/thread backends on multi-core hosts) or when per-event routing work
grows (large ``num_score_managers``, heavy churn).

Events spawned *inside* an epoch (an arrival scheduling the next arrival, an
admission response landing later in the window) are executed by the commit
phase as usual; they simply were not visible to that epoch's plan and are
picked up by a later epoch's snapshot if they fall beyond the window.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from ...config import SimulationParameters
from ...errors import SimulationError
from ...metrics.summary import RunSummary
from ...overlay.arcs import ArcPartition
from ...parallel.executor import create_executor
from ..engine import Simulation
from ..events import EventKind
from .plan import PlannedEvent, merge_outbound, plan_epoch_shard

__all__ = [
    "DEFAULT_EPOCH_LENGTH",
    "ShardingStats",
    "ShardedSimulation",
    "run_sharded_simulation",
]

#: Default epoch window, in simulated time units (= transaction steps).
#: Golden-digest tests pin sharded output at this fixed length; any length
#: produces identical digests, only the barrier cadence changes.
DEFAULT_EPOCH_LENGTH = 64


@dataclass
class ShardingStats:
    """Execution telemetry of one sharded run (not part of the result digest)."""

    shards: int
    epoch_length: int
    backend: str
    epochs: int = 0
    #: Two barriers per epoch: the exchange merge and the commit.
    barriers: int = 0
    #: Events visible to the plan fan-out across all epochs.
    planned_events: int = 0
    #: Cross-arc messages merged at exchange barriers across all epochs.
    cross_arc_messages: int = 0
    #: Exchange size per epoch, in epoch order.
    epoch_exchange: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "epoch_length": self.epoch_length,
            "backend": self.backend,
            "epochs": self.epochs,
            "barriers": self.barriers,
            "planned_events": self.planned_events,
            "cross_arc_messages": self.cross_arc_messages,
            "epoch_exchange": list(self.epoch_exchange),
        }


class ShardedSimulation:
    """Drive a simulation through the sharded epoch loop.

    Either build one from parameters (like :class:`Simulation`) or pass a
    pre-built ``simulation`` — the trace replayer hands its replay-fed engine
    in this way, so recorded traces replay bit-identically through the
    sharded path too.
    """

    def __init__(
        self,
        params: SimulationParameters | None = None,
        seed: int | None = None,
        *,
        shards: int = 2,
        epoch_length: int | None = None,
        backend: str | None = None,
        jobs: int | None = None,
        simulation: Simulation | None = None,
    ) -> None:
        if simulation is None:
            if params is None:
                raise SimulationError(
                    "ShardedSimulation needs either params or a simulation"
                )
            simulation = Simulation(params, seed=seed)
        self.sim = simulation
        self.shards = int(shards)
        if self.shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        self.partition = ArcPartition(self.shards)
        self.epoch_length = int(
            DEFAULT_EPOCH_LENGTH if epoch_length is None else epoch_length
        )
        if self.epoch_length < 1:
            raise SimulationError(
                f"epoch_length must be >= 1, got {epoch_length}"
            )
        # Plan fan-out executor.  ``backend=None, jobs=None`` resolves to the
        # serial executor (inline planning) — the right default inside spec
        # workers, where a nested pool would oversubscribe the host; pass
        # ``backend="process"``/``"thread"`` to give arcs real workers.
        self._backend = backend
        self._jobs = self.shards if jobs is None else int(jobs)
        if backend is None and jobs is None:
            self._jobs = 1
        self.stats = ShardingStats(
            shards=self.shards,
            epoch_length=self.epoch_length,
            backend=backend or ("serial" if self._jobs <= 1 else "process"),
        )
        self._finished = False

    # ------------------------------------------------------------------ #
    # Main loop                                                            #
    # ------------------------------------------------------------------ #
    def run(self) -> RunSummary:
        """Run to the horizon and return the summary (with sharding stats)."""
        if self._finished or self.sim._finished:
            raise SimulationError("this ShardedSimulation has already been run")
        sim = self.sim
        sim.setup()
        started = _time.perf_counter()
        executor = create_executor(self._backend, self._jobs)
        try:
            horizon = sim.params.num_transactions
            first_step = 1
            while first_step <= horizon:
                last_step = min(horizon, first_step + self.epoch_length - 1)
                self._run_epoch(executor, first_step, last_step)
                first_step = last_step + 1
        finally:
            executor.close()
        sim._finalize()
        elapsed = _time.perf_counter() - started
        self._finished = True
        sim._finished = True
        summary = sim._summary(elapsed)
        summary.sharding = self.stats.to_dict()
        return summary

    def _run_epoch(self, executor, first_step: int, last_step: int) -> None:
        """One epoch: plan fan-out, exchange barrier, commit barrier."""
        sim = self.sim
        # Snapshot the window's scheduled events and route each to the arc
        # owning its subject's overlay key.  Subject-less events (arrivals,
        # samples, adversary ticks) go to arc 0, the coordinator arc.
        pending = sim.events.pending_due(float(last_step))
        slices: list[list[PlannedEvent]] = [[] for _ in range(self.shards)]
        arc_of_peer = self.partition.arc_of_peer
        for event in pending:
            kind = event.kind
            if kind is EventKind.ADMISSION_RESPONSE:
                subject = event.payload.applicant
            elif kind is EventKind.DEPARTURE:
                subject = event.payload
            else:
                subject = -1
            arc = arc_of_peer(subject) if subject >= 0 else 0
            slices[arc].append((event.time, event.sequence, kind.value, subject))
        num_score_managers = sim.params.num_score_managers
        plans = executor.map_calls(
            plan_epoch_shard,
            [
                (shard, self.shards, num_score_managers, tuple(slices[shard]))
                for shard in range(self.shards)
            ],
        )
        # Exchange barrier: one deterministic merge of every arc's cross-arc
        # messages (ordered by time, sequence — never by worker timing).
        exchange = merge_outbound(plans)
        # Commit barrier: the coordinator executes the epoch in canonical
        # serial order — this is what makes sharded output bit-identical.
        advance = sim._advance_to
        for step in range(first_step, last_step + 1):
            advance(float(step))
        stats = self.stats
        stats.epochs += 1
        stats.barriers += 2
        stats.planned_events += len(pending)
        stats.cross_arc_messages += len(exchange)
        stats.epoch_exchange.append(len(exchange))


def run_sharded_simulation(
    params: SimulationParameters,
    seed: int | None = None,
    *,
    shards: int = 2,
    epoch_length: int | None = None,
    backend: str | None = None,
    jobs: int | None = None,
) -> RunSummary:
    """Build and run a :class:`ShardedSimulation`; sharded sibling of
    :func:`repro.sim.engine.run_simulation`."""
    return ShardedSimulation(
        params,
        seed=seed,
        shards=shards,
        epoch_length=epoch_length,
        backend=backend,
        jobs=jobs,
    ).run()
