"""New-peer arrivals.

"The arrival of new peers is modeled as a Poisson process with the arrival
rate equal to lambda.  Of these, cooperative peers arrive at the rate
lambda_c and uncooperative peers arrive at rate lambda_u" (§3).  The factory
also assigns introducer policies following §4: uncooperative entrants are
always naive introducers; cooperative entrants are naive with probability
``fraction_naive`` and selective otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SimulationParameters
from ..core.policies import assign_policy
from ..peers.behavior import (
    BehaviorKind,
    BehaviorModel,
    make_behavior,
)
from ..peers.peer import Peer
from ..peers.population import Population

__all__ = ["PoissonArrivalProcess", "ArrivalFactory"]


@dataclass
class PoissonArrivalProcess:
    """Generates exponentially distributed inter-arrival times."""

    rate: float
    rng: np.random.Generator
    _arrivals_generated: int = field(default=0, repr=False)

    def next_arrival_after(self, time: float) -> float:
        """Time of the next arrival strictly after ``time``.

        Returns ``inf`` when the rate is zero (no arrivals ever happen), which
        lets the engine simply never schedule the next arrival event.
        """
        if self.rate <= 0.0:
            return float("inf")
        gap = float(self.rng.exponential(1.0 / self.rate))
        self._arrivals_generated += 1
        return time + gap

    @property
    def arrivals_generated(self) -> int:
        """How many inter-arrival gaps have been drawn so far."""
        return self._arrivals_generated


@dataclass
class ArrivalFactory:
    """Creates arriving peers with the paper's behaviour/policy mix."""

    params: SimulationParameters
    population: Population
    rng: np.random.Generator

    def make_behavior_for_arrival(self) -> BehaviorModel:
        """Draw the ground-truth behaviour of the next arrival."""
        if self.rng.random() < self.params.fraction_uncooperative:
            return make_behavior(
                BehaviorKind.FREERIDER,
                cooperative_quality=self.params.cooperative_service_quality,
                uncooperative_quality=self.params.uncooperative_service_quality,
            )
        return make_behavior(
            BehaviorKind.COOPERATIVE,
            cooperative_quality=self.params.cooperative_service_quality,
            uncooperative_quality=self.params.uncooperative_service_quality,
        )

    def create_arrival(self, time: float) -> Peer:
        """Create one arriving peer (WAITING status) registered in the population."""
        behavior = self.make_behavior_for_arrival()
        policy = assign_policy(behavior, self.params, self.rng)
        return self.population.create_peer(
            behavior=behavior,
            introducer_policy=policy,
            is_founder=False,
            arrived_at=time,
        )

    def create_founder(self) -> Peer:
        """Create one founding member (cooperative, admitted by the engine)."""
        behavior = make_behavior(
            BehaviorKind.COOPERATIVE,
            cooperative_quality=self.params.cooperative_service_quality,
            uncooperative_quality=self.params.uncooperative_service_quality,
        )
        policy = assign_policy(behavior, self.params, self.rng)
        return self.population.create_peer(
            behavior=behavior,
            introducer_policy=policy,
            is_founder=True,
            arrived_at=0.0,
        )
