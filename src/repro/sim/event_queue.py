"""A deterministic priority queue of simulation events."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import SimulationError
from .events import Event, EventKind

__all__ = ["EventQueue"]


@dataclass
class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion sequence)."""

    _heap: list[Event] = field(default_factory=list)
    _sequence: int = 0
    _last_popped_time: float = float("-inf")

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Insert an event at ``time``; scheduling into the past is an error."""
        if time < self._last_popped_time:
            raise SimulationError(
                f"cannot schedule an event at t={time:g}, already processed up "
                f"to t={self._last_popped_time:g}"
            )
        event = Event(time=time, sequence=self._sequence, kind=kind, payload=payload)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Event | None:
        """The earliest pending event without removing it (None when empty)."""
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        if not self._heap:
            raise SimulationError("pop() on an empty event queue")
        event = heapq.heappop(self._heap)
        self._last_popped_time = event.time
        return event

    def pop_due(self, time: float) -> Iterator[Event]:
        """Yield every event whose time is <= ``time``, in order."""
        while self._heap and self._heap[0].time <= time:
            yield self.pop()

    def next_time(self) -> float:
        """Time of the earliest pending event (inf when empty)."""
        return self._heap[0].time if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
