"""Deterministic priority queues of simulation events.

Two implementations share the same API and the same (time, insertion
sequence) ordering contract:

* :class:`EventQueue` — the classic binary-heap queue.  Kept as the
  reference implementation the property tests compare against.
* :class:`CalendarEventQueue` — a bucketed calendar queue.  Events are
  binned by ``floor(time / bucket_width)``; each bin is a small heap, and a
  heap of bin indices finds the next non-empty bin.  With the engine's
  one-transaction-per-time-unit workload almost every bin holds only a
  handful of events, so pushes and pops touch a few-element heap instead of
  one spanning the whole horizon.

The pop order of the two queues is identical for any schedule/pop sequence
(property-tested), so the engine can use the calendar queue while tests and
third-party callers keep the heap version.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import SimulationError
from .events import Event, EventKind

__all__ = ["EventQueue", "CalendarEventQueue"]


@dataclass
class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion sequence)."""

    _heap: list[Event] = field(default_factory=list)
    _sequence: int = 0
    _last_popped_time: float = float("-inf")

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Insert an event at ``time``; scheduling into the past is an error."""
        if time < self._last_popped_time:
            raise SimulationError(
                f"cannot schedule an event at t={time:g}, already processed up "
                f"to t={self._last_popped_time:g}"
            )
        event = Event(time=time, sequence=self._sequence, kind=kind, payload=payload)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Event | None:
        """The earliest pending event without removing it (None when empty)."""
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        if not self._heap:
            raise SimulationError("pop() on an empty event queue")
        event = heapq.heappop(self._heap)
        self._last_popped_time = event.time
        return event

    def pop_due(self, time: float) -> Iterator[Event]:
        """Yield every event whose time is <= ``time``, in order."""
        while self._heap and self._heap[0].time <= time:
            yield self.pop()

    def pending_due(self, time: float) -> list[Event]:
        """Every pending event with time <= ``time``, in pop order, not removed.

        A read-only snapshot for the sharded engine's plan phase: shard
        workers classify and route these events while the queue itself stays
        untouched, so the subsequent real pops see exactly the same stream.
        """
        due = [event for event in self._heap if event.time <= time]
        due.sort(key=lambda event: (event.time, event.sequence))
        return due

    def next_time(self) -> float:
        """Time of the earliest pending event (inf when empty)."""
        return self._heap[0].time if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class CalendarEventQueue:
    """Bucketed calendar queue with the same ordering contract as :class:`EventQueue`.

    Buckets are keyed by ``floor(time / bucket_width)``; the bucket index is
    monotone in time, so the smallest live bucket always holds the globally
    earliest event and cross-bucket ordering needs no comparisons at all.
    Within a bucket, events are a min-heap ordered by (time, sequence) —
    exactly the reference queue's total order.  Emptied buckets are removed
    lazily: a stale index at the top of the bucket heap is discarded on the
    next lookup.
    """

    bucket_width: float = 1.0
    _buckets: dict[int, list[Event]] = field(default_factory=dict, repr=False)
    _bucket_heap: list[int] = field(default_factory=list, repr=False)
    _size: int = 0
    _sequence: int = 0
    _last_popped_time: float = float("-inf")

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Insert an event at ``time``; scheduling into the past is an error."""
        if time < self._last_popped_time:
            raise SimulationError(
                f"cannot schedule an event at t={time:g}, already processed up "
                f"to t={self._last_popped_time:g}"
            )
        event = Event(time=time, sequence=self._sequence, kind=kind, payload=payload)
        self._sequence += 1
        index = int(time // self.bucket_width)
        bucket = self._buckets.get(index)
        if bucket is None:
            # A single-element list satisfies the heap invariant as-is.
            self._buckets[index] = [event]
            heapq.heappush(self._bucket_heap, index)
        else:
            heapq.heappush(bucket, event)
        self._size += 1
        return event

    def _min_bucket(self) -> list[Event] | None:
        """The bucket holding the earliest event, discarding stale indices."""
        heap = self._bucket_heap
        buckets = self._buckets
        while heap:
            bucket = buckets.get(heap[0])
            if bucket:
                return bucket
            if heap[0] in buckets:
                del buckets[heap[0]]
            heapq.heappop(heap)
        return None

    def peek(self) -> Event | None:
        """The earliest pending event without removing it (None when empty)."""
        bucket = self._min_bucket()
        return bucket[0] if bucket else None

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        bucket = self._min_bucket()
        if bucket is None:
            raise SimulationError("pop() on an empty event queue")
        event = heapq.heappop(bucket)
        self._size -= 1
        self._last_popped_time = event.time
        return event

    def pop_due(self, time: float) -> Iterator[Event]:
        """Yield every event whose time is <= ``time``, in order."""
        while True:
            bucket = self._min_bucket()
            if not bucket or bucket[0].time > time:
                return
            yield self.pop()

    def pending_due(self, time: float) -> list[Event]:
        """Every pending event with time <= ``time``, in pop order, not removed.

        Same contract as :meth:`EventQueue.pending_due`; only buckets at or
        below the horizon's bucket index can hold due events, so the scan
        skips everything scheduled further out.
        """
        horizon_bucket = int(time // self.bucket_width)
        due: list[Event] = []
        for index, bucket in self._buckets.items():
            if index > horizon_bucket:
                continue
            due.extend(event for event in bucket if event.time <= time)
        due.sort(key=lambda event: (event.time, event.sequence))
        return due

    def next_time(self) -> float:
        """Time of the earliest pending event (inf when empty)."""
        bucket = self._min_bucket()
        return bucket[0].time if bucket else float("inf")

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
