"""Event types handled by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["EventKind", "Event"]


class EventKind(str, Enum):
    """What an event asks the engine to do when its time comes."""

    #: A new peer arrives and requests admission.
    ARRIVAL = "arrival"
    #: The waiting period of an admission request elapsed; apply the decision.
    ADMISSION_RESPONSE = "admission_response"
    #: Take a periodic metrics sample.
    SAMPLE = "sample"
    #: A peer departs the community (used by churn/whitewashing scenarios).
    DEPARTURE = "departure"
    #: The configured adversary strategy performs one scheduled action.
    ADVERSARY = "adversary"


@dataclass(order=True, slots=True)
class Event:
    """A timestamped event.

    Ordering is by time, then by an insertion sequence number assigned by the
    queue, so simultaneous events are processed in the order they were
    scheduled (deterministic replay).  The payload is excluded from ordering.
    Slots keep the per-event footprint flat — the engine allocates one of
    these for every arrival, admission response, sample and departure.
    """

    time: float
    sequence: int = 0
    kind: EventKind = field(compare=False, default=EventKind.SAMPLE)
    payload: Any = field(compare=False, default=None)

    def __repr__(self) -> str:
        return f"Event(t={self.time:g}, {self.kind.value}, payload={self.payload!r})"
