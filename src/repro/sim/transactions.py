"""One resource transaction.

§3 defines the transaction model precisely:

* the **requester** is "chosen at random from the list of peers in the
  system";
* the **respondent** is "chosen according to the network topology";
* the respondent serves the request "with a probability that is equal to the
  requesting peer's reputation" — this is the decision the success-rate
  metric judges;
* if served, "both parties involved in the transaction report their level of
  satisfaction to the score managers of its transaction partners": 1 if
  satisfied, 0 if not, and "an uncooperative peer would always send a value
  of 0 for its partners in order to reduce the impact on its own reputation".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SimulationParameters
from ..core.lending import LendingManager
from ..ids import PeerId
from ..metrics.collector import MetricsCollector
from ..peers.behavior import ColluderBehavior
from ..peers.peer import Peer
from ..peers.population import Population
from ..reputation.backend import ReputationBackend
from ..rocq.protocol import FeedbackReport
from ..topology.base import TopologyModel

__all__ = ["TransactionOutcome", "TransactionEngine"]


@dataclass(frozen=True, slots=True)
class TransactionOutcome:
    """Everything that happened in one transaction (or attempted transaction)."""

    time: float
    requester: PeerId
    respondent: PeerId
    served: bool
    requester_satisfied: bool = False
    respondent_satisfied: bool = False

    @property
    def completed(self) -> bool:
        """Whether the transaction actually took place."""
        return self.served


@dataclass
class TransactionEngine:
    """Executes transactions against the population, topology and reputation backend."""

    params: SimulationParameters
    population: Population
    topology: TopologyModel
    store: ReputationBackend
    lending: LendingManager
    metrics: MetricsCollector
    rng: np.random.Generator

    def __post_init__(self) -> None:
        # Resolved once: backends that implement the batched delivery hook
        # receive both of a transaction's reports in one call (the ROCQ
        # store groups them by manager); older/third-party backends fall
        # back to sequential submission with identical results.
        self._submit_batch = getattr(self.store, "submit_report_batch", None)
        # Bound methods and the peer map, hoisted once: `execute` runs once
        # per simulated time unit, and these lookups dominated its own cost.
        self._peers_by_id = self.population._peers
        self._active_ids = self.population._active_ids
        self._rng_integers = self.rng.integers
        self._rng_random = self.rng.random
        self._sample_respondent = self.topology.sample_respondent
        self._global_reputation = self.store.global_reputation
        # Serve decisions read one reputation per transaction; backends that
        # memoise the combined value expose the memo dict and the common
        # cache-hit case skips the whole method call.  ``None`` on a miss
        # falls through to ``global_reputation``, which returns the same
        # value (and warms the memo).
        memo = getattr(self.store, "_reputation_cache", None)
        self._reputation_memo_get = memo.get if memo is not None else None
        self._record_decision = self.metrics.record_service_decision
        self._note_transaction = self.lending.note_transaction

    # ------------------------------------------------------------------ #
    # Main entry point                                                      #
    # ------------------------------------------------------------------ #
    def execute(
        self, time: float, build_outcome: bool = True
    ) -> TransactionOutcome | None:
        """Run the transaction scheduled for ``time``.

        Returns ``None`` when fewer than two members exist (nothing can
        happen), otherwise a :class:`TransactionOutcome`.  The engine's
        untraced main loop passes ``build_outcome=False`` — every side
        effect still happens, but the outcome object nobody would read is
        not constructed.
        """
        active_ids = self._active_ids
        if len(active_ids) < 2:
            return None
        requester_id = active_ids[int(self._rng_integers(len(active_ids)))]
        requester = self._peers_by_id[requester_id]
        respondent_id = self._sample_respondent(self.rng, requester_id)
        if respondent_id is None:
            return None
        respondent = self._peers_by_id[respondent_id]

        requester.requests_made += 1
        # Serve with probability equal to the requester's reputation
        # (inlined _decide_service, with the memo-hit fast path).
        memo_get = self._reputation_memo_get
        reputation = memo_get(requester_id) if memo_get is not None else None
        if reputation is None:
            reputation = self._global_reputation(requester_id)
        served = bool(self._rng_random() < reputation)
        self._record_decision(
            requester_cooperative=requester.is_cooperative,
            respondent_cooperative=respondent.is_cooperative,
            served=served,
        )
        if not served:
            requester.requests_denied += 1
            if not build_outcome:
                return None
            return TransactionOutcome(
                time=time,
                requester=requester_id,
                respondent=respondent_id,
                served=False,
            )

        requester_satisfied, respondent_satisfied = self._service_outcomes(
            requester, respondent
        )
        self.metrics.record_transaction_outcome(requester_satisfied)
        respondent.note_transaction_served(requester_satisfied)
        requester.transactions_completed += 1

        self._exchange_feedback(
            time, requester, respondent, requester_satisfied, respondent_satisfied
        )
        self._notify_lending(requester_id, time)
        self._notify_lending(respondent_id, time)
        if not build_outcome:
            return None
        return TransactionOutcome(
            time=time,
            requester=requester_id,
            respondent=respondent_id,
            served=True,
            requester_satisfied=requester_satisfied,
            respondent_satisfied=respondent_satisfied,
        )

    # ------------------------------------------------------------------ #
    # Steps                                                                 #
    # ------------------------------------------------------------------ #
    def _decide_service(self, requester: Peer) -> bool:
        """Serve with probability equal to the requester's reputation."""
        reputation = self.store.global_reputation(requester.peer_id)
        return bool(self.rng.random() < reputation)

    def _service_outcomes(self, requester: Peer, respondent: Peer) -> tuple[bool, bool]:
        """Sample whether each party found the transaction satisfactory.

        Satisfaction with a partner depends on that partner's ground-truth
        behaviour: the requester is satisfied when the respondent provided
        good service, and vice versa — reputation then converges to "the
        proportion of time the peer has offered good service".
        """
        requester_satisfied = respondent.behavior.provides_good_service(self.rng)
        respondent_satisfied = requester.behavior.provides_good_service(self.rng)
        return requester_satisfied, respondent_satisfied

    def _exchange_feedback(
        self,
        time: float,
        requester: Peer,
        respondent: Peer,
        requester_satisfied: bool,
        respondent_satisfied: bool,
    ) -> None:
        """Both partners report to each other's score managers.

        Both reports are built first (opinion books update in the same order
        as ever) and delivered as one batch when the backend supports it, so
        manager lookup and aggregation run once per event dispatch.
        """
        first = self._build_report(time, reporter=requester, subject=respondent,
                                   satisfied=requester_satisfied)
        second = self._build_report(time, reporter=respondent, subject=requester,
                                    satisfied=respondent_satisfied)
        if self._submit_batch is not None:
            self._submit_batch((first, second))
        else:
            self.store.submit_report(first)
            self.store.submit_report(second)

    def _build_report(
        self, time: float, reporter: Peer, subject: Peer, satisfied: bool
    ) -> FeedbackReport:
        """Record the reporter's local opinion and build its feedback report."""
        opinion = reporter.opinions.record_interaction(
            subject.peer_id, 1.0 if satisfied else 0.0
        )
        behavior = reporter.behavior
        if isinstance(behavior, ColluderBehavior):
            value = behavior.report_value_about(subject.peer_id, satisfied)
        else:
            value = behavior.report_value(satisfied)
        return FeedbackReport(
            reporter=reporter.peer_id,
            subject=subject.peer_id,
            value=value,
            quality=opinion.quality,
            time=time,
        )

    def _notify_lending(self, peer_id: PeerId, time: float) -> None:
        """Count the transaction towards an outstanding audit, if any."""
        result = self._note_transaction(peer_id, time)
        if result is not None:
            self.metrics.record_audit(result)
