"""Discrete-event simulation engine.

The paper's simulator schedules "exactly one resource transaction in each
unit of simulation time", models no transmission delays or losses, and feeds
new peers into the system through a Poisson arrival process.  This package
reproduces that model:

* :mod:`~repro.sim.events` / :mod:`~repro.sim.event_queue` — the classic DES
  machinery (timestamped events in a priority queue) used for arrivals,
  delayed introduction responses and periodic metric samples;
* :mod:`~repro.sim.arrivals` — the Poisson arrival process and the
  behaviour/policy assignment of arriving peers;
* :mod:`~repro.sim.transactions` — one resource transaction: requester and
  respondent selection, the serve/deny decision driven by the requester's
  reputation, service outcome, and feedback to both partners' score managers;
* :mod:`~repro.sim.engine` — :class:`~repro.sim.engine.Simulation`, the
  orchestrator that wires every subsystem together and produces a
  :class:`~repro.metrics.summary.RunSummary`.
"""

from .events import Event, EventKind
from .event_queue import CalendarEventQueue, EventQueue
from .clock import SimulationClock
from .arrivals import ArrivalFactory, PoissonArrivalProcess
from .transactions import TransactionOutcome, TransactionEngine
from .engine import Simulation, run_simulation

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "CalendarEventQueue",
    "SimulationClock",
    "ArrivalFactory",
    "PoissonArrivalProcess",
    "TransactionOutcome",
    "TransactionEngine",
    "Simulation",
    "run_simulation",
]
