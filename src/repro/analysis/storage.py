"""Persistence of experiment results (JSON documents and CSV series).

The :class:`ResultStore` writes one JSON file per experiment (plus optional
CSV exports of individual series) under a results directory, so a long sweep
can be analysed, re-plotted and compared against the paper without being
re-run.
"""

from __future__ import annotations

import csv
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

__all__ = ["ResultStore"]


def _json_safe(value: Any) -> Any:
    """Copy ``value`` with non-finite floats replaced by ``None``.

    ``json.dump(..., allow_nan=True)`` would emit bare ``NaN``/``Infinity``
    tokens, which are not JSON: strict consumers (sqlite/postgres JSON
    columns, ``jq``, parsers in other languages) reject the whole document.
    Sanitising to ``null`` keeps every stored document standard JSON;
    :meth:`repro.metrics.summary.RunSummary.from_dict` maps the ``null``
    back to ``nan`` for float metrics, so summaries still round-trip.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


@dataclass
class ResultStore:
    """Reads and writes experiment results under ``root``."""

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # JSON documents                                                       #
    # ------------------------------------------------------------------ #
    def path_for(self, name: str, suffix: str = ".json") -> Path:
        """Path of the document called ``name`` (sanitised to a slug)."""
        slug = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
        return self.root / f"{slug}{suffix}"

    def save_json(self, name: str, document: Any) -> Path:
        """Write ``document`` (anything JSON-serialisable) and return its path.

        The write is atomic (temp file + rename), so readers never observe a
        torn document — the store is shared by concurrently submitted runs
        (:meth:`repro.api.SimulationService.submit`) through the run cache,
        where a half-written file would otherwise poison the (params, seed)
        key for good.  Non-finite floats are sanitised to ``null`` (see
        :func:`_json_safe`), and a serialisation failure never leaks the
        temp file into the store directory.
        """
        path = self.path_for(name)
        temp_path = path.with_name(f"{path.name}.tmp-{os.getpid()}-{id(document)}")
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(
                    _json_safe(document),
                    handle,
                    indent=2,
                    sort_keys=True,
                    allow_nan=False,
                )
            os.replace(temp_path, path)
        finally:
            # Reached with the temp file still present only when json.dump
            # (or the rename) raised; a successful replace already consumed it.
            temp_path.unlink(missing_ok=True)
        return path

    def load_json(self, name: str) -> Any:
        """Read back a document written by :meth:`save_json`."""
        path = self.path_for(name)
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def exists(self, name: str) -> bool:
        """Whether a JSON document called ``name`` exists."""
        return self.path_for(name).exists()

    def list_documents(self) -> list[str]:
        """Names of every stored JSON document (without extension)."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    # ------------------------------------------------------------------ #
    # CSV series                                                           #
    # ------------------------------------------------------------------ #
    def save_csv(
        self, name: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
    ) -> Path:
        """Write a CSV file and return its path."""
        path = self.path_for(name, suffix=".csv")
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(list(headers))
            for row in rows:
                writer.writerow(list(row))
        return path

    def load_csv(self, name: str) -> tuple[list[str], list[list[str]]]:
        """Read back a CSV written by :meth:`save_csv` (headers, rows)."""
        path = self.path_for(name, suffix=".csv")
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            rows = list(reader)
        if not rows:
            return [], []
        return rows[0], rows[1:]
