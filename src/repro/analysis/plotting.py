"""Terminal-friendly plotting: ASCII line plots and sparklines."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_SERIES_MARKS = "*+oxs#@%"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of values as a one-line unicode sparkline.

    NaN values render as spaces.  Useful for compact run logs::

        >>> sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        '▁▂▃▄▅▆▇█'
    """
    finite = [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]
    if not finite:
        return " " * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if not (isinstance(value, (int, float)) and math.isfinite(value)):
            chars.append(" ")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line plot.

    Each series gets its own marker character; the legend maps markers back
    to series names.  Intended for qualitative shape inspection (which the
    reproduction cares about), not for precise reading of values.
    """
    points: list[tuple[float, float, str]] = []
    legend: list[str] = []
    for index, (name, data) in enumerate(series.items()):
        mark = _SERIES_MARKS[index % len(_SERIES_MARKS)]
        legend.append(f"{mark} = {name}")
        for x, y in data:
            if math.isfinite(x) and math.isfinite(y):
                points.append((x, y, mark))
    if not points:
        return f"{title}\n(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x, y, mark in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_label}  [{y_min:g} .. {y_max:g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_label}  [{x_min:g} .. {x_max:g}]")
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)
