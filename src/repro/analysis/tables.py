"""Plain-text and Markdown table rendering."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(cell: object) -> str:
    """Render one table cell: floats get a compact fixed precision."""
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "n/a"
        if abs(cell) >= 1000 or cell == int(cell):
            return f"{cell:,.0f}"
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: Sequence[object], rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table with column-aligned cells.

    >>> print(format_table(["name", "value"], [["alpha", 1.5], ["beta", 20]]))
    name  | value
    ------+------
    alpha | 1.5
    beta  | 20
    """
    header_cells = [_stringify(cell) for cell in headers]
    body = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: list[str]) -> str:
        padded = [
            cell.ljust(widths[index]) if index < len(widths) else cell
            for index, cell in enumerate(cells)
        ]
        return " | ".join(padded).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row(header_cells), separator]
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[object], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured Markdown table (used by EXPERIMENTS.md)."""
    header_cells = [_stringify(cell) for cell in headers]
    body = [[_stringify(cell) for cell in row] for row in rows]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join("---" for _ in header_cells) + "|",
    ]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
