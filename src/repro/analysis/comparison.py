"""Paper-versus-measured shape checks.

The reproduction does not try to match the paper's absolute numbers (our
substrate is a re-implementation, not the authors' Java testbed); what must
hold are the *shapes* the paper argues from: who grows linearly, what stays
flat, which curve saturates, where a knee appears.  :class:`ShapeCheck`
captures one such expectation as a predicate over an experiment result, and
:func:`evaluate_checks` produces the pass/fail table EXPERIMENTS.md and the
benchmark suite report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["CheckResult", "ShapeCheck", "evaluate_checks", "monotonic", "roughly_flat"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one shape check."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ShapeCheck:
    """A named expectation evaluated against an experiment result."""

    name: str
    predicate: Callable[[object], tuple[bool, str]]
    #: Free-text reference to the paper statement this check encodes.
    paper_claim: str = ""

    def evaluate(self, result: object) -> CheckResult:
        """Run the predicate, converting exceptions into failures."""
        try:
            passed, detail = self.predicate(result)
        except Exception as exc:  # noqa: BLE001 - a broken check must not crash the report
            return CheckResult(name=self.name, passed=False, detail=f"error: {exc}")
        return CheckResult(name=self.name, passed=bool(passed), detail=detail)


def evaluate_checks(checks: Sequence[ShapeCheck], result: object) -> list[CheckResult]:
    """Evaluate every check against ``result``."""
    return [check.evaluate(result) for check in checks]


# --------------------------------------------------------------------- #
# Reusable predicates over (x, y) series                                  #
# --------------------------------------------------------------------- #
def monotonic(
    points: Sequence[tuple[float, float]],
    increasing: bool = True,
    tolerance: float = 0.0,
) -> tuple[bool, str]:
    """Whether a series is (weakly) monotonic, allowing ``tolerance`` slack.

    ``tolerance`` is an absolute allowance per step: small sampling noise in
    the "wrong" direction does not fail the check.
    """
    values = [y for _, y in points if y == y]
    if len(values) < 2:
        return True, "fewer than two points"
    violations = 0
    for previous, current in zip(values, values[1:]):
        delta = current - previous
        if increasing and delta < -tolerance:
            violations += 1
        if not increasing and delta > tolerance:
            violations += 1
    direction = "increasing" if increasing else "decreasing"
    if violations == 0:
        return True, f"series is {direction} across {len(values)} points"
    return False, f"{violations} step(s) violate the {direction} trend"


def roughly_flat(
    points: Sequence[tuple[float, float]], relative_band: float = 0.15
) -> tuple[bool, str]:
    """Whether a series stays within ``relative_band`` of its mean."""
    values = [y for _, y in points if y == y]
    if not values:
        return False, "no finite points"
    mean = sum(values) / len(values)
    if mean == 0:
        spread = max(abs(v) for v in values)
        passed = spread <= relative_band
        return passed, f"mean is 0, max |value| = {spread:.3g}"
    spread = max(abs(v - mean) for v in values) / abs(mean)
    passed = spread <= relative_band
    return passed, f"max relative deviation from mean = {spread:.1%}"
