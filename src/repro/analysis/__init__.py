"""Result analysis: tables, plain-text plots, persistence and paper checks.

Nothing in this package depends on matplotlib — figures are rendered as
ASCII line plots so results can be inspected in a terminal or pasted into
EXPERIMENTS.md — and results persist as JSON/CSV so they can be re-analysed
without re-running the simulations.
"""

from .tables import format_table, format_markdown_table
from .plotting import ascii_plot, sparkline
from .storage import ResultStore
from .comparison import CheckResult, ShapeCheck, evaluate_checks

__all__ = [
    "format_table",
    "format_markdown_table",
    "ascii_plot",
    "sparkline",
    "ResultStore",
    "CheckResult",
    "ShapeCheck",
    "evaluate_checks",
]
