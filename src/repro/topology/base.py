"""Abstract interface shared by all interaction topologies."""

from __future__ import annotations

import abc

import numpy as np

from ..ids import PeerId

__all__ = ["TopologyModel"]


class TopologyModel(abc.ABC):
    """Chooses transaction respondents and prospective introducers.

    A topology tracks the set of *member* peers (peers admitted to the
    community).  ``sample_member`` draws one according to the topology's
    popularity model, optionally excluding a peer (a requester never responds
    to itself).
    """

    @abc.abstractmethod
    def add_member(self, peer_id: PeerId) -> None:
        """Register a newly admitted peer with the topology."""

    @abc.abstractmethod
    def remove_member(self, peer_id: PeerId) -> None:
        """Remove a departed peer from the topology."""

    @abc.abstractmethod
    def sample_member(
        self, rng: np.random.Generator, exclude: PeerId | None = None
    ) -> PeerId | None:
        """Draw one member peer; ``None`` if no eligible member exists."""

    @abc.abstractmethod
    def __contains__(self, peer_id: PeerId) -> bool:
        """Whether ``peer_id`` is currently a member of the topology."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of member peers."""

    # Convenience wrappers with intention-revealing names ----------------- #
    def sample_respondent(
        self, rng: np.random.Generator, requester: PeerId
    ) -> PeerId | None:
        """Pick the respondent of a transaction initiated by ``requester``."""
        return self.sample_member(rng, exclude=requester)

    def sample_introducer(
        self, rng: np.random.Generator, applicant: PeerId
    ) -> PeerId | None:
        """Pick the member a new arrival asks for an introduction."""
        return self.sample_member(rng, exclude=applicant)
