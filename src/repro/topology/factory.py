"""Topology construction from simulation parameters."""

from __future__ import annotations

import numpy as np

from ..config import SimulationParameters, Topology
from .base import TopologyModel
from .random_topology import RandomTopology
from .scale_free import ScaleFreeTopology

__all__ = ["make_topology"]


def make_topology(
    params: SimulationParameters, rng: np.random.Generator | None = None
) -> TopologyModel:
    """Build the interaction topology selected by ``params.topology``.

    ``rng`` seeds the scale-free attachment process; the random topology is
    parameter-free and ignores it.
    """
    if params.topology == Topology.RANDOM:
        return RandomTopology()
    if params.topology == Topology.SCALE_FREE:
        return ScaleFreeTopology(
            attachment=params.scale_free_attachment,
            exponent=params.scale_free_exponent,
            rng=rng,
        )
    raise ValueError(f"unsupported topology: {params.topology!r}")
