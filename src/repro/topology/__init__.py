"""Interaction topologies.

The respondent of each transaction — and the prospective introducer of each
new arrival — is "chosen according to the network topology" (§3).  Two
models are provided, matching the paper:

* :class:`RandomTopology` — every active peer is equally likely;
* :class:`ScaleFreeTopology` — peers are chosen with probability
  proportional to their degree in a preferential-attachment (Barabási–Albert)
  graph, producing the power-law popularity the paper calls "scale-free".
"""

from .base import TopologyModel
from .random_topology import RandomTopology
from .scale_free import ScaleFreeTopology
from .factory import make_topology

__all__ = [
    "TopologyModel",
    "RandomTopology",
    "ScaleFreeTopology",
    "make_topology",
]
