"""Random (uniform) interaction topology."""

from __future__ import annotations

import numpy as np

from ..ids import PeerId
from .base import TopologyModel

__all__ = ["RandomTopology"]


class RandomTopology(TopologyModel):
    """Every member peer is an equally likely respondent/introducer.

    Membership is kept in a list plus a position index so both insertion and
    removal are O(1) and uniform sampling is a single integer draw.
    """

    def __init__(self) -> None:
        self._members: list[PeerId] = []
        self._positions: dict[PeerId, int] = {}

    def add_member(self, peer_id: PeerId) -> None:
        if peer_id in self._positions:
            return
        self._positions[peer_id] = len(self._members)
        self._members.append(peer_id)

    def remove_member(self, peer_id: PeerId) -> None:
        position = self._positions.pop(peer_id, None)
        if position is None:
            return
        last = self._members[-1]
        if last != peer_id:
            self._members[position] = last
            self._positions[last] = position
        self._members.pop()

    def sample_member(
        self, rng: np.random.Generator, exclude: PeerId | None = None
    ) -> PeerId | None:
        count = len(self._members)
        if count == 0:
            return None
        if count == 1:
            only = self._members[0]
            return None if only == exclude else only
        # Rejection sampling terminates quickly: at most one member is excluded.
        for _ in range(64):
            candidate = self._members[int(rng.integers(count))]
            if candidate != exclude:
                return candidate
        # Extremely defensive fallback (can only trigger with a pathological RNG).
        return next((m for m in self._members if m != exclude), None)

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._positions

    def __len__(self) -> int:
        return len(self._members)
