"""Scale-free (power-law) interaction topology.

The paper's second topology chooses respondents "according to a power-law".
We realise it with an incrementally grown preferential-attachment
(Barabási–Albert) graph: every admitted peer attaches ``attachment`` edges to
existing members with probability proportional to their degree, and the
probability of a member being chosen as respondent/introducer is proportional
to its degree.  This yields the heavy-tailed popularity distribution the
paper intends while supporting O(1) sampling.

Sampling uses the classic *repeated endpoints* trick: every time an edge
(u, v) is created, both endpoints are appended to a list; drawing a uniform
index from that list is exactly degree-proportional sampling.

A :meth:`as_networkx` export is provided for analysis and the examples; the
simulation hot path never touches networkx.
"""

from __future__ import annotations

import numpy as np

from ..ids import PeerId
from .base import TopologyModel

__all__ = ["ScaleFreeTopology"]


class ScaleFreeTopology(TopologyModel):
    """Preferential-attachment topology with degree-proportional sampling."""

    def __init__(
        self,
        attachment: int = 2,
        exponent: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Create an empty scale-free topology.

        Parameters
        ----------
        attachment:
            Number of edges each new member attaches to existing members
            (the Barabási–Albert ``m`` parameter).
        exponent:
            Preferential-attachment strength.  1.0 is classic BA (weight
            proportional to degree); 0.0 degenerates to uniform attachment.
            Values other than 1.0 are applied only at attachment time; the
            sampling weight always remains the realised degree, matching the
            paper's "probability distributed according to a power-law".
        rng:
            Generator used when wiring attachment edges.  A fixed-seed
            generator is created when omitted so graph growth is
            deterministic and independent of process hash randomisation.
        """
        if attachment < 1:
            raise ValueError("attachment must be >= 1")
        if exponent < 0:
            raise ValueError("exponent must be >= 0")
        self.attachment = attachment
        self.exponent = exponent
        self._attach_rng = rng if rng is not None else np.random.default_rng(977_231)
        self._members: list[PeerId] = []
        self._positions: dict[PeerId, int] = {}
        self._degrees: dict[PeerId, int] = {}
        self._edges: list[tuple[PeerId, PeerId]] = []
        # Degree-proportional sampling pool: each edge contributes both ends.
        self._endpoint_pool: list[PeerId] = []
        # Number of departed-peer entries still polluting the pool; when the
        # fraction grows too high the pool is compacted.
        self._stale_entries = 0

    # ------------------------------------------------------------------ #
    # Membership                                                           #
    # ------------------------------------------------------------------ #
    def add_member(self, peer_id: PeerId) -> None:
        if peer_id in self._positions:
            return
        self._positions[peer_id] = len(self._members)
        self._members.append(peer_id)
        self._degrees[peer_id] = 0
        self._attach(peer_id)

    def remove_member(self, peer_id: PeerId) -> None:
        position = self._positions.pop(peer_id, None)
        if position is None:
            return
        last = self._members[-1]
        if last != peer_id:
            self._members[position] = last
            self._positions[last] = position
        self._members.pop()
        self._stale_entries += self._degrees.pop(peer_id, 0)
        self._maybe_compact()

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._positions

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------ #
    # Sampling                                                             #
    # ------------------------------------------------------------------ #
    def sample_member(
        self, rng: np.random.Generator, exclude: PeerId | None = None
    ) -> PeerId | None:
        if not self._members:
            return None
        if len(self._members) == 1:
            only = self._members[0]
            return None if only == exclude else only
        pool = self._endpoint_pool
        if pool:
            for _ in range(64):
                candidate = pool[int(rng.integers(len(pool)))]
                if candidate != exclude and candidate in self._positions:
                    return candidate
        # Pool unusable (tiny graph or heavy churn): fall back to uniform.
        for _ in range(64):
            candidate = self._members[int(rng.integers(len(self._members)))]
            if candidate != exclude:
                return candidate
        return next((m for m in self._members if m != exclude), None)

    # ------------------------------------------------------------------ #
    # Graph structure                                                      #
    # ------------------------------------------------------------------ #
    def degree(self, peer_id: PeerId) -> int:
        """Current degree of ``peer_id`` (0 if unknown)."""
        return self._degrees.get(peer_id, 0)

    def edges(self) -> list[tuple[PeerId, PeerId]]:
        """All edges ever created between still-present members."""
        return [
            (u, v)
            for u, v in self._edges
            if u in self._positions and v in self._positions
        ]

    def as_networkx(self):
        """Export the current graph as a :class:`networkx.Graph`."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._members)
        graph.add_edges_from(self.edges())
        return graph

    # ------------------------------------------------------------------ #
    # Internal                                                             #
    # ------------------------------------------------------------------ #
    def _attach(self, peer_id: PeerId) -> None:
        """Attach a new member to up to ``attachment`` existing members."""
        # ``add_member`` appended ``peer_id`` immediately before this call,
        # so the number of *other* members is len - 1 — no need to build the
        # filtered list (O(members) per join) just to count it.
        members = self._members
        if len(members) <= 1:
            # First member: give it a self-weight so it can be sampled.
            self._degrees[peer_id] = 1
            self._endpoint_pool.append(peer_id)
            return
        rng = self._attach_rng
        targets: set[PeerId] = set()
        wanted = min(self.attachment, len(members) - 1)
        attempts = 0
        while len(targets) < wanted and attempts < 32 * wanted:
            attempts += 1
            target = self._preferential_target(rng, exclude=peer_id)
            if target is not None and target != peer_id:
                targets.add(target)
        if len(targets) < wanted:
            # Guarantee connectivity even if preferential draws kept colliding.
            for fallback in members:
                if fallback == peer_id:
                    continue
                targets.add(fallback)
                if len(targets) >= wanted:
                    break
        for target in targets:
            self._add_edge(peer_id, target)

    def _preferential_target(
        self, rng: np.random.Generator, exclude: PeerId
    ) -> PeerId | None:
        if self.exponent == 0.0 or not self._endpoint_pool:
            candidates = [m for m in self._members if m != exclude]
            if not candidates:
                return None
            return candidates[int(rng.integers(len(candidates)))]
        pool = self._endpoint_pool
        for _ in range(32):
            candidate = pool[int(rng.integers(len(pool)))]
            if candidate != exclude and candidate in self._positions:
                return candidate
        return None

    def _add_edge(self, u: PeerId, v: PeerId) -> None:
        self._edges.append((u, v))
        self._degrees[u] = self._degrees.get(u, 0) + 1
        self._degrees[v] = self._degrees.get(v, 0) + 1
        self._endpoint_pool.append(u)
        self._endpoint_pool.append(v)

    def _maybe_compact(self) -> None:
        """Rebuild the endpoint pool when too many entries refer to departed peers."""
        if not self._endpoint_pool:
            return
        if self._stale_entries * 2 < len(self._endpoint_pool):
            return
        self._endpoint_pool = [
            endpoint for endpoint in self._endpoint_pool if endpoint in self._positions
        ]
        self._stale_entries = 0
